#!/usr/bin/env python3
"""Paper-scale run: the closest feasible approximation of Section 5.1.

The paper simulates 1K tasks (~1.1B instructions) per workload. The CI
benchmarks use 48 tasks to stay inside minutes; this script runs the
``PAPER`` preset (256 tasks, ~20M instructions per workload) so warm-up
and collective churn amortise the way the paper's longer traces allow.

The whole matrix is one declarative experiment grid executed through the
parallel :class:`repro.exp.Runner`: variants fan out over all cores, and
results persist to ``results/paper_scale/`` — re-running after an
interruption (or with more workloads) only simulates the missing cells.

Run:  python examples/paper_scale_run.py [workload ...]
"""

import os
import sys
import time

from repro.exp import ExperimentSpec, ResultStore, Runner, grid, summarize

VARIANTS = ("base", "nextline", "slicc", "slicc-pp", "slicc-sw", "pif")
STORE_DIR = "results/paper_scale"


def main() -> None:
    workloads = sys.argv[1:] or ["tpcc-1", "tpcc-10", "tpce", "mapreduce"]
    runner = Runner(
        store=ResultStore(STORE_DIR), jobs=os.cpu_count() or 1
    )
    for name in workloads:
        base = ExperimentSpec(name, scale="paper", label=name)
        specs = grid(base, {"variant": VARIANTS})
        t0 = time.time()
        results = runner.run(specs)
        stats = runner.last_stats
        print()
        print(
            summarize(
                list(zip(specs, results)),
                baseline=results[VARIANTS.index("base")],
                metrics=("I-MPKI", "D-MPKI", "migrations", "util"),
                title=f"{name} — paper-scale results",
            )
        )
        print(
            f"[{stats.simulated} simulated, {stats.cached} from "
            f"{STORE_DIR}, {time.time() - t0:.0f}s]"
        )


if __name__ == "__main__":
    main()
