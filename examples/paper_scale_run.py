#!/usr/bin/env python3
"""Paper-scale run: the closest feasible approximation of Section 5.1.

The paper simulates 1K tasks (~1.1B instructions) per workload. The CI
benchmarks use 48 tasks to stay inside minutes; this script runs the
``PAPER`` preset (256 tasks, ~20M instructions per workload) so warm-up
and collective churn amortise the way the paper's longer traces allow.
Expect on the order of an hour for the full matrix on a laptop.

Run:  python examples/paper_scale_run.py [workload ...]
"""

import sys
import time

import repro
from repro.analysis import format_table

VARIANTS = ("base", "nextline", "slicc", "slicc-pp", "slicc-sw", "pif")


def run_workload(name: str) -> None:
    print(f"\n=== {name} (PAPER scale) ===")
    t0 = time.time()
    trace = repro.standard_trace(name, repro.ScalePreset.PAPER)
    print(
        f"trace: {len(trace.threads)} threads, "
        f"{trace.total_instructions:,} instructions "
        f"({time.time() - t0:.0f}s to generate)"
    )
    rows = []
    base = None
    for variant in VARIANTS:
        t0 = time.time()
        result = repro.simulate(trace, variant=variant)
        if variant == "base":
            base = result
        rows.append(
            [
                variant,
                result.i_mpki,
                result.d_mpki,
                result.speedup_over(base),
                result.migrations,
                f"{time.time() - t0:.0f}s",
            ]
        )
        print(f"  {variant}: done in {rows[-1][-1]}")
    print(
        format_table(
            ["variant", "I-MPKI", "D-MPKI", "speedup", "migrations", "wall"],
            rows,
            title=f"{name} — paper-scale results",
        )
    )


def main() -> None:
    workloads = sys.argv[1:] or ["tpcc-1", "tpcc-10", "tpce", "mapreduce"]
    for name in workloads:
        run_workload(name)


if __name__ == "__main__":
    main()
