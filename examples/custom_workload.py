#!/usr/bin/env python3
"""Custom workload: define your own OLTP-style benchmark and run it.

Shows the full workload-authoring surface: segments, transaction types
with control-flow paths, a data-stream spec, trace generation, and a
variant comparison. The example models a tiny "banking" workload with
two hot transaction types over a shared storage-manager core.

Run:  python examples/custom_workload.py
"""

import repro
from repro.analysis import format_table
from repro.workloads import (
    DataSpec,
    PathStep,
    TransactionTypeSpec,
    WorkloadSpec,
    generate_trace,
    layout_segments,
)


def build_banking_workload() -> WorkloadSpec:
    """Two txn types (Deposit, Transfer) over 3 shared + 2 private
    segments of 448 blocks (28KB) each."""
    segments = layout_segments([448] * 5)
    shared_btree, shared_log, shared_lock = 0, 1, 2
    deposit_private, transfer_private = 3, 4

    deposit = TransactionTypeSpec(
        type_id=0,
        name="Deposit",
        weight=60.0,
        path=(
            PathStep(deposit_private, inner_iterations=2),
            PathStep(shared_btree, inner_iterations=2),
            PathStep(shared_log, inner_iterations=2),
            PathStep(deposit_private, inner_iterations=2),
            PathStep(shared_btree, inner_iterations=2),
        ),
    )
    transfer = TransactionTypeSpec(
        type_id=1,
        name="Transfer",
        weight=40.0,
        path=(
            PathStep(transfer_private, inner_iterations=2),
            PathStep(shared_btree, inner_iterations=2),
            PathStep(shared_lock, inner_iterations=2),
            PathStep(shared_log, inner_iterations=2),
            PathStep(transfer_private, probability=0.7, inner_iterations=2),
            PathStep(shared_btree, inner_iterations=2),
        ),
    )
    data = DataSpec(
        accesses_per_iblock=0.4,
        hot_private_blocks=8,
        shared_hot_blocks=64,
        hot_private_frac=0.35,
        shared_frac=0.25,
        store_frac=0.40,
    )
    return WorkloadSpec(
        name="banking",
        segments=tuple(segments),
        txn_types=(deposit, transfer),
        data=data,
    )


def main() -> None:
    spec = build_banking_workload()
    footprint_kb = spec.footprint_blocks() * 64 // 1024
    print(
        f"Workload '{spec.name}': {len(spec.segments)} segments, "
        f"{footprint_kb}KB code footprint "
        f"({footprint_kb // 32}x a 32KB L1-I)\n"
    )

    trace = generate_trace(spec, n_threads=32, seed=99)
    base = repro.simulate(trace, variant="base")
    rows = []
    for variant in ("base", "nextline", "slicc", "slicc-sw", "pif"):
        r = repro.simulate(trace, variant=variant)
        rows.append(
            [variant, r.i_mpki, r.d_mpki, r.speedup_over(base), r.migrations]
        )
    print(
        format_table(
            ["variant", "I-MPKI", "D-MPKI", "speedup", "migrations"],
            rows,
            title="banking workload, 16-core machine",
        )
    )


if __name__ == "__main__":
    main()
