#!/usr/bin/env python3
"""Threshold tuning: reproduce the Section 5.2 parameter exploration.

Sweeps SLICC's dilution_t threshold on TPC-C (the Figure 8 experiment)
and prints the miss/overhead trade-off, showing how to drive custom
parameter studies through the public API.

Run:  python examples/threshold_tuning.py
"""

import repro
from repro.analysis import format_table, sweep_dilution


def main() -> None:
    trace = repro.standard_trace(
        "tpcc-1", repro.ScalePreset.CI, n_threads=32, seed=7
    )
    print("Baseline run...")
    baseline = repro.simulate(trace, variant="base")

    print("Sweeping dilution_t (Figure 8)...\n")
    points = sweep_dilution(
        trace, dilution_values=(2, 6, 10, 16, 24, 30), baseline=baseline
    )
    rows = [
        [p.dilution_t, p.i_mpki, p.d_mpki, p.speedup, p.migrations]
        for p in points
    ]
    print(
        format_table(
            ["dilution_t", "I-MPKI", "D-MPKI", "speedup", "migrations"],
            rows,
            title="dilution_t trade-off (TPC-C)",
        )
    )
    best = max(points, key=lambda p: p.speedup)
    print(
        f"\nBest point here: dilution_t={best.dilution_t} "
        f"(speedup {best.speedup:.2f}x). The paper settles on 10."
    )


if __name__ == "__main__":
    main()
