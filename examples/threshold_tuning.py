#!/usr/bin/env python3
"""Threshold tuning: reproduce the Section 5.2 parameter exploration.

Sweeps SLICC's dilution_t threshold on TPC-C (the Figure 8 experiment)
as one declarative spec grid, showing how to drive custom parameter
studies through ``repro.exp``: build a base spec, expand an axis with
:func:`repro.exp.grid`, fan the family out over worker processes, and
compare each point to the shared baseline.

Run:  python examples/threshold_tuning.py
"""

from repro.exp import ExperimentSpec, Runner, grid, summarize

DILUTION_VALUES = (2, 6, 10, 16, 24, 30)


def main() -> None:
    base = ExperimentSpec(
        "tpcc-1",
        scale="ci",
        n_threads=32,
        seed=7,
        label="slicc-sw",
    )
    specs = grid(
        base,
        {"variant": ["slicc-sw"], "slicc.dilution_t": DILUTION_VALUES},
        label=lambda point: f"dilution_t={point['slicc.dilution_t']}",
    )
    runner = Runner(jobs=4)

    print("Running baseline + 6-point dilution grid (jobs=4)...\n")
    results = runner.run([base.baseline()] + specs)
    baseline, results = results[0], results[1:]
    print(
        summarize(
            list(zip(specs, results)),
            baseline=baseline,
            metrics=("I-MPKI", "D-MPKI", "migrations"),
            title="dilution_t trade-off (TPC-C)",
        )
    )
    best_spec, best = max(
        zip(specs, results), key=lambda pair: pair[1].speedup_over(baseline)
    )
    print(
        f"\nBest point here: {best_spec.display_label()} "
        f"(speedup {best.speedup_over(baseline):.2f}x). "
        "The paper settles on 10."
    )


if __name__ == "__main__":
    main()
