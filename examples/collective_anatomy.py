#!/usr/bin/env python3
"""Anatomy of a cache collective: the Figure 4 scenario, instrumented.

Builds a single-transaction-type workload (the cleanest regime for
SLICC), replays it with migration enabled, and then inspects the
machine: which code segment each core's L1-I ended up holding, how many
misses each successive thread paid, and the headline I-MPKI cut. This is
the experiment demonstrating the *self-assembly* the paper's title
promises — later threads ride the collective the first threads built.

Run:  python examples/collective_anatomy.py
"""

import repro
from repro.params import SliccParams
from repro.sim import SimConfig
from repro.sim.engine import ReplayEngine
from repro.workloads import (
    DataSpec,
    PathStep,
    TransactionTypeSpec,
    WorkloadSpec,
    generate_trace,
    layout_segments,
)


def build_mono_workload() -> WorkloadSpec:
    """One transaction type over six 28KB segments, A-B-C-D-E-F-A-C-E-A."""
    segments = layout_segments([448] * 6)
    path = tuple(
        PathStep(seg_id=i, inner_iterations=2)
        for i in (0, 1, 2, 3, 4, 5, 0, 2, 4, 0)
    )
    return WorkloadSpec(
        name="mono",
        segments=tuple(segments),
        txn_types=(
            TransactionTypeSpec(type_id=0, name="Txn", weight=1.0, path=path),
        ),
        data=DataSpec(),
    )


def segment_of(spec: WorkloadSpec, block: int) -> int | None:
    for seg in spec.segments:
        if seg.base_block <= block < seg.base_block + seg.n_blocks:
            return seg.seg_id
    return None


def main() -> None:
    spec = build_mono_workload()
    trace = generate_trace(spec, n_threads=24, seed=3)
    base = repro.simulate(trace, variant="base")

    config = SimConfig(
        variant="slicc",
        slicc=SliccParams(dilution_t=10),
        work_stealing=False,  # keep the collective pristine for inspection
    )
    engine = ReplayEngine(trace, config)
    result = engine.run()

    print("Final L1-I contents per core (blocks per segment):")
    for core in range(16):
        counts: dict[int, int] = {}
        for block in engine.machine.l1i[core].resident_blocks():
            seg = segment_of(spec, block)
            counts[seg] = counts.get(seg, 0) + 1
        held = ", ".join(
            f"seg{seg}:{n}" for seg, n in sorted(counts.items()) if n > 32
        )
        print(f"  core {core:2d}: {held or '(scraps)'}")

    print("\nPer-thread instruction misses (arrival order):")
    misses = [t.i_misses for t in engine.threads]
    print(" ", misses)
    early = sum(misses[:4]) / 4
    late = sum(misses[-4:]) / 4
    print(
        f"\nfirst 4 threads avg {early:.0f} misses (assembling the "
        f"collective); last 4 avg {late:.0f} (riding it)"
    )
    print(
        f"I-MPKI: {base.i_mpki:.2f} (base) -> {result.i_mpki:.2f} (SLICC), "
        f"a {1 - result.i_mpki / base.i_mpki:.0%} cut; "
        f"{result.migrations} migrations"
    )


if __name__ == "__main__":
    main()
