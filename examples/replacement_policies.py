#!/usr/bin/env python3
"""Replacement-policy study: reproduce the Figure 2 comparison.

Runs TPC-C with each of the seven L1-I replacement policies the paper
evaluates (LRU, LIP, BIP, DIP, SRRIP, BRRIP, DRRIP) and shows that none
recovers more than a sliver of the misses a bigger cache (or SLICC)
would — the motivation for thread migration.

Run:  python examples/replacement_policies.py
"""

import repro
from repro.analysis import format_table
from repro.params import CacheParams, SystemParams
from repro.sim import SimConfig


def main() -> None:
    trace = repro.standard_trace(
        "tpcc-1", repro.ScalePreset.CI, n_threads=32, seed=5
    )
    rows = []
    lru_mpki = None
    for policy in ("lru", "lip", "bip", "dip", "srrip", "brrip", "drrip"):
        system = SystemParams(l1i=CacheParams(policy=policy))
        result = repro.simulate(
            trace, config=SimConfig(variant="base", system=system)
        )
        if policy == "lru":
            lru_mpki = result.i_mpki
        rows.append(
            [policy, result.i_mpki, 1 - result.i_mpki / lru_mpki]
        )
    print(
        format_table(
            ["policy", "I-MPKI", "vs LRU"],
            rows,
            title="Figure 2 on TPC-C (paper: best policy ~8% below LRU)",
        )
    )

    # Contrast with what SLICC-SW recovers on the same trace.
    base = repro.simulate(trace, variant="base")
    sw = repro.simulate(trace, variant="slicc-sw")
    print(
        f"\nSLICC-SW on the same trace: I-MPKI {base.i_mpki:.2f} -> "
        f"{sw.i_mpki:.2f} ({1 - sw.i_mpki / base.i_mpki:.0%} reduction) — "
        "replacement policies alone cannot get there."
    )


if __name__ == "__main__":
    main()
