#!/usr/bin/env python3
"""Quickstart: simulate TPC-C under the baseline and SLICC-SW.

Generates a small TPC-C trace, replays it on the 16-core Table 2
machine under the OS baseline and under SLICC-SW, and prints the
headline metrics of the paper: I-MPKI, D-MPKI and speedup.

Run:  python examples/quickstart.py
"""

import repro


def main() -> None:
    print("Generating a TPC-C trace (CI scale, 32 transactions)...")
    trace = repro.standard_trace(
        "tpcc-1", repro.ScalePreset.CI, n_threads=32, seed=42
    )
    print(
        f"  {len(trace.threads)} threads, {trace.total_records:,} access "
        f"records, {trace.total_instructions:,} instructions\n"
    )

    print("Simulating the baseline (OS scheduling, no migration)...")
    base = repro.simulate(trace, variant="base")
    print(f"  {base.summary()}\n")

    print("Simulating SLICC-SW (type-aware thread migration)...")
    sw = repro.simulate(trace, variant="slicc-sw")
    print(f"  {sw.summary()}\n")

    print("Paper headline metrics:")
    print(f"  I-MPKI: {base.i_mpki:6.2f} -> {sw.i_mpki:6.2f} "
          f"({1 - sw.i_mpki / base.i_mpki:+.0%})")
    print(f"  D-MPKI: {base.d_mpki:6.2f} -> {sw.d_mpki:6.2f} "
          f"({sw.d_mpki / base.d_mpki - 1:+.0%})")
    print(f"  speedup over baseline: {sw.speedup_over(base):.2f}x")
    print(f"  migrations: {sw.migrations} "
          f"(~{sw.instructions_per_migration():,.0f} instructions apart)")


if __name__ == "__main__":
    main()
