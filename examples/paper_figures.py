#!/usr/bin/env python3
"""Reproduce one registered paper figure programmatically.

The ``repro paper`` CLI runs the whole figure registry; this example
shows the same machinery from Python — build a figure's spec family,
run it through the experiment layer (resumably, against a persistent
store), and render the markdown/CSV tables.

Run:  python examples/paper_figures.py
"""

from pathlib import Path

from repro.analysis import write_figure_report, write_index
from repro.exp import ResultStore, Runner, get_figure

OUT = Path("report-example")


def main() -> None:
    figure = get_figure("fig8-dilution")
    rows = figure.build("smoke")
    print(f"{figure.title}: {len(rows)} points at smoke scale")

    store = ResultStore(OUT / "results.jsonl")
    runner = Runner(store=store, jobs=2)
    runner.run(figure.specs("smoke"))
    stats = runner.last_stats
    print(f"  {stats.simulated} simulated, {stats.cached} served from store")

    paths = write_figure_report(figure, rows, store, OUT)
    write_index(OUT, [(figure, len(rows))], scale="smoke", store_path=store.path)
    print(f"  wrote {paths['markdown']} and {paths['csv']}")
    print("rerun this script: everything will be served from the store")


if __name__ == "__main__":
    main()
