#!/usr/bin/env python
"""Regenerate the golden-equivalence fixtures in ``tests/golden/``.

Each fixture is the canonical JSON (:func:`repro.exp.store.result_to_json`)
of one ``simulate()`` run: every engine variant crossed with two smoke
workloads (plus the plain variants on the scenario-extension workloads).
``tests/test_golden_equivalence.py`` pins the engine's output
byte-identical to these files, so they must only ever be regenerated when
a simulated *number* is meant to change — never as part of a pure
performance PR. Run from the repo root:

    python scripts/dump_golden.py

``--out DIR`` writes elsewhere (the CI golden-freshness job regenerates
into a temp dir and diffs against ``tests/golden/`` so stale pins cannot
merge silently). The specs here leave ``kernel="auto"``, so
``REPRO_KERNEL=specialized`` (or ``=batch``) regenerates the whole grid
through an alternative replay kernel — CI's golden-freshness matrix
uses exactly that to pin every kernel byte-identical, and
``REPRO_NO_SPECIALIZE=1`` covers the escape hatch.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.exp.store import result_to_json  # noqa: E402
from repro.params import ScalePreset  # noqa: E402
from repro.sim.engine import VARIANTS, SimConfig, simulate  # noqa: E402
from repro.workloads import standard_trace  # noqa: E402

#: The golden grid: every variant on two structurally different smoke
#: workloads (OLTP with teams-relevant type mix, and TPC-E).
GOLDEN_WORKLOADS = ("tpcc-1", "tpce")
GOLDEN_SEED = 7

#: Scenario-extension workloads pinned on the plain variants only: their
#: point is trace-shape coverage (handler churn, mid-trace mix shift),
#: while the cfg combinations above already exercise every fallback path
#: on the OLTP pair.
GOLDEN_VARIANT_WORKLOADS = ("webserve", "phased")

#: Extension scheduling policies (PR 5), pinned on the canonical OLTP
#: trace plus the mix-shifting workload their semantics target. These
#: pins freeze the quantum-boundary decision semantics of the
#: registry-only policies exactly as the variant grid freezes the
#: paper's seven.
GOLDEN_POLICIES = ("tmi", "affinity", "random-migrate")
GOLDEN_POLICY_WORKLOADS = ("tpcc-1", "phased")

#: Config pins beyond the plain variants: every fallback trigger of the
#: pre-PR-3 engine (next-line prefetcher, miss classifiers, banked NUCA,
#: migration data prefetcher) alone and in combination, so the PR 3
#: inline fast paths are provably bit-identical to the generic
#: ``_process_instruction``/``_process_data`` reference they replace.
#: Captured from the PR-2 engine *before* that rewrite.
GOLDEN_CONFIGS: tuple[tuple[str, dict], ...] = (
    ("classify", {"variant": "base", "collect_miss_classes": True}),
    ("slicc-classify", {"variant": "slicc", "collect_miss_classes": True}),
    ("nuca", {"variant": "base", "model_l2_capacity": True}),
    ("nextline-nuca", {"variant": "nextline", "model_l2_capacity": True}),
    ("slicc-dp8", {"variant": "slicc", "data_prefetch_n": 8}),
    (
        "slicc-nuca-dp4-classify",
        {
            "variant": "slicc",
            "model_l2_capacity": True,
            "data_prefetch_n": 4,
            "collect_miss_classes": True,
        },
    ),
    (
        "steps-nuca-classify",
        {
            "variant": "steps",
            "model_l2_capacity": True,
            "collect_miss_classes": True,
        },
    ),
)


def golden_dir() -> Path:
    return Path(__file__).resolve().parent.parent / "tests" / "golden"


def _dump_variants(trace, workload: str, out: Path, variants=VARIANTS) -> None:
    for variant in variants:
        result = simulate(trace, variant=variant)
        path = out / f"{workload}__{variant}.json"
        path.write_text(result_to_json(result) + "\n")
        print(f"wrote {path.name}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="DIR",
        help="output directory (default: tests/golden/)",
    )
    args = parser.parse_args(argv)
    out = args.out if args.out is not None else golden_dir()
    out.mkdir(parents=True, exist_ok=True)
    for workload in GOLDEN_WORKLOADS:
        trace = standard_trace(workload, ScalePreset.SMOKE, seed=GOLDEN_SEED)
        _dump_variants(trace, workload, out)
        for name, kwargs in GOLDEN_CONFIGS:
            result = simulate(trace, config=SimConfig(**kwargs))
            path = out / f"{workload}__cfg-{name}.json"
            path.write_text(result_to_json(result) + "\n")
            print(f"wrote {path.name}")
    for workload in GOLDEN_VARIANT_WORKLOADS:
        trace = standard_trace(workload, ScalePreset.SMOKE, seed=GOLDEN_SEED)
        _dump_variants(trace, workload, out)
    for workload in GOLDEN_POLICY_WORKLOADS:
        trace = standard_trace(workload, ScalePreset.SMOKE, seed=GOLDEN_SEED)
        _dump_variants(trace, workload, out, variants=GOLDEN_POLICIES)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
