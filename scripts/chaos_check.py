#!/usr/bin/env python
"""Seeded chaos run for CI: faults on, sweep, heal, verify.

Drives a smoke-scale sweep through the fault-tolerant Runner under a
deterministic ``REPRO_FAULT`` profile (worker crashes, hangs bounded by
a per-spec timeout, torn store appends), then re-runs fault-free against
the same store and asserts the recovery contract held end to end:

* the chaos pass never takes the process down — every fault is either
  retried to success or recorded as a structured failure row;
* the fault-free resume completes every remaining spec, serving healthy
  rows from the store (no wasted re-simulation);
* after ``compact`` the store audits clean and holds exactly one live
  result per spec, byte-identical to a fault-free reference run.

Faults are injected only inside this process tree and the profile is
seeded, so the schedule — and therefore this script's outcome — is
reproducible. Run from the repo root:

    python scripts/chaos_check.py [--seed N] [--store DIR]
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import warnings
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.errors import SweepFailure  # noqa: E402
from repro.exp import (  # noqa: E402
    ResultStore,
    Runner,
    audit_store,
    compact_store,
    grid,
    result_to_json,
    spec_for,
)
from repro.params import ScalePreset  # noqa: E402
from repro.workloads import standard_trace  # noqa: E402

#: Every fault kind at once, probabilities high enough that a smoke grid
#: reliably exercises crash-retry, timeout-kill and torn-append paths.
CHAOS_PROFILE = "crash:0.4,hang:0.15,torn_write:0.5"
HANG_SECONDS = "30"  # park hung workers well past the timeout
TIMEOUT_SECONDS = 3.0

#: With this seed the deterministic schedule covers the whole recovery
#: matrix on the smoke grid: at least one crash-then-retry success, one
#: crash-doomed failure, one timeout kill, and torn appends.
DEFAULT_SEED = 2


def build_specs(trace):
    return grid(
        spec_for(trace, variant="slicc-sw"),
        {
            "variant": ["base", "slicc", "slicc-sw"],
            "slicc.dilution_t": [0, 5],
        },
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seed", type=int, default=DEFAULT_SEED, help="fault seed"
    )
    parser.add_argument(
        "--store", default=None, help="store directory (default: temp)"
    )
    args = parser.parse_args(argv)

    trace = standard_trace("tpcc-1", ScalePreset.SMOKE, seed=7)
    specs = build_specs(trace)
    keys = {spec.key() for spec in specs}
    reference = {
        spec.key(): result_to_json(
            Runner().run([spec], trace=trace)[0]
        )
        for spec in specs
    }

    store_dir = args.store or tempfile.mkdtemp(prefix="repro-chaos-")
    store_path = Path(store_dir)

    # -- chaos pass ----------------------------------------------------
    os.environ["REPRO_FAULT"] = CHAOS_PROFILE
    os.environ["REPRO_FAULT_SEED"] = str(args.seed)
    os.environ["REPRO_FAULT_HANG_S"] = HANG_SECONDS
    print(f"chaos pass: REPRO_FAULT={CHAOS_PROFILE} seed={args.seed}")
    runner = Runner(
        store=ResultStore(store_path),
        jobs=4,
        retries=2,
        timeout=TIMEOUT_SECONDS,
        backoff=0.05,
    )
    failed = 0
    try:
        runner.run(specs, trace=trace)
    except SweepFailure as failure:
        failed = len(failure.failures)
    stats = runner.last_stats
    print(
        f"  chaos stats: {stats.simulated} simulated, {stats.failed} "
        f"failed ({stats.timed_out} timed out), {stats.retried} retried"
    )
    # Duplicate keys in the grid (base ignores the slicc axes) are
    # served as cache hits, so account for all three buckets.
    assert stats.simulated + stats.failed + stats.cached == len(
        specs
    ), "specs went missing"
    assert failed == stats.failed
    if args.seed == DEFAULT_SEED:
        # The default schedule is pinned to cover the whole matrix.
        assert stats.retried >= 1, "no crash-retry exercised"
        assert stats.timed_out >= 1, "no timeout kill exercised"
        assert stats.failed >= 2, "no retries-exhausted failure exercised"

    # -- fault-free resume --------------------------------------------
    for var in ("REPRO_FAULT", "REPRO_FAULT_SEED", "REPRO_FAULT_HANG_S"):
        os.environ.pop(var, None)
    with warnings.catch_warnings():
        # Torn appends from the chaos pass are expected corruption.
        warnings.simplefilter("ignore")
        resumed = Runner(store=ResultStore(store_path), jobs=4)
        resumed.run(specs, trace=trace)
    print(
        f"  resume stats: {resumed.last_stats.simulated} simulated, "
        f"{resumed.last_stats.cached} cached"
    )
    assert resumed.last_stats.simulated + resumed.last_stats.cached == len(
        specs
    )

    # -- store integrity ----------------------------------------------
    before, kept = compact_store(store_path)
    audit = audit_store(store_path)
    print(
        f"  compact: {before.lines} lines -> {kept} rows "
        f"({before.corrupt} corrupt quarantined)"
    )
    assert audit.clean, f"store still corrupt after compact: {audit}"
    assert audit.live_failures == 0, "resume left failure rows live"
    final = ResultStore(store_path)
    assert set(final.keys()) == keys, "store is missing spec rows"
    for key in keys:
        assert result_to_json(final.get(key)) == reference[key], (
            f"chaos-recovered row for {key[:12]} diverges from the "
            "fault-free reference"
        )
    print(
        f"chaos check passed: {len(keys)} specs recovered byte-identical "
        f"under {CHAOS_PROFILE!r}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
