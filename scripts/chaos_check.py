#!/usr/bin/env python
"""Seeded chaos run for CI: faults on, sweep, heal, verify.

Two regimes, selected by ``--processes``:

**Single process** (default). Drives a smoke-scale sweep through the
fault-tolerant Runner under a deterministic ``REPRO_FAULT`` profile
(worker crashes, hangs bounded by a per-spec timeout, torn store
appends), then re-runs fault-free against the same store and asserts the
recovery contract held end to end:

* the chaos pass never takes the process down — every fault is either
  retried to success or recorded as a structured failure row;
* the fault-free resume completes every remaining spec, serving healthy
  rows from the store (no wasted re-simulation);
* after ``compact`` the store audits clean and holds exactly one live
  result per spec, byte-identical to a fault-free reference run.

**Multi process** (``--processes N``, N >= 2). Enqueues the sweep on a
durable work queue and drains it with N independent ``repro queue work``
processes under a seeded profile that kills *whole workers*: a scanned
seed makes exactly worker ``w0`` die (``os._exit``) right after its
first claim, holding fresh leases; one surviving worker is additionally
SIGKILL'd from outside while it holds a lease; claim and renewal events
are torn at random. The assertions are the distributed recovery
contract:

* the surviving workers reclaim every orphaned lease and finish the
  sweep with no terminal failures and zero stale leases;
* the recovered store holds exactly one live result per spec,
  byte-identical to a fault-free reference run — at-least-once
  execution never changes results;
* ``repro queue status --json`` agrees (drained, nothing failed).

Both regimes are store-backend aware: run with ``--backend sqlite`` (or
``REPRO_STORE_BACKEND=sqlite``, which the CI matrix leg sets) and every
store open in this process tree uses the SQLite backend instead of
JSONL. The recovery contract is asserted identically, plus a migration
gate: the recovered store is migrated across backends (always ending at
JSONL) and the re-exported rows must still be byte-identical to the
fault-free reference — format conversion after a chaotic campaign loses
nothing. Under SQLite the ``torn_write`` fault is inert by design (WAL
commits are atomic); crash/die/hang faults exercise WAL crash recovery
instead, and the pinned single-process assertions only involve those.

Faults are injected only inside this process tree and the profile is
seeded, so the schedule — and therefore this script's outcome — is
reproducible. Run from the repo root:

    python scripts/chaos_check.py [--seed N] [--store DIR] [--processes N]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import warnings
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.errors import SweepFailure  # noqa: E402
from repro.exp import (  # noqa: E402
    STORE_BACKENDS,
    ExperimentSpec,
    ResultStore,
    Runner,
    WorkQueue,
    audit_store,
    compact_store,
    grid,
    migrate_store,
    resolve_backend,
    result_to_json,
    spec_for,
)
from repro.exp.faults import CRASH_EXIT_CODE, parse_fault_spec  # noqa: E402
from repro.params import ScalePreset  # noqa: E402
from repro.workloads import standard_trace  # noqa: E402

#: Every fault kind at once, probabilities high enough that a smoke grid
#: reliably exercises crash-retry, timeout-kill and torn-append paths.
CHAOS_PROFILE = "crash:0.4,hang:0.15,torn_write:0.5"
HANG_SECONDS = "30"  # park hung workers well past the timeout
TIMEOUT_SECONDS = 3.0

#: With this seed the deterministic schedule covers the whole recovery
#: matrix on the smoke grid: at least one crash-then-retry success, one
#: crash-doomed failure, one timeout kill, and torn appends.
DEFAULT_SEED = 2

#: Multi-process profile: whole-worker death, in-pool crashes, a short
#: first-attempt hang on every spec (widens the lease/kill windows; no
#: timeout, so it is never terminal), and torn claim/renewal events.
#: No `torn_write`: a torn result row with the process still alive would
#: mark entries done without a durable row — a state no real crash
#: produces (a dying writer never reaches mark_done). The single-process
#: regime owns that fault; here the store path stays untorn.
MP_PROFILE = "die:0.4@1,crash:0.35,hang:1@1,torn_queue:0.5"
MP_HANG_SECONDS = "0.5"
MP_LEASE_SECONDS = 2.0
MP_RETRIES = 2


def build_specs(trace):
    return grid(
        spec_for(trace, variant="slicc-sw"),
        {
            "variant": ["base", "slicc", "slicc-sw"],
            "slicc.dilution_t": [0, 5],
        },
    )


def build_declarative_specs():
    """The same grid, declaratively — queue workers rebuild the trace
    themselves, so enqueued specs cannot pin an in-memory trace."""
    return grid(
        ExperimentSpec("tpcc-1", scale="smoke", seed=7),
        {
            "variant": ["base", "slicc", "slicc-sw"],
            "slicc.dilution_t": [0, 5],
        },
    )


def active_backend() -> str:
    """The store backend this chaos run exercises (campaign paths are
    directories, so the environment decides)."""
    return os.environ.get("REPRO_STORE_BACKEND", "").strip().lower() or "jsonl"


def check_migration(campaign: Path, keys, reference) -> None:
    """Migration invariant under chaos: the recovered store survives a
    backend conversion with every result row byte-identical.

    A SQLite campaign migrates straight to JSONL; a JSONL campaign
    round-trips through SQLite and back. Either way the last hop is a
    JSONL export, so the gate matches what the nightly artifact check
    asserts. The hop files use non-default names, so they never
    confuse the campaign directory's backend detection.
    """
    active = resolve_backend(campaign)
    if active == "sqlite":
        hops = [campaign / "migrate-check.jsonl"]
    else:
        hops = [
            campaign / "migrate-check.sqlite",
            campaign / "migrate-check.jsonl",
        ]
    src: Path = campaign
    for dst in hops:
        migrate_store(src, dst)
        src = dst
    exported = ResultStore(hops[-1])
    assert set(exported.keys()) == set(keys), (
        "migration dropped spec rows: "
        f"{sorted(set(keys) - set(exported.keys()))[:3]}…"
    )
    for key in keys:
        assert result_to_json(exported.get(key)) == reference[key], (
            f"migrated row for {key[:12]} diverges from the fault-free "
            "reference"
        )
    chain = " -> ".join([active] + [h.suffix.lstrip(".") for h in hops])
    print(
        f"  migration check: {chain} byte-identical ({len(keys)} rows)"
    )


def run_single(args) -> int:
    trace = standard_trace("tpcc-1", ScalePreset.SMOKE, seed=7)
    specs = build_specs(trace)
    keys = {spec.key() for spec in specs}
    reference = {
        spec.key(): result_to_json(
            Runner().run([spec], trace=trace)[0]
        )
        for spec in specs
    }

    store_dir = args.store or tempfile.mkdtemp(prefix="repro-chaos-")
    store_path = Path(store_dir)

    # -- chaos pass ----------------------------------------------------
    os.environ["REPRO_FAULT"] = CHAOS_PROFILE
    os.environ["REPRO_FAULT_SEED"] = str(args.seed)
    os.environ["REPRO_FAULT_HANG_S"] = HANG_SECONDS
    print(f"chaos pass: REPRO_FAULT={CHAOS_PROFILE} seed={args.seed}")
    runner = Runner(
        store=ResultStore(store_path),
        jobs=4,
        retries=2,
        timeout=TIMEOUT_SECONDS,
        backoff=0.05,
    )
    failed = 0
    try:
        runner.run(specs, trace=trace)
    except SweepFailure as failure:
        failed = len(failure.failures)
    stats = runner.last_stats
    print(
        f"  chaos stats: {stats.simulated} simulated, {stats.failed} "
        f"failed ({stats.timed_out} timed out), {stats.retried} retried"
    )
    # Duplicate keys in the grid (base ignores the slicc axes) are
    # served as cache hits, so account for all three buckets.
    assert stats.simulated + stats.failed + stats.cached == len(
        specs
    ), "specs went missing"
    assert failed == stats.failed
    if args.seed == DEFAULT_SEED:
        # The default schedule is pinned to cover the whole matrix.
        assert stats.retried >= 1, "no crash-retry exercised"
        assert stats.timed_out >= 1, "no timeout kill exercised"
        assert stats.failed >= 2, "no retries-exhausted failure exercised"

    # -- fault-free resume --------------------------------------------
    for var in ("REPRO_FAULT", "REPRO_FAULT_SEED", "REPRO_FAULT_HANG_S"):
        os.environ.pop(var, None)
    with warnings.catch_warnings():
        # Torn appends from the chaos pass are expected corruption.
        warnings.simplefilter("ignore")
        resumed = Runner(store=ResultStore(store_path), jobs=4)
        resumed.run(specs, trace=trace)
    print(
        f"  resume stats: {resumed.last_stats.simulated} simulated, "
        f"{resumed.last_stats.cached} cached"
    )
    assert resumed.last_stats.simulated + resumed.last_stats.cached == len(
        specs
    )

    # -- store integrity ----------------------------------------------
    before, kept = compact_store(store_path)
    audit = audit_store(store_path)
    print(
        f"  compact: {before.lines} lines -> {kept} rows "
        f"({before.corrupt} corrupt quarantined)"
    )
    assert audit.clean, f"store still corrupt after compact: {audit}"
    assert audit.live_failures == 0, "resume left failure rows live"
    final = ResultStore(store_path)
    assert set(final.keys()) == keys, "store is missing spec rows"
    for key in keys:
        assert result_to_json(final.get(key)) == reference[key], (
            f"chaos-recovered row for {key[:12]} diverges from the "
            "fault-free reference"
        )
    check_migration(store_path, keys, reference)
    print(
        f"chaos check passed: {len(keys)} specs recovered byte-identical "
        f"under {CHAOS_PROFILE!r} ({active_backend()} store)"
    )
    return 0


def scan_mp_seed(worker_ids, keys, start: int) -> int:
    """First seed >= start whose schedule kills exactly ``w0`` (and no
    other worker) at its first claim, dooms no spec (some crash-free
    attempt within the retry budget), and crashes at least one first
    attempt so the in-pool retry path runs too."""
    for seed in range(start, start + 5000):
        plan = parse_fault_spec(MP_PROFILE, seed=seed)
        dies = [w for w in worker_ids if plan.should("die", w, 0)]
        if dies != [worker_ids[0]]:
            continue
        doomed = [
            k
            for k in keys
            if all(plan.should("crash", k, a) for a in range(MP_RETRIES + 1))
        ]
        if doomed:
            continue
        if not any(plan.should("crash", k, 0) for k in keys):
            continue
        return seed
    raise AssertionError("no suitable multi-process chaos seed found")


def _queue_events(queue_path: Path) -> list[dict]:
    events = []
    for line in queue_path.read_text(encoding="utf-8").splitlines():
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            continue  # torn claim/renewal fragments — expected
    return events


def run_multi(args) -> int:
    n = args.processes
    assert n >= 2, "--processes needs at least 2 workers"
    specs = build_declarative_specs()
    keys = {spec.key() for spec in specs}
    reference = {
        spec.key(): result_to_json(Runner().run([spec])[0]) for spec in specs
    }

    store_dir = args.store or tempfile.mkdtemp(prefix="repro-chaos-mp-")
    campaign = Path(store_dir)
    queue = WorkQueue(campaign, worker_id="chaos-observer")
    enqueued = queue.enqueue(specs)
    print(
        f"multi-process chaos: {enqueued} specs enqueued "
        f"({len(specs) - enqueued} grid points share keys), "
        f"{n} workers"
    )
    assert enqueued == len(keys)

    worker_ids = [f"w{i}" for i in range(n)]
    seed = scan_mp_seed(worker_ids, sorted(keys), args.seed)
    print(f"  profile: REPRO_FAULT={MP_PROFILE} seed={seed} (scanned)")

    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["REPRO_FAULT"] = MP_PROFILE
    env["REPRO_FAULT_SEED"] = str(seed)
    env["REPRO_FAULT_HANG_S"] = MP_HANG_SECONDS

    def spawn(worker_id):
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "queue",
                "work",
                str(campaign),
                "--jobs",
                "2",
                "--lease",
                str(MP_LEASE_SECONDS),
                "--retries",
                str(MP_RETRIES),
                "--max-claims",
                "6",
                "--poll",
                "0.2",
                "--worker-id",
                worker_id,
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )

    # w0 starts alone so it definitely claims first — and dies at its
    # first claim cycle, leaving its fresh leases orphaned.
    procs = {worker_ids[0]: spawn(worker_ids[0])}
    out0, _ = procs[worker_ids[0]].communicate(timeout=60)
    rc0 = procs[worker_ids[0]].returncode
    print(f"  {worker_ids[0]}: exit {rc0} (injected die)")
    assert rc0 == CRASH_EXIT_CODE, (
        f"{worker_ids[0]} should have died with {CRASH_EXIT_CODE}, "
        f"got {rc0}: {out0}"
    )
    orphaned = queue.snapshot().leased
    print(f"  {worker_ids[0]} left {orphaned} orphaned lease(s)")
    assert orphaned >= 1, "die victim claimed nothing — no orphans to prove"

    survivors = worker_ids[1:]
    for worker_id in survivors:
        procs[worker_id] = spawn(worker_id)

    # SIGKILL one survivor from outside while it holds a live lease —
    # the case where not even os._exit runs. Keep at least one worker.
    sigkilled = None
    deadline = time.time() + 30
    while sigkilled is None and time.time() < deadline:
        snap = queue.snapshot()
        if snap.drained:
            break
        if len(survivors) >= 2:
            for worker_id in survivors[:-1]:
                proc = procs[worker_id]
                if proc.poll() is None and snap.workers.get(worker_id, 0):
                    os.kill(proc.pid, signal.SIGKILL)
                    sigkilled = worker_id
                    print(f"  SIGKILL'd {worker_id} holding a lease")
                    break
        else:
            break
        time.sleep(0.05)
    if sigkilled is None and len(survivors) >= 2:
        print("  note: drain finished before the SIGKILL window opened")

    outputs = {}
    for worker_id in survivors:
        out, _ = procs[worker_id].communicate(timeout=180)
        outputs[worker_id] = out
    for worker_id in survivors:
        rc = procs[worker_id].returncode
        if worker_id == sigkilled:
            assert rc == -signal.SIGKILL, f"{worker_id}: expected -9, got {rc}"
            continue
        print(f"  {worker_id}: exit {rc}")
        assert rc == 0, f"{worker_id} failed ({rc}): {outputs[worker_id]}"

    # -- distributed recovery contract ---------------------------------
    snap = queue.snapshot()
    assert snap.drained, f"queue not drained: {snap}"
    assert snap.done == len(keys), f"{snap.done}/{len(keys)} done"
    assert snap.failed == 0, f"terminal queue failures: {snap.failed}"
    assert not snap.stale, f"stale leases remain: {snap.stale}"
    events = _queue_events(queue.path)
    abandoned = [e for e in events if e.get("event") == "abandoned"]
    assert abandoned, "no lease was ever reclaimed — chaos did not chaos"

    status_json = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "queue",
            "status",
            str(campaign),
            "--json",
        ],
        env={k: v for k, v in env.items() if not k.startswith("REPRO_FAULT")},
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert status_json.returncode == 0, status_json.stderr
    payload = json.loads(status_json.stdout)
    assert payload["drained"] and payload["stale_leases"] == 0, payload
    assert payload["done"] == len(keys) and payload["failed"] == 0, payload
    # The payload must name the campaign's store backend and schema so
    # CI legs can pin the leg they think they are running.
    assert payload["store_backend"] == active_backend(), payload
    assert payload["store_schema_version"] == 1, payload

    before, kept = compact_store(campaign)
    audit = audit_store(campaign)
    print(
        f"  store: {before.lines} lines -> {kept} rows "
        f"({before.superseded} duplicate finishes collapsed)"
    )
    assert audit.clean and audit.live_failures == 0, audit
    final = ResultStore(campaign)
    assert set(final.keys()) == keys, "store is missing spec rows"
    for key in keys:
        assert result_to_json(final.get(key)) == reference[key], (
            f"multi-process row for {key[:12]} diverges from the "
            "fault-free reference"
        )
    check_migration(campaign, keys, reference)
    print(
        f"multi-process chaos check passed: {len(keys)} specs, "
        f"{len(abandoned)} lease reclaim(s), workers lost: "
        f"{worker_ids[0]} (die)"
        + (f" + {sigkilled} (SIGKILL)" if sigkilled else "")
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_SEED,
        help="fault seed (multi-process mode scans upward from here)",
    )
    parser.add_argument(
        "--store", default=None, help="store directory (default: temp)"
    )
    parser.add_argument(
        "--backend",
        choices=STORE_BACKENDS,
        default=None,
        help="store backend to chaos-test (exported as "
        "REPRO_STORE_BACKEND so worker subprocesses inherit it; "
        "default: the inherited environment, else jsonl)",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=1,
        metavar="N",
        help="drain via N independent `repro queue work` processes with "
        "whole-worker kills (default: 1 = single-process regime)",
    )
    args = parser.parse_args(argv)
    if args.backend:
        os.environ["REPRO_STORE_BACKEND"] = args.backend
    if args.processes > 1:
        return run_multi(args)
    return run_single(args)


if __name__ == "__main__":
    sys.exit(main())
