#!/usr/bin/env python
"""Result-store scaling benchmark (the `store-scale` CI gate).

Populates each store backend with N synthetic result rows (default
100k) through the store's own bulk-import path, then times the
operations the runner and queue actually lean on at sweep scale:

* **full load** (jsonl only): opening the store folds the whole file —
  the O(rows) cost that motivates the indexed backend;
* **cold canonical-key lookup**: fresh store open + one ``get(key)`` —
  a dedup probe by a worker that just started;
* **resume-skip scan**: ``key in store`` over a sample of keys on an
  already-open store — the "cached, skip" pass a resumed sweep makes.

Two kinds of gate:

* **Structural (always on):** the SQLite cold lookup must be sublinear
  in N — measured at N and N/10, the ratio must stay under
  ``SUBLINEAR_MAX`` (a linear scan would track N) — and must beat the
  JSONL full-file load by at least ``COLD_VS_LOAD_FACTOR``x at N rows.
  These hold by construction (B-tree point query vs whole-file fold),
  so a failure means the indexed path stopped being used.
* **Baseline (``--check``):** throughput metrics are compared against a
  committed JSON baseline and any >``--max-regression`` drop fails,
  exactly like ``perf_bench.py``. Only averaged-over-many-ops metrics
  are baseline-gated (populate, full load, resume scan); the
  single-digit-millisecond cold lookup is covered by the structural
  gates instead, where noise cannot flake.

Regenerate the committed baseline on an intentional store-performance
change with the same command plus
``--out benchmarks/store_baseline_smoke.json``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.exp import ResultStore  # noqa: E402

#: SQLite cold-lookup time at N rows may be at most this multiple of
#: the same measurement at N/10 rows. A B-tree probe grows ~log(N); a
#: backend that silently fell back to scanning would blow straight
#: through this.
SUBLINEAR_MAX = 4.0

#: The SQLite cold lookup must beat the JSONL full-file load by at
#: least this factor at N rows — the headline reason the backend
#: exists.
COLD_VS_LOAD_FACTOR = 4.0

#: (backend, metric) pairs compared against the committed baseline.
CHECK_METRICS = (
    ("jsonl", "populate_rps"),
    ("jsonl", "full_load_rps"),
    ("jsonl", "resume_keys_per_sec"),
    ("sqlite", "populate_rps"),
    ("sqlite", "resume_keys_per_sec"),
)

#: Template result payload, shaped like a real smoke-scale row.
_RESULT_TEMPLATE = {
    "variant": "slicc-sw",
    "workload": "tpcc-1",
    "cycles": 1_000_000,
    "instructions": 5_000_000,
    "i_accesses": 400_000,
    "i_misses": 40_000,
    "d_accesses": 200_000,
    "d_misses": 10_000,
    "migrations": 300,
    "utilization": 0.625,
    "miss_class_mpki": {"instruction": {"cold": 1.5, "dilution": 0.4}},
}


def synth_key(i: int) -> str:
    """Deterministic canonical-key stand-in (same shape as spec.key())."""
    return hashlib.sha256(f"store-bench-{i}".encode()).hexdigest()


def synth_rows(n: int):
    for i in range(n):
        payload = dict(_RESULT_TEMPLATE)
        payload["cycles"] = 1_000_000 + i
        yield {"key": synth_key(i), "spec": None, "result": payload}


def populate(path: Path, backend: str, n: int) -> float:
    store = ResultStore(path, backend=backend)
    t0 = time.perf_counter()
    store.bulk_load(synth_rows(n))
    seconds = time.perf_counter() - t0
    store.close()
    return seconds


def cold_lookup(path: Path, backend: str, probes: list[str]) -> float:
    """Best-of-probes fresh-open + single get (seconds)."""
    best = float("inf")
    for key in probes:
        t0 = time.perf_counter()
        store = ResultStore(path, backend=backend)
        assert store.get(key) is not None, "probe key missing"
        best = min(best, time.perf_counter() - t0)
        store.close()
    return best


def resume_scan(store: ResultStore, sample: list[str]) -> float:
    t0 = time.perf_counter()
    hits = sum(1 for key in sample if key in store)
    seconds = time.perf_counter() - t0
    assert hits == len(sample), "resume scan missed stored keys"
    return seconds


def host_metadata() -> dict:
    """CPU model, core count and platform of the measuring machine (the
    same shape scripts/perf_bench.py records) — store numbers are as
    machine-dependent as engine numbers."""
    import os

    cpu_model = ""
    try:
        with open("/proc/cpuinfo", encoding="utf-8") as fh:
            for line in fh:
                if line.lower().startswith("model name"):
                    cpu_model = line.split(":", 1)[1].strip()
                    break
    except OSError:
        pass
    return {
        "cpu_model": cpu_model or platform.processor() or "unknown",
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
    }


def bench(n: int, workdir: Path, repeat: int) -> dict:
    """Measure both backends at N rows (plus SQLite at N/10 for the
    sublinearity gate); returns the result document."""
    small_n = max(n // 10, 1)
    sample = [synth_key(i) for i in range(0, n, max(n // 1000, 1))]
    probes = [synth_key(int(f * (n - 1))) for f in (0.0, 0.37, 0.73, 0.99)]
    probes = (probes * repeat)[: max(len(probes), repeat)]
    doc: dict = {
        "rows": n,
        "repeat": repeat,
        "python": platform.python_version(),
        "host": host_metadata(),
        "backends": {},
    }

    paths = {
        "jsonl": workdir / "bench.jsonl",
        "sqlite": workdir / "bench.sqlite",
    }
    for backend, path in paths.items():
        row: dict = {}
        row["populate_seconds"] = round(populate(path, backend, n), 4)
        row["populate_rps"] = round(n / row["populate_seconds"])
        if backend == "jsonl":
            t0 = time.perf_counter()
            store = ResultStore(path)
            load_seconds = time.perf_counter() - t0
            assert len(store) == n
            row["full_load_seconds"] = round(load_seconds, 4)
            row["full_load_rps"] = round(n / load_seconds)
        else:
            store = ResultStore(path)
        scan_seconds = resume_scan(store, sample)
        row["resume_keys_per_sec"] = round(len(sample) / scan_seconds)
        store.close()
        row["cold_lookup_seconds"] = round(
            cold_lookup(path, backend, probes), 6
        )
        doc["backends"][backend] = row
        print(
            f"{backend:>6} @ {n} rows: populate {row['populate_rps']:>8} "
            f"rows/s, resume scan {row['resume_keys_per_sec']:>8} keys/s, "
            f"cold lookup {row['cold_lookup_seconds'] * 1e3:8.2f} ms"
            + (
                f", full load {row['full_load_seconds']:.2f}s"
                if backend == "jsonl"
                else ""
            ),
            flush=True,
        )

    small_path = workdir / "bench-small.sqlite"
    populate(small_path, "sqlite", small_n)
    small_probes = [
        synth_key(int(f * (small_n - 1))) for f in (0.0, 0.37, 0.73, 0.99)
    ]
    doc["sublinearity"] = {
        "small_rows": small_n,
        "sqlite_cold_small_seconds": round(
            cold_lookup(small_path, "sqlite", small_probes), 6
        ),
        "sqlite_cold_full_seconds": doc["backends"]["sqlite"][
            "cold_lookup_seconds"
        ],
    }
    sub = doc["sublinearity"]
    sub["ratio"] = round(
        sub["sqlite_cold_full_seconds"]
        / max(sub["sqlite_cold_small_seconds"], 1e-9),
        3,
    )
    print(
        f"sublinearity: cold lookup {sub['sqlite_cold_small_seconds'] * 1e3:.2f} ms "
        f"@ {small_n} rows -> {sub['sqlite_cold_full_seconds'] * 1e3:.2f} ms "
        f"@ {n} rows (ratio {sub['ratio']:.2f}, max {SUBLINEAR_MAX})",
        flush=True,
    )
    return doc


def structural_gates(doc: dict) -> list[str]:
    """The baseline-free invariants; returns failure messages."""
    failures = []
    sub = doc["sublinearity"]
    if sub["ratio"] > SUBLINEAR_MAX:
        failures.append(
            f"sqlite cold lookup is not sublinear: {sub['ratio']:.2f}x "
            f"going {sub['small_rows']} -> {doc['rows']} rows "
            f"(max {SUBLINEAR_MAX}x) — point lookups appear to scan"
        )
    cold = doc["backends"]["sqlite"]["cold_lookup_seconds"]
    load = doc["backends"]["jsonl"]["full_load_seconds"]
    if cold * COLD_VS_LOAD_FACTOR > load:
        failures.append(
            f"sqlite cold lookup ({cold * 1e3:.1f} ms) does not beat the "
            f"jsonl full load ({load * 1e3:.1f} ms) by "
            f"{COLD_VS_LOAD_FACTOR}x at {doc['rows']} rows"
        )
    return failures


def check(doc: dict, baseline_path: Path, max_regression: float) -> int:
    """Compare throughput metrics against the baseline; exit code."""
    baseline = json.loads(baseline_path.read_text())
    failures = []
    compared = 0
    for backend, metric in CHECK_METRICS:
        base_row = baseline.get("backends", {}).get(backend, {})
        row = doc["backends"].get(backend, {})
        if metric not in base_row or metric not in row:
            continue
        compared += 1
        floor = base_row[metric] * (1.0 - max_regression)
        status = "ok" if row[metric] >= floor else "REGRESSED"
        print(
            f"check {backend}/{metric:>20}: {row[metric]:>9} vs "
            f"baseline {base_row[metric]:>9} (floor {floor:>11.0f}) "
            f"{status}"
        )
        if status != "ok":
            failures.append(
                f"{backend}/{metric} at "
                f"{row[metric] / base_row[metric]:.2f}x of baseline"
            )
    if failures:
        print(
            f"FAIL: {', '.join(failures)} — below the "
            f"{1.0 - max_regression:.2f}x floor vs {baseline_path}"
        )
        return 1
    if compared == 0:
        # A gate that compared nothing passed nothing (wrong baseline
        # file / renamed metrics); fail loudly, as perf_bench does.
        print(
            f"FAIL: no metric of this run matched {baseline_path}; "
            "the regression gate compared nothing"
        )
        return 1
    print(f"store check passed ({compared} metrics compared)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--rows",
        type=int,
        default=100_000,
        help="synthetic result rows per backend (default: 100000)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=4,
        help="cold-lookup probes per backend; best is kept (default: 4)",
    )
    parser.add_argument(
        "--dir",
        type=Path,
        default=None,
        help="working directory for the store files (default: temp, "
        "removed afterwards)",
    )
    parser.add_argument("--out", type=Path, help="write results as JSON")
    parser.add_argument(
        "--check", type=Path, help="baseline JSON to compare against"
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional throughput drop in --check mode",
    )
    args = parser.parse_args(argv)

    workdir = args.dir or Path(tempfile.mkdtemp(prefix="repro-store-bench-"))
    workdir.mkdir(parents=True, exist_ok=True)
    try:
        doc = bench(args.rows, workdir, args.repeat)
    finally:
        if args.dir is None:
            shutil.rmtree(workdir, ignore_errors=True)

    rc = 0
    for message in structural_gates(doc):
        print(f"FAIL: {message}")
        rc = 1
    if rc == 0:
        print("structural gates passed (sublinear lookup, beats full load)")
    if args.out:
        args.out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    if args.check:
        rc = max(rc, check(doc, args.check, args.max_regression))
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
