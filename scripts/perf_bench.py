#!/usr/bin/env python
"""Replay-engine throughput benchmark (the perf trajectory's data source).

Times :func:`repro.sim.engine.simulate` per variant on a fixed,
deterministically generated trace and reports records/second plus wall
time. Two modes:

* ``--out`` writes the measurements as JSON (``BENCH_<n>.json`` at the
  repo root is the convention for the per-PR perf trajectory);
* ``--check`` compares the measurements against a committed baseline
  JSON and exits non-zero when any variant's throughput regressed by
  more than ``--max-regression`` (the CI perf-smoke gate).

One workload is timed by default (``--workload``); ``--workloads a,b,c``
times several and emits a multi-workload document (top-level
``"workloads"`` mapping, one single-workload document per name), so the
perf trajectory can span scenario diversity in one file. ``--check``
accepts either shape on either side — a workload present in only one of
the two documents is skipped.

Each trace is generated once and reused across variants and repeats, so
the numbers isolate engine throughput from trace generation. Each
variant is timed ``--repeat`` times and the best run is kept (minimum
wall time is the standard low-noise estimator for CPU-bound loops).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.errors import ConfigurationError  # noqa: E402
from repro.params import ScalePreset  # noqa: E402
from repro.sched import policy_names  # noqa: E402
from repro.sim.engine import (  # noqa: E402
    VARIANTS,
    ReplayEngine,
    SimConfig,
    simulate,
)
from repro.workloads import standard_trace  # noqa: E402

#: Variants timed by default: the paper's seven plus ``tmi``, so the
#: perf gate covers a migrating policy that takes the plain fast path
#: with quantum-boundary hooks (the extension-policy overhead model).
DEFAULT_BENCH_VARIANTS = list(VARIANTS) + ["tmi"]


def host_metadata() -> dict:
    """CPU model, core count and platform of the measuring machine.

    Recorded in every bench document so BENCH_<n> files are comparable
    across machines (absolute rec/s only means anything next to the
    hardware that produced it; ratios within one file stay the
    machine-independent signal).
    """
    cpu_model = ""
    try:
        with open("/proc/cpuinfo", encoding="utf-8") as fh:
            for line in fh:
                if line.lower().startswith("model name"):
                    cpu_model = line.split(":", 1)[1].strip()
                    break
    except OSError:
        pass
    return {
        "cpu_model": cpu_model or platform.processor() or "unknown",
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
    }


def profile_hotspots(trace, config: SimConfig, top: int = 15) -> list[dict]:
    """cProfile one simulation; the top-``top`` cumulative hotspots.

    Rows carry the same fields a ``pstats`` line would (call counts,
    tottime, cumtime) so future perf PRs start from measured
    attribution instead of guesses.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    simulate(trace, config=config)
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    rows = []
    for func in stats.fcn_list[:top]:
        cc, nc, tt, ct, _callers = stats.stats[func]
        filename, lineno, name = func
        rows.append(
            {
                "function": f"{Path(filename).name}:{lineno}({name})",
                "ncalls": nc,
                "tottime": round(tt, 4),
                "cumtime": round(ct, 4),
            }
        )
    return rows


def bench(
    workload: str,
    scale: ScalePreset,
    variants: list[str],
    repeat: int,
    seed: int,
    kernel: str = "auto",
    profile: bool = False,
) -> dict:
    """Measure every variant; returns the result document.

    ``kernel`` forces a replay kernel (``batch``/``specialized``/
    ``inline``/``fallback``); the default ``auto`` is the engine's own
    selection. ``profile`` additionally cProfiles one (untimed) run per
    variant and records the top-15 cumulative hotspots.
    Each measurement row records the kernel the engine actually ran
    (``auto`` resolves per config), so baselines pin *which* code path
    their numbers describe and a regression can be blamed on the right
    kernel. Variants a forced kernel cannot run (e.g. ``batch`` with
    nextline's prefetcher) are reported as skipped rather than failing
    the whole sweep.
    """
    trace = standard_trace(workload, scale, seed=seed)
    records = trace.total_records
    doc: dict = {
        "workload": workload,
        "scale": scale.value,
        "seed": seed,
        "n_threads": len(trace.threads),
        "total_records": records,
        "repeat": repeat,
        "kernel": kernel,
        "python": platform.python_version(),
        "host": host_metadata(),
        "variants": {},
    }
    for variant in variants:
        config = SimConfig(variant=variant, kernel=kernel)
        try:
            used = ReplayEngine(trace, config).kernel
        except ConfigurationError as exc:
            print(f"{workload}/{variant:>9}: skipped ({exc})", flush=True)
            doc["variants"][variant] = {"skipped": str(exc)}
            continue
        best = float("inf")
        for _ in range(repeat):
            t0 = time.perf_counter()
            simulate(trace, config=config)
            best = min(best, time.perf_counter() - t0)
        row = {
            "seconds": round(best, 4),
            "records_per_sec": round(records / best),
            "kernel": used,
        }
        if profile:
            row["profile"] = profile_hotspots(trace, config)
        doc["variants"][variant] = row
        print(
            f"{workload}/{variant:>9} [{used}]: {best:7.3f}s  "
            f"{records / best / 1e3:8.1f} krec/s",
            flush=True,
        )
    return doc


def _per_workload(doc: dict) -> dict[str, dict]:
    """Normalise a bench document to ``{workload: single-workload doc}``.

    Accepts both the single-workload shape (``"variants"`` at top level)
    and the multi-workload shape (``"workloads"`` mapping).
    """
    if "workloads" in doc:
        return doc["workloads"]
    return {doc.get("workload", "?"): doc}


def check(doc: dict, baseline_path: Path, max_regression: float) -> int:
    """Compare ``doc`` against a baseline file; returns the exit code."""
    baseline = json.loads(baseline_path.read_text())
    base_docs = _per_workload(baseline)
    failures = []
    compared = 0
    for workload, wdoc in _per_workload(doc).items():
        base_doc = base_docs.get(workload)
        if base_doc is None:
            continue
        for variant, row in wdoc["variants"].items():
            base_row = base_doc.get("variants", {}).get(variant)
            if base_row is None:
                continue
            if "skipped" in row or "skipped" in base_row:
                continue
            compared += 1
            floor = base_row["records_per_sec"] * (1.0 - max_regression)
            ratio = row["records_per_sec"] / base_row["records_per_sec"]
            status = "ok" if row["records_per_sec"] >= floor else "REGRESSED"
            # Older baselines predate the kernel field; report those as
            # the inline loop, which is what they measured.
            kernel = row.get("kernel", "inline")
            print(
                f"check {workload}/{variant:>9} [{kernel}]: "
                f"{row['records_per_sec']:>9} rec/s vs "
                f"baseline {base_row['records_per_sec']:>9} "
                f"(floor {floor:>11.0f}) {status}"
            )
            if status != "ok":
                failures.append((f"{workload}/{variant}", kernel, ratio))
    if failures:
        # Name every offender with its kernel and measured ratio so a CI
        # failure line is diagnosable without re-running the harness.
        detail = ", ".join(
            f"{name} ({kernel} kernel) at {ratio:.2f}x of baseline"
            for name, kernel, ratio in failures
        )
        print(
            f"FAIL: {detail} — below the {1.0 - max_regression:.2f}x floor "
            f"(max regression {max_regression:.0%}) vs {baseline_path}"
        )
        return 1
    if compared == 0:
        # A gate that compared nothing passed nothing: workload/variant
        # keys of the run and the baseline are disjoint (renamed
        # workload, wrong baseline file, ...). Fail loudly rather than
        # silently disabling the regression check.
        print(
            f"FAIL: no variant of this run matched {baseline_path}; "
            "the regression gate compared nothing"
        )
        return 1
    print(f"perf check passed ({compared} variants compared)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="tpcc-10")
    parser.add_argument(
        "--workloads",
        default=None,
        metavar="A,B,C",
        help="comma-separated workload list; emits a multi-workload "
        "document and overrides --workload",
    )
    parser.add_argument(
        "--scale", default="ci", choices=[p.value for p in ScalePreset]
    )
    parser.add_argument(
        "--variants",
        nargs="+",
        default=DEFAULT_BENCH_VARIANTS,
        choices=list(policy_names()),
    )
    parser.add_argument("--repeat", type=int, default=2)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--kernel",
        default="auto",
        choices=["auto", "batch", "specialized", "inline", "fallback"],
        help="force a replay kernel; auto is the engine's own selection "
        "(the kernel actually used is recorded per measurement)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="cProfile one extra (untimed) run per variant and record "
        "the top-15 cumulative hotspots under the variant's 'profile' "
        "key",
    )
    parser.add_argument("--out", type=Path, help="write results as JSON")
    parser.add_argument(
        "--check", type=Path, help="baseline JSON to compare against"
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional throughput drop in --check mode",
    )
    args = parser.parse_args(argv)

    if args.workloads:
        workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
        doc = {
            "scale": args.scale,
            "seed": args.seed,
            "repeat": args.repeat,
            "kernel": args.kernel,
            "python": platform.python_version(),
            "host": host_metadata(),
            "workloads": {
                workload: bench(
                    workload,
                    ScalePreset(args.scale),
                    args.variants,
                    args.repeat,
                    args.seed,
                    args.kernel,
                    args.profile,
                )
                for workload in workloads
            },
        }
    else:
        doc = bench(
            args.workload,
            ScalePreset(args.scale),
            args.variants,
            args.repeat,
            args.seed,
            args.kernel,
            args.profile,
        )
    if args.out:
        args.out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    if args.check:
        return check(doc, args.check, args.max_regression)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
