"""Figure 7 — I/D-MPKI and speedup vs fill-up_t x matched_t.

Paper result: performance is largely insensitive to fill-up_t (it only
shapes warm-up); matched_t beyond ~4 limits migration and erodes the
benefit, while matched_t = 2 migrates too often. The paper runs this
plane with dilution_t = 0.
"""

import pytest

from repro.analysis import format_table, sweep_fillup_matched

FILL_VALUES = (128, 256, 384, 512)
MATCH_VALUES = (2, 4, 6, 8, 10)


@pytest.mark.parametrize("workload", ["tpcc-1", "tpce"])
def test_fig07_grid(benchmark, traces, run_sim, exp_runner, workload):
    trace = traces[workload]
    baseline = run_sim(workload, "base")

    def run():
        return sweep_fillup_matched(
            trace,
            fill_up_values=FILL_VALUES,
            matched_values=MATCH_VALUES,
            baseline=baseline,
            runner=exp_runner,
        )

    points = benchmark.pedantic(run, iterations=1, rounds=1)
    rows = [
        [p.fill_up_t, p.matched_t, p.i_mpki, p.d_mpki, p.speedup, p.migrations]
        for p in points
    ]
    print()
    print(
        format_table(
            ["fill-up_t", "matched_t", "I-MPKI", "D-MPKI", "speedup", "migs"],
            rows,
            title=f"Figure 7 — {workload} (dilution_t=0)",
        )
    )
    # Shape checks: fill-up_t insensitivity (spread of speedups across
    # fill-up at the paper's matched_t=4 stays small)...
    at_match4 = [p.speedup for p in points if p.matched_t == 4]
    assert max(at_match4) - min(at_match4) < 0.35
    # ...and larger matched_t migrates less.
    migs_by_match = {
        m: sum(p.migrations for p in points if p.matched_t == m)
        for m in MATCH_VALUES
    }
    assert migs_by_match[10] < migs_by_match[2]
