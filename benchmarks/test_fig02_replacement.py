"""Figure 2 — L1-I MPKI under seven replacement policies.

Paper result: BRRIP/DRRIP are the best non-LRU policies but only cut
~8% of LRU's instruction misses — far short of what bigger caches (or
SLICC) recover, because OLTP's recurring patterns exceed what insertion
policies can capture.
"""

import pytest

from repro.analysis import format_table
from repro.cache.policies import policy_names
from repro.params import CacheParams, SystemParams

POLICIES = ("lru", "lip", "bip", "dip", "srrip", "brrip", "drrip")


def _sweep_policies(run_sims, workload):
    requests = {
        policy: (
            "base",
            dict(system=SystemParams(l1i=CacheParams(policy=policy))),
        )
        for policy in POLICIES
    }
    results = run_sims(workload, requests)
    return [[policy, results[policy].i_mpki] for policy in POLICIES]


@pytest.mark.parametrize("workload", ["tpcc-1", "tpce", "mapreduce"])
def test_fig02_replacement_policies(benchmark, run_sims, workload):
    rows = benchmark.pedantic(
        _sweep_policies, args=(run_sims, workload), iterations=1, rounds=1
    )
    print()
    print(
        format_table(
            ["policy", "I-MPKI"],
            rows,
            title=f"Figure 2 — {workload} (paper: best policy ~8% below LRU)",
        )
    )
    mpki = dict((r[0], r[1]) for r in rows)
    assert set(POLICIES) <= set(policy_names())
    if workload != "mapreduce":
        # Shape that holds at this trace scale (see EXPERIMENTS.md): DIP's
        # duel tracks LRU closely, and no policy recovers anywhere near
        # what larger caches or SLICC do — the paper's actual argument.
        # (The paper's ~8% win for B/DRRIP needs longer-period thrash than
        # our shortened traces exhibit, and RRIP's scan-resistance
        # actively penalises the two-pass segment-visit structure: a new
        # segment's blocks are evicted before their second pass proves
        # reuse. The unit tests validate the bimodal win on true cyclic
        # streams.)
        assert mpki["dip"] <= mpki["lru"] * 1.15
        assert mpki["drrip"] <= mpki["lru"] * 1.55
        best = min(mpki.values())
        assert best > 0.5 * mpki["lru"]
