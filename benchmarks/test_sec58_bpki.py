"""Section 5.8 — remote segment search broadcasts per kilo-instruction.

Paper result: BPKI is very low — TPC-C: 2.204 (SLICC) / 0.28 (SW, Pp);
TPC-E: 1.328 / 0.367 — because searches only happen around migrations,
and the type-aware variants migrate more purposefully.
"""

import pytest

from repro.analysis import format_table

PAPER_BPKI = {
    ("tpcc-1", "slicc"): 2.204,
    ("tpcc-1", "slicc-sw"): 0.28,
    ("tpce", "slicc"): 1.328,
    ("tpce", "slicc-sw"): 0.367,
}


@pytest.mark.parametrize("workload", ["tpcc-1", "tpce"])
def test_sec58_broadcast_frequency(benchmark, run_sims, workload):
    def run():
        return run_sims(workload, ("slicc", "slicc-sw", "slicc-pp"))

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    rows = []
    for variant, r in results.items():
        rows.append(
            [
                variant,
                r.bpki,
                PAPER_BPKI.get((workload, variant), float("nan")),
                r.instructions_per_migration(),
            ]
        )
    print()
    print(
        format_table(
            ["variant", "BPKI", "paper BPKI", "instr/migration"],
            rows,
            title=f"Section 5.8 — {workload} (paper: ~3.2K instr/migration)",
        )
    )
    # Shape: broadcasts are rare relative to instructions (single digits
    # per kilo-instruction), and the type-aware variants search no more
    # than the oblivious one.
    assert results["slicc"].bpki < 10
    assert results["slicc-sw"].bpki <= results["slicc"].bpki * 1.5
