"""Figure 9 — partial-address bloom filter accuracy vs size.

Paper result: accuracy (filter and cache agreeing on hit/miss per
access) climbs from ~97% at 512 bits to ~99.3% at 2K bits, similar for
TPC-C and TPC-E; 2K bits is the chosen operating point.
"""

import pytest

from repro.analysis import format_table
from repro.cache import SetAssociativeCache
from repro.core import BloomSignature
from repro.params import CacheParams
from repro.workloads.trace import KIND_INSTR

BLOOM_BITS = (512, 1024, 2048, 4096, 8192)


def _accuracy(trace, bits):
    """Replay the instruction stream of several threads through one 32KB
    L1-I and measure probe agreement per *instruction* access.

    The paper's metric is per executed instruction: the ~11 subsequent
    instructions of a fetched 64B block re-hit the same line and
    trivially agree, so only the first access of each block record can
    disagree. Block-grain agreement a maps to instruction-grain
    1 - (1 - a) / instructions_per_iblock.
    """
    cache = SetAssociativeCache(CacheParams())
    sig = BloomSignature(bits, cache)
    cache.on_evict = sig.on_evict
    agree = total = 0
    for thread in trace.threads[:16]:
        instr = thread.addr[thread.kind == KIND_INSTR]
        for block in instr[::2]:  # subsample for speed
            block = int(block)
            if sig.agreement_check(block):
                agree += 1
            total += 1
            if not cache.access(block).hit:
                sig.insert(block)
    block_accuracy = agree / total
    return 1.0 - (1.0 - block_accuracy) / trace.instructions_per_iblock


@pytest.mark.parametrize("workload", ["tpcc-1", "tpce"])
def test_fig09_bloom_accuracy(benchmark, traces, workload):
    trace = traces[workload]

    def run():
        return [(bits, _accuracy(trace, bits)) for bits in BLOOM_BITS]

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(
        format_table(
            ["bits", "accuracy"],
            [[b, a] for b, a in rows],
            title=f"Figure 9 — {workload} (paper: 2K bits ~99.3%)",
        )
    )
    acc = dict(rows)
    # Monotone non-decreasing in filter size, and high at 2K bits.
    values = [acc[b] for b in BLOOM_BITS]
    assert all(b >= a - 0.005 for a, b in zip(values, values[1:]))
    assert acc[2048] > 0.97
