"""Figure 8 — I/D-MPKI and speedup vs dilution_t.

Paper result: raising dilution_t first improves performance (fewer,
better-timed migrations), peaks around 10, then degrades as migration
becomes too restricted; migration counts fall monotonically.
"""

import pytest

from repro.analysis import format_table, sweep_dilution

DILUTION_VALUES = tuple(range(2, 31, 4))


@pytest.mark.parametrize("workload", ["tpcc-1", "tpce"])
def test_fig08_dilution_sweep(benchmark, traces, run_sim, exp_runner, workload):
    trace = traces[workload]
    baseline = run_sim(workload, "base")

    def run():
        return sweep_dilution(
            trace,
            dilution_values=DILUTION_VALUES,
            baseline=baseline,
            runner=exp_runner,
        )

    points = benchmark.pedantic(run, iterations=1, rounds=1)
    rows = [
        [p.dilution_t, p.i_mpki, p.d_mpki, p.speedup, p.migrations]
        for p in points
    ]
    print()
    print(
        format_table(
            ["dilution_t", "I-MPKI", "D-MPKI", "speedup", "migrations"],
            rows,
            title=f"Figure 8 — {workload} (fill-up_t=256, matched_t=4)",
        )
    )
    # Shape: migrations fall monotonically (allowing small noise).
    migs = [p.migrations for p in points]
    assert migs[-1] < migs[0]
    # D-MPKI falls as migration is restricted.
    assert points[-1].d_mpki <= points[0].d_mpki + 0.5
