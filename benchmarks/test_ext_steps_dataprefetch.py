"""Extensions — STEPS comparison and the Section 5.5 data-prefetch
negative result.

STEPS (Harizopoulos & Ailamaki; the paper's Section 6 software
alternative) time-multiplexes same-type threads on one core instead of
migrating them across cores: instruction misses drop *without* the data
miss penalty SLICC pays, but core utilisation suffers because teams
serialise. The paper proposes combining STEPS's time-domain pipelining
with SLICC's space-domain pipelining as future work; this bench puts the
two on one axis.

The data-prefetch experiment reproduces the paper's reported negative
result: shipping the last-n data block tags with a migrating thread does
not improve performance.
"""

import pytest

from repro.analysis import format_table


def test_ext_steps_vs_slicc(benchmark, run_sims, traces):
    def run():
        # Synchronised arrivals: STEPS multiplexing assumes same-phase
        # peers (its teams execute chunk k together by construction).
        results = run_sims(
            "tpcc-1",
            {
                v: (v, dict(arrival_spacing=0))
                for v in ("base", "steps", "slicc-sw")
            },
        )
        return results["base"], results["steps"], results["slicc-sw"]

    base, steps, sw = benchmark.pedantic(run, iterations=1, rounds=1)
    rows = [
        ["base", base.i_mpki, base.d_mpki, 1.0, 0],
        [
            "steps",
            steps.i_mpki,
            steps.d_mpki,
            steps.speedup_over(base),
            steps.context_switches,
        ],
        [
            "slicc-sw",
            sw.i_mpki,
            sw.d_mpki,
            sw.speedup_over(base),
            sw.migrations,
        ],
    ]
    print()
    print(
        format_table(
            ["scheme", "I-MPKI", "D-MPKI", "speedup", "switches/migrations"],
            rows,
            title="Extension — STEPS (time-domain) vs SLICC (space-domain)",
        )
    )
    # STEPS's signature: instruction misses drop with no data-miss cost.
    assert steps.i_mpki < base.i_mpki
    assert steps.d_mpki <= base.d_mpki * 1.02
    assert steps.migrations == 0


@pytest.mark.parametrize("n", [0, 8, 32])
def test_ext_migration_data_prefetch(benchmark, run_sim, traces, n):
    """Section 5.5: the last-n data prefetcher does not help."""
    trace = traces["tpcc-1"]

    def run():
        return run_sim("tpcc-1", "slicc", data_prefetch_n=n)

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    print(
        f"\nn={n}: cycles={result.cycles} D-MPKI={result.d_mpki:.2f} "
        f"(paper: prefetching did not improve performance; past a value "
        f"of n it hurts)"
    )
    assert result.threads_completed == len(trace.threads)
