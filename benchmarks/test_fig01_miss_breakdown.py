"""Figure 1 — L1 miss breakdown and speedup vs cache size.

Paper result: for TPC-C/TPC-E instruction misses are dominated by
*capacity* misses that shrink steadily as the L1-I grows 16KB..512KB,
while data misses are dominated by *compulsory* misses that barely move
with L1-D size; speedup from bigger L1-Is is capped by their extra
latency. MapReduce is compulsory-dominated on both sides.
"""

import pytest

from repro.analysis import format_table
from repro.cache import latency_for_size
from repro.params import SystemParams
from repro.sim import SimConfig, simulate

SIZES_KB = (16, 32, 64, 128, 256, 512)


def _sweep_l1i(trace):
    rows = []
    baseline_cycles = None
    for kb in SIZES_KB:
        system = SystemParams(
            l1i=SystemParams().l1i.scaled(
                kb * 1024, hit_latency=latency_for_size(kb * 1024)
            )
        )
        result = simulate(
            trace,
            config=SimConfig(
                variant="base", system=system, collect_miss_classes=True
            ),
        )
        if kb == 32:
            baseline_cycles = result.cycles
        rows.append((kb, result))
    out = []
    for kb, result in rows:
        classes = result.miss_class_mpki["instruction"]
        out.append(
            [
                f"{kb}KB",
                classes["compulsory"],
                classes["capacity"],
                classes["conflict"],
                baseline_cycles / result.cycles,
            ]
        )
    return out


def _sweep_l1d(trace):
    out = []
    baseline_cycles = None
    for kb in SIZES_KB:
        system = SystemParams(
            l1d=SystemParams().l1d.scaled(
                kb * 1024, hit_latency=latency_for_size(kb * 1024)
            )
        )
        result = simulate(
            trace,
            config=SimConfig(
                variant="base", system=system, collect_miss_classes=True
            ),
        )
        if kb == 32:
            baseline_cycles = result.cycles
        classes = result.miss_class_mpki["data"]
        out.append(
            [
                f"{kb}KB",
                classes["compulsory"],
                classes["capacity"],
                classes["conflict"],
                baseline_cycles / result.cycles if baseline_cycles else 1.0,
            ]
        )
    return out


@pytest.mark.parametrize("workload", ["tpcc-1", "tpce", "mapreduce"])
def test_fig01_l1i_sweep(benchmark, traces, workload):
    rows = benchmark.pedantic(
        _sweep_l1i, args=(traces[workload],), iterations=1, rounds=1
    )
    print()
    print(
        format_table(
            ["L1-I", "compulsory", "capacity", "conflict", "speedup"],
            rows,
            title=f"Figure 1 (L1-I sweep) — {workload}",
        )
    )
    if workload != "mapreduce":
        at32 = rows[1]
        # Capacity dominates instruction misses at 32KB (paper: 96% of
        # capacity misses are instructions).
        assert at32[2] > at32[1] and at32[2] > at32[3]


@pytest.mark.parametrize("workload", ["tpcc-1", "tpce"])
def test_fig01_l1d_sweep(benchmark, traces, workload):
    rows = benchmark.pedantic(
        _sweep_l1d, args=(traces[workload],), iterations=1, rounds=1
    )
    print()
    print(
        format_table(
            ["L1-D", "compulsory", "capacity", "conflict", "speedup"],
            rows,
            title=f"Figure 1 (L1-D sweep) — {workload}",
        )
    )
    at32 = rows[1]
    # Compulsory dominates data misses; bigger L1-Ds barely help.
    assert at32[1] > at32[2]
    assert abs(rows[-1][4] - 1.0) < 0.15
