"""Figure 1 — L1 miss breakdown and speedup vs cache size.

Paper result: for TPC-C/TPC-E instruction misses are dominated by
*capacity* misses that shrink steadily as the L1-I grows 16KB..512KB,
while data misses are dominated by *compulsory* misses that barely move
with L1-D size; speedup from bigger L1-Is is capped by their extra
latency. MapReduce is compulsory-dominated on both sides.
"""

import pytest

from repro.analysis import format_table
from repro.cache import latency_for_size
from repro.params import SystemParams

SIZES_KB = (16, 32, 64, 128, 256, 512)


def _scaled_system(level, kb):
    cache = getattr(SystemParams(), level).scaled(
        kb * 1024, hit_latency=latency_for_size(kb * 1024)
    )
    return SystemParams(**{level: cache})


def _size_requests(level):
    """One batched Runner request per cache size (label -> variant, cfg)."""
    return {
        kb: (
            "base",
            dict(system=_scaled_system(level, kb), collect_miss_classes=True),
        )
        for kb in SIZES_KB
    }


def _sweep(run_sims, workload, level, side):
    results = run_sims(workload, _size_requests(level))
    baseline_cycles = results[32].cycles
    return [
        [
            f"{kb}KB",
            result.miss_class_mpki[side]["compulsory"],
            result.miss_class_mpki[side]["capacity"],
            result.miss_class_mpki[side]["conflict"],
            baseline_cycles / result.cycles,
        ]
        for kb, result in results.items()
    ]


@pytest.mark.parametrize("workload", ["tpcc-1", "tpce", "mapreduce"])
def test_fig01_l1i_sweep(benchmark, run_sims, workload):
    rows = benchmark.pedantic(
        _sweep,
        args=(run_sims, workload, "l1i", "instruction"),
        iterations=1,
        rounds=1,
    )
    print()
    print(
        format_table(
            ["L1-I", "compulsory", "capacity", "conflict", "speedup"],
            rows,
            title=f"Figure 1 (L1-I sweep) — {workload}",
        )
    )
    if workload != "mapreduce":
        at32 = rows[1]
        # Capacity dominates instruction misses at 32KB (paper: 96% of
        # capacity misses are instructions).
        assert at32[2] > at32[1] and at32[2] > at32[3]


@pytest.mark.parametrize("workload", ["tpcc-1", "tpce"])
def test_fig01_l1d_sweep(benchmark, run_sims, workload):
    rows = benchmark.pedantic(
        _sweep,
        args=(run_sims, workload, "l1d", "data"),
        iterations=1,
        rounds=1,
    )
    print()
    print(
        format_table(
            ["L1-D", "compulsory", "capacity", "conflict", "speedup"],
            rows,
            title=f"Figure 1 (L1-D sweep) — {workload}",
        )
    )
    at32 = rows[1]
    # Compulsory dominates data misses; bigger L1-Ds barely help.
    assert at32[1] > at32[2]
    assert abs(rows[-1][4] - 1.0) < 0.15
