"""Figure 10 — L1 I- and D-MPKI for Base / SLICC / SLICC-Pp / SLICC-SW.

Paper result: SLICC-SW cuts I-MPKI by 56% (TPC-C) and 61% (TPC-E) at a
small D-MPKI increase (+11% / +4%; only +1% on the larger TPC-C-10
database); the oblivious variant reduces less (~40% average); MapReduce
is unaffected by all variants.
"""

import pytest

from repro.analysis import format_table

VARIANTS = ("base", "slicc", "slicc-pp", "slicc-sw")

#: Paper I-MPKI reduction of SLICC-SW vs base, for the shape record.
PAPER_SW_REDUCTION = {"tpcc-1": 0.56, "tpce": 0.61}


@pytest.mark.parametrize(
    "workload", ["tpcc-1", "tpcc-10", "tpce", "mapreduce"]
)
def test_fig10_mpki(benchmark, run_sims, workload):
    def run():
        return run_sims(workload, VARIANTS)

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    base = results["base"]
    rows = []
    for variant in VARIANTS:
        r = results[variant]
        rows.append(
            [
                variant,
                r.i_mpki,
                r.d_mpki,
                1 - r.i_mpki / base.i_mpki if base.i_mpki else 0.0,
                r.d_mpki / base.d_mpki - 1 if base.d_mpki else 0.0,
            ]
        )
    print()
    paper = PAPER_SW_REDUCTION.get(workload)
    note = f" (paper SW I-MPKI cut: {paper:.0%})" if paper else ""
    print(
        format_table(
            ["variant", "I-MPKI", "D-MPKI", "I-cut", "D-growth"],
            rows,
            title=f"Figure 10 — {workload}{note}",
        )
    )
    if workload == "mapreduce":
        # Robustness: SLICC leaves the small-footprint workload alone.
        for variant in ("slicc", "slicc-sw"):
            r = results[variant]
            assert r.i_mpki == pytest.approx(base.i_mpki, rel=0.1)
    elif workload.startswith("tpcc"):
        # Shape: migration trades instruction misses for data misses.
        assert results["slicc-sw"].i_mpki < base.i_mpki
        assert results["slicc-sw"].d_mpki >= base.d_mpki * 0.95
    else:
        # TPC-E at CI scale: the 10-way type mix leaves each partition
        # only 3-5 caches against a 4-segment footprint, so SLICC-SW does
        # not beat the (inner-loop-friendly) baseline's I-MPKI here —
        # documented deviation in EXPERIMENTS.md. The orderings that do
        # hold: type-awareness beats oblivious, and the D-MPKI cost of
        # migration appears exactly as the paper describes.
        assert results["slicc-sw"].i_mpki <= results["slicc"].i_mpki
        assert results["slicc-sw"].d_mpki >= base.d_mpki * 0.95
