"""Table 3 — SLICC hardware storage costs.

Paper result: 60b MTQ + 100b MSV + 2Kb signature = 2208b per-core cache
monitor; 1920b thread queue; 3600b team table; 7728 bits = 966 bytes in
total, i.e. 2.4% of PIF's ~40KB per core.
"""

from repro.analysis import format_table
from repro.core import slicc_hardware_cost
from repro.params import SliccParams


def test_table3_storage(benchmark):
    cost = benchmark.pedantic(
        lambda: slicc_hardware_cost(SliccParams(), n_cores=16),
        iterations=1,
        rounds=1,
    )
    rows = [
        ["Missed-Tag Queue", cost.mtq_bits, 60],
        ["Miss Shift-Vector", cost.msv_bits, 100],
        ["Cache Signature", cost.signature_bits, 2048],
        ["Cache Monitor subtotal", cost.cache_monitor_bits, 2208],
        ["Thread Queue", cost.thread_queue_bits, 1920],
        ["Team Table", cost.team_table_bits, 3600],
        ["Grand Total (bits)", cost.total_bits, 7728],
        ["Grand Total (bytes)", cost.total_bytes, 966],
    ]
    print()
    print(
        format_table(
            ["component", "measured", "paper"], rows, title="Table 3"
        )
    )
    print(f"relative to PIF storage: {cost.relative_to_pif:.3%} (paper 2.4%)")
    assert cost.total_bits == 7728
    assert cost.total_bytes == 966
    assert 0.02 < cost.relative_to_pif < 0.03
