"""Figure 3 — instruction-block reuse across threads.

Paper result: ~98% of instruction accesses within a transaction type go
to blocks shared by most (>60%) same-type threads; globally the "most"
share is lower but still dominant (~80% redundancy across all cores).
"""

import pytest

from repro.analysis import format_table, global_reuse, per_transaction_reuse


@pytest.mark.parametrize("workload", ["tpcc-1", "tpce"])
def test_fig03_reuse_breakdown(benchmark, traces, workload):
    trace = traces[workload]

    def run():
        return global_reuse(trace), per_transaction_reuse(trace)

    global_b, per_txn = benchmark.pedantic(run, iterations=1, rounds=1)
    rows = [
        ["Global", global_b.single, global_b.few, global_b.most],
        ["Per Transaction", per_txn.single, per_txn.few, per_txn.most],
    ]
    print()
    print(
        format_table(
            ["scope", "single", "few", "most"],
            rows,
            title=f"Figure 3 — {workload} (paper: per-txn 'most' ~0.98)",
        )
    )
    assert per_txn.most >= global_b.most
    assert per_txn.most > 0.9
