"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper at CI scale
and prints the measured rows next to the paper's values. Traces and
baseline runs are session-cached so figures that share a workload don't
recompute them.
"""

import pytest

from repro.params import ScalePreset
from repro.sim import SimConfig, simulate
from repro.workloads import standard_trace

#: Thread counts used by the benches (CI scale).
BENCH_THREADS = 48


@pytest.fixture(scope="session")
def traces():
    """CI-scale traces for the four Table 1 workloads."""
    return {
        name: standard_trace(name, ScalePreset.CI, n_threads=BENCH_THREADS)
        for name in ("tpcc-1", "tpcc-10", "tpce", "mapreduce")
    }


@pytest.fixture(scope="session")
def results_cache():
    """Session-wide memo of simulation results keyed by (workload, cfg)."""
    return {}


@pytest.fixture(scope="session")
def run_sim(traces, results_cache):
    """Memoised simulation runner: run_sim(workload, variant, **cfg)."""

    def run(workload, variant, **cfg_kwargs):
        key = (workload, variant, tuple(sorted(cfg_kwargs.items())))
        if key not in results_cache:
            config = SimConfig(variant=variant, **cfg_kwargs)
            results_cache[key] = simulate(traces[workload], config=config)
        return results_cache[key]

    return run
