"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper at CI scale
and prints the measured rows next to the paper's values. All simulation
goes through one session-wide :class:`repro.exp.Runner`, so figures that
share a workload reuse traces and baseline runs via the result store,
and the whole suite fans out over worker processes when
``REPRO_BENCH_JOBS`` is set (e.g. ``REPRO_BENCH_JOBS=8 pytest
benchmarks``; default 1 keeps timing comparable to single-core runs).
"""

import os

import pytest

from repro.exp import Runner, spec_for
from repro.params import ScalePreset
from repro.sim import SimConfig
from repro.workloads import standard_trace

#: Thread counts used by the benches (CI scale).
BENCH_THREADS = 48


@pytest.fixture(scope="session")
def traces():
    """CI-scale traces for the four Table 1 workloads."""
    return {
        name: standard_trace(name, ScalePreset.CI, n_threads=BENCH_THREADS)
        for name in ("tpcc-1", "tpcc-10", "tpce", "mapreduce")
    }


@pytest.fixture(scope="session")
def exp_runner():
    """Session-wide experiment runner with an in-memory result store."""
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    return Runner(jobs=jobs)


@pytest.fixture(scope="session")
def run_sim(traces, exp_runner):
    """Memoised simulation runner: run_sim(workload, variant, **cfg)."""

    def run(workload, variant, **cfg_kwargs):
        trace = traces[workload]
        spec = spec_for(trace, SimConfig(variant=variant, **cfg_kwargs))
        return exp_runner.run([spec], trace=trace)[0]

    return run


@pytest.fixture(scope="session")
def run_sims(traces, exp_runner):
    """Batched variant of :func:`run_sim`: one ``Runner.run`` call per
    figure, so REPRO_BENCH_JOBS fans a figure's variants out in parallel.

    ``requests`` is either an iterable of variant names or a mapping of
    display label -> (variant, cfg dict); returns label -> result.
    """

    def run(workload, requests):
        if not isinstance(requests, dict):
            requests = {variant: (variant, {}) for variant in requests}
        trace = traces[workload]
        specs = [
            spec_for(trace, SimConfig(variant=variant, **cfg), label=str(label))
            for label, (variant, cfg) in requests.items()
        ]
        results = exp_runner.run(specs, trace=trace)
        return dict(zip(requests, results))

    return run
