"""Section 5.5 side statistics — TLB sensitivity to migration.

Paper result: D-TLB misses rise ~11% (SLICC) / ~8% (SLICC-SW) because a
migrating thread abandons its translations, while I-TLB misses stay
within +/-0.5% (code pages are shared and re-touched constantly).
"""

import pytest

from repro.analysis import format_table


@pytest.mark.parametrize("workload", ["tpcc-1"])
def test_sec55_tlb_deltas(benchmark, run_sims, workload):
    def run():
        return run_sims(workload, ("base", "slicc", "slicc-sw"))

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    base = results["base"]
    rows = []
    for variant, r in results.items():
        rows.append(
            [
                variant,
                r.itlb_mpki,
                r.dtlb_mpki,
                r.dtlb_mpki / base.dtlb_mpki - 1 if base.dtlb_mpki else 0.0,
            ]
        )
    print()
    print(
        format_table(
            ["variant", "I-TLB MPKI", "D-TLB MPKI", "D-TLB growth"],
            rows,
            title=f"Section 5.5 TLB — {workload} (paper: D-TLB +8-11%)",
        )
    )
    # Shape: migration does not reduce D-TLB misses, and I-TLB stays low.
    assert results["slicc"].dtlb_misses >= base.dtlb_misses * 0.98
    assert results["slicc"].itlb_mpki < 1.0
