"""Figure 11 — speedup of every scheme over the baseline.

Paper result: SLICC-SW reaches 1.60x (TPC-C-1) and 1.79x (TPC-E),
beating the next-line prefetcher, within 2% of the PIF upper bound on
TPC-C and 21% above it on TPC-E; MapReduce is unaffected by SLICC.
"""

import pytest

from repro.analysis import format_table

VARIANTS = ("base", "nextline", "slicc", "slicc-pp", "slicc-sw", "pif")

PAPER_SPEEDUP = {
    "tpcc-1": {"slicc-sw": 1.60, "pif": 1.63},
    "tpce": {"slicc-sw": 1.79, "pif": 1.48},
    "mapreduce": {"slicc-sw": 1.00},
}


@pytest.mark.parametrize(
    "workload", ["tpcc-1", "tpcc-10", "tpce", "mapreduce"]
)
def test_fig11_performance(benchmark, run_sims, workload):
    def run():
        return run_sims(workload, VARIANTS)

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    base = results["base"]
    paper = PAPER_SPEEDUP.get(workload, {})
    rows = []
    for variant in VARIANTS:
        speedup = results[variant].speedup_over(base)
        rows.append(
            [variant, speedup, paper.get(variant, float("nan"))]
        )
    print()
    print(
        format_table(
            ["variant", "speedup", "paper"],
            rows,
            title=f"Figure 11 — {workload}",
        )
    )
    speed = {v: results[v].speedup_over(base) for v in VARIANTS}
    if workload == "mapreduce":
        assert speed["slicc-sw"] == pytest.approx(1.0, abs=0.2)
    else:
        # Shape checks that hold at this scale: prefetching and the PIF
        # upper bound beat the baseline; SLICC-SW cuts instruction
        # misses below the oblivious variant's level (Figure 10) even
        # where makespan is pipeline-bound (see EXPERIMENTS.md).
        assert speed["nextline"] > 1.0
        assert speed["pif"] > 1.0
