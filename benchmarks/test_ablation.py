"""Ablation — design choices DESIGN.md calls out, quantified.

Not a paper figure: quantifies the engine's two scheduler knobs
(idle-core work stealing, and whether a steal lets the idle core adopt
the stolen thread's segment) on the I-MPKI / utilisation trade-off that
dominates SLICC's behaviour at sub-paper trace scales.
"""

import pytest

from repro.analysis import format_table

CONFIGS = [
    ("no stealing", dict(work_stealing=False)),
    ("steal, frozen target", dict(work_stealing=True, steal_resets_mc=False)),
    ("steal, adopt segment", dict(work_stealing=True, steal_resets_mc=True)),
]


@pytest.mark.parametrize("workload", ["tpcc-1"])
def test_ablation_scheduler_knobs(benchmark, run_sims, workload):
    def run():
        requests = {label: ("slicc", cfg) for label, cfg in CONFIGS}
        requests["base"] = ("base", {})
        return run_sims(workload, requests)

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    base = results["base"]
    rows = []
    for label, _ in CONFIGS:
        r = results[label]
        rows.append(
            [
                label,
                r.i_mpki,
                r.speedup_over(base),
                r.utilization,
                r.migrations,
            ]
        )
    print()
    print(
        format_table(
            ["config", "I-MPKI", "speedup", "utilisation", "migrations"],
            rows,
            title=f"Ablation — {workload}",
        )
    )
    no_steal = results["no stealing"]
    stealing = results["steal, frozen target"]
    # The documented trade-off: stealing buys utilisation at some MPKI.
    assert stealing.utilization > no_steal.utilization
    assert no_steal.i_mpki <= stealing.i_mpki


def test_ablation_mono_type_collective(benchmark):
    """The clean Figure 4 regime: one transaction type, staggered
    arrivals, no stealing. The first threads assemble the collective and
    followers ride it — the engine must reach the paper's I-MPKI
    reduction magnitude (>50%) here, demonstrating the mechanism works
    and that the weaker full-mix numbers are a scale/mix effect."""
    from repro.params import SliccParams
    from repro.sim import SimConfig, simulate
    from repro.workloads import (
        DataSpec,
        PathStep,
        TransactionTypeSpec,
        WorkloadSpec,
        generate_trace,
        layout_segments,
    )

    segments = layout_segments([448] * 6)
    path = tuple(
        PathStep(seg_id=i % 6, inner_iterations=2)
        for i in (0, 1, 2, 3, 4, 5, 0, 2, 4, 0)
    )
    spec = WorkloadSpec(
        name="mono",
        segments=tuple(segments),
        txn_types=(
            TransactionTypeSpec(type_id=0, name="T", weight=1.0, path=path),
        ),
        data=DataSpec(),
    )
    trace = generate_trace(spec, n_threads=24, seed=3)

    def run():
        base = simulate(trace, variant="base")
        slicc = simulate(
            trace,
            config=SimConfig(
                variant="slicc",
                slicc=SliccParams(dilution_t=10),
                work_stealing=False,
            ),
        )
        return base, slicc

    base, slicc = benchmark.pedantic(run, iterations=1, rounds=1)
    reduction = 1 - slicc.i_mpki / base.i_mpki
    print()
    print(
        f"mono-type collective: I-MPKI {base.i_mpki:.2f} -> "
        f"{slicc.i_mpki:.2f} ({reduction:.0%} cut; paper's full-mix "
        f"figure is 56-61%)"
    )
    assert reduction > 0.5
