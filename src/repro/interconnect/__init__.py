"""On-chip interconnect models (Table 2: 4x4 2D torus, 1-cycle hops)."""

from repro.interconnect.torus import Torus2D

__all__ = ["Torus2D"]
