"""2D torus interconnect.

The paper's machine connects 16 cores with a 4x4 2D torus at one cycle per
hop (Table 2). The simulator uses hop distances for two things: the cost
of shipping a thread context during migration, and the (reported, not
charged) broadcast traffic of remote segment search.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class Torus2D:
    """A ``width`` x ``width`` torus with unit hop latency.

    Core *i* sits at ``(i % width, i // width)``. Distances are Manhattan
    with wrap-around, i.e. each axis contributes
    ``min(d, width - d)`` hops.
    """

    def __init__(self, width: int, hop_cycles: int = 1) -> None:
        if width <= 0:
            raise ConfigurationError("torus width must be positive")
        if hop_cycles < 0:
            raise ConfigurationError("hop_cycles must be non-negative")
        self.width = width
        self.hop_cycles = hop_cycles
        self.n_nodes = width * width
        # Precompute the full distance matrix: 16x16 is trivially small and
        # migration cost lookups sit on the simulator's hot-ish path.
        self._dist = [
            [self._compute_hops(a, b) for b in range(self.n_nodes)]
            for a in range(self.n_nodes)
        ]

    def _coords(self, node: int) -> tuple[int, int]:
        return node % self.width, node // self.width

    def _compute_hops(self, a: int, b: int) -> int:
        ax, ay = self._coords(a)
        bx, by = self._coords(b)
        dx = abs(ax - bx)
        dy = abs(ay - by)
        return min(dx, self.width - dx) + min(dy, self.width - dy)

    def hops(self, a: int, b: int) -> int:
        """Hop count between cores ``a`` and ``b`` (0 when equal)."""
        return self._dist[a][b]

    def latency(self, a: int, b: int) -> int:
        """Cycles to traverse from ``a`` to ``b``."""
        return self._dist[a][b] * self.hop_cycles

    def broadcast_hops(self, source: int) -> int:
        """Total hops for a naive unicast broadcast from ``source``.

        Used to account remote-segment-search traffic (Section 5.8).
        """
        return sum(self._dist[source])

    def nearest(self, source: int, candidates: list[int]) -> int:
        """The candidate core closest to ``source`` (ties -> lowest id).

        Raises:
            ValueError: if ``candidates`` is empty.
        """
        if not candidates:
            raise ValueError("candidates must be non-empty")
        return min(candidates, key=lambda c: (self._dist[source][c], c))
