"""Partial-address bloom-filter cache signature (Section 4.2.3, Figure 9).

Each core maintains a bloom filter summarising its L1-I contents so that
remote segment searches can be answered without stealing cache ports. The
paper uses the partial-address filter of Peir et al. with eviction
support: the filter index is the low ``log2(bits)`` bits of the block id.
Because the filter index embeds the cache set index (filter bits >= set
count), two blocks can only collide in the filter if they live in the
same cache set — so on an eviction, rescanning just that set suffices to
decide whether the bit can be cleared.

The filter is a *superset* signature: probes can give false positives
(another same-set block shares the filter index) but never false
negatives, which is the safe direction for a migration predictor.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.cache import SetAssociativeCache


class BloomSignature:
    """Partial-address bloom filter mirroring one L1-I cache's contents.

    Wire it to a cache by passing :meth:`on_evict` as the cache's eviction
    callback and calling :meth:`insert` after each fill.
    """

    def __init__(self, bits: int, cache: "SetAssociativeCache") -> None:
        if bits <= 0 or bits & (bits - 1) != 0:
            raise ConfigurationError("bloom bits must be a positive power of two")
        if bits < cache.n_sets:
            raise ConfigurationError(
                f"bloom bits ({bits}) must be >= cache sets ({cache.n_sets}) "
                "for per-set eviction support"
            )
        self.bits = bits
        self._mask = bits - 1
        self._filter = bytearray(bits // 8) if bits >= 8 else bytearray(1)
        self._cache = cache

    def _index(self, block: int) -> int:
        return block & self._mask

    def probe(self, block: int) -> bool:
        """Is ``block`` (probably) cached? No false negatives."""
        idx = self._index(block)
        return bool(self._filter[idx >> 3] & (1 << (idx & 7)))

    def insert(self, block: int) -> None:
        """Record that ``block`` was installed in the cache."""
        idx = self._index(block)
        self._filter[idx >> 3] |= 1 << (idx & 7)

    def on_evict(self, block: int) -> None:
        """Handle an eviction: clear the bit unless a same-set survivor
        shares the filter index (the partial-address collision case)."""
        idx = self._index(block)
        for other in self._cache.blocks_in_set(self._cache.set_of(block)):
            if other != block and self._index(other) == idx:
                return
        self._filter[idx >> 3] &= ~(1 << (idx & 7)) & 0xFF

    def rebuild(self) -> None:
        """Recompute the filter from the cache's exact contents."""
        for i in range(len(self._filter)):
            self._filter[i] = 0
        for block in self._cache.resident_blocks():
            self.insert(block)

    def agreement_check(self, block: int) -> bool:
        """True when filter and cache agree on residency of ``block``.

        This is the accuracy metric of Figure 9: an access is *accurate*
        if the bloom filter and the cache agree on hit/miss.
        """
        return self.probe(block) == self._cache.probe(block)

    def popcount(self) -> int:
        """Number of set bits (diagnostics)."""
        return sum(bin(byte).count("1") for byte in self._filter)
