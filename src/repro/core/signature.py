"""Partial-address bloom-filter cache signature (Section 4.2.3, Figure 9).

Each core maintains a bloom filter summarising its L1-I contents so that
remote segment searches can be answered without stealing cache ports. The
paper uses the partial-address filter of Peir et al. with eviction
support: the filter index is the low ``log2(bits)`` bits of the block id.
Because the filter index embeds the cache set index (filter bits >= set
count), two blocks can only collide in the filter if they live in the
same cache set — so on an eviction, rescanning just that set suffices to
decide whether the bit can be cleared.

The filter is a *superset* signature: probes can give false positives
(another same-set block shares the filter index) but never false
negatives, which is the safe direction for a migration predictor.

Storage is *transposed* across cores: all cores' filters share one
:class:`SignatureSet`, whose ``masks[idx]`` int holds bit *c* when core
*c*'s filter has position ``idx`` set. A per-core probe tests one bit of
one int — exactly the old bytearray semantics — while the engine's remote
segment search (``Machine.presence_mask``) collapses from ``n_cores``
probes per miss to a single list lookup plus two AND operations, with
identical false-positive behaviour because the per-core bits are the very
same state the per-core probes consult.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.cache import SetAssociativeCache


class SignatureSet:
    """Transposed storage for the bloom filters of many cores.

    ``masks[idx]`` is an integer core-bitmask: bit *c* is set iff core
    *c*'s filter has bit ``idx`` set. ``masks[block & (bits - 1)]`` is
    therefore the fused "which cores (probably) cache this block" answer.
    """

    __slots__ = ("bits", "masks")

    def __init__(self, bits: int) -> None:
        if bits <= 0 or bits & (bits - 1) != 0:
            raise ConfigurationError("bloom bits must be a positive power of two")
        self.bits = bits
        self.masks: list[int] = [0] * bits


class BloomSignature:
    """Partial-address bloom filter mirroring one L1-I cache's contents.

    Wire it to a cache by passing :meth:`on_evict` as the cache's eviction
    callback and calling :meth:`insert` after each fill.

    Args:
        bits: filter positions (power of two, >= cache sets).
        cache: the L1-I this signature mirrors.
        shared: transposed store to join; a standalone one-core store is
            created when omitted (tests, single-filter experiments).
        core: this filter's bit position within the shared store.
    """

    __slots__ = ("bits", "_mask", "_set", "_bit", "_cache")

    def __init__(
        self,
        bits: int,
        cache: "SetAssociativeCache",
        shared: Optional[SignatureSet] = None,
        core: int = 0,
    ) -> None:
        if shared is not None and shared.bits != bits:
            raise ConfigurationError(
                f"signature bits ({bits}) disagree with the shared "
                f"SignatureSet ({shared.bits})"
            )
        if bits < cache.n_sets:
            raise ConfigurationError(
                f"bloom bits ({bits}) must be >= cache sets ({cache.n_sets}) "
                "for per-set eviction support"
            )
        self.bits = bits
        self._mask = bits - 1
        self._set = shared if shared is not None else SignatureSet(bits)
        self._bit = 1 << core
        self._cache = cache

    def probe(self, block: int) -> bool:
        """Is ``block`` (probably) cached? No false negatives."""
        return bool(self._set.masks[block & self._mask] & self._bit)

    def insert(self, block: int) -> None:
        """Record that ``block`` was installed in the cache."""
        self._set.masks[block & self._mask] |= self._bit

    def on_evict(self, block: int) -> None:
        """Handle an eviction: clear the bit unless a same-set survivor
        shares the filter index (the partial-address collision case)."""
        mask = self._mask
        idx = block & mask
        cache = self._cache
        # Iterate the set's residency dict directly — this callback runs
        # once per eviction, and materialising blocks_in_set()'s list was
        # a measurable slice of the replay profile.
        for other in cache._index[block & cache._set_mask]:
            if other != block and other & mask == idx:
                return
        self._set.masks[idx] &= ~self._bit

    def rebuild(self) -> None:
        """Recompute the filter from the cache's exact contents."""
        masks = self._set.masks
        clear = ~self._bit
        for i in range(self.bits):
            masks[i] &= clear
        for block in self._cache.resident_blocks():
            self.insert(block)

    def agreement_check(self, block: int) -> bool:
        """True when filter and cache agree on residency of ``block``.

        This is the accuracy metric of Figure 9: an access is *accurate*
        if the bloom filter and the cache agree on hit/miss.
        """
        return self.probe(block) == self._cache.probe(block)

    def popcount(self) -> int:
        """Number of set bits (diagnostics)."""
        bit = self._bit
        return sum(1 for mask in self._set.masks if mask & bit)
