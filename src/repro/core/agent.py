"""The per-core SLICC agent: when to migrate, and where to (Section 4).

The agent answers the three questions of Section 4.1 using the three
tracking structures of Section 4.2:

* **Q.1 — is the cache full of useful blocks?** The saturating miss
  counter (:class:`MissCounter`) says yes once ``fill_up_t`` misses have
  been observed since the last reset.
* **Q.2 — is the thread done with the cached segment?** The miss
  shift-vector (:class:`MissShiftVector`) enables migration only when
  misses are *frequent* in the recent access window (dilution >=
  ``dilution_t``), distinguishing "moving to a new segment" from "briefly
  diverging".
* **Q.3 — where to?** The missed-tag queue (:class:`MissedTagQueue`)
  ANDs the presence vectors of the last ``matched_t`` missed tags; a core
  holding all of them is predicted to cache the next segment. Failing
  that, an idle core; failing that, stay put.

The agent is deliberately engine-agnostic: the replay loop feeds it
access outcomes and presence vectors, and the SLICC scheduling policies
(:mod:`repro.sched.legacy`) call :meth:`SliccAgent.decide` and interpret
the returned :class:`MigrationDecision`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.core.miss_counter import MissCounter
from repro.core.miss_shift_vector import MissShiftVector
from repro.core.missed_tag_queue import MissedTagQueue
from repro.params import SliccParams


class MigrationReason(Enum):
    """Why a migration decision chose its target (Q.3's three rungs)."""

    SEGMENT_MATCH = "segment_match"
    IDLE_CORE = "idle_core"
    STAY = "stay"


@dataclass(frozen=True)
class MigrationDecision:
    """Outcome of one migration evaluation.

    ``target`` is ``None`` for a STAY decision.
    """

    reason: MigrationReason
    target: Optional[int] = None


@dataclass
class AgentStats:
    """Per-agent event counters (feeds Section 5.8's BPKI numbers)."""

    broadcasts: int = 0
    segment_match_migrations: int = 0
    idle_core_migrations: int = 0
    stay_decisions: int = 0
    mc_resets: int = 0


class SliccAgent:
    """SLICC monitoring and migration logic for one core."""

    def __init__(self, core_id: int, params: SliccParams, n_cores: int) -> None:
        self.core_id = core_id
        self.params = params
        self.n_cores = n_cores
        self.mc = MissCounter(params.fill_up_t)
        self.msv = MissShiftVector(params.msv_window, params.dilution_t)
        self.mtq = MissedTagQueue(params.matched_t, n_cores)
        self.stats = AgentStats()

    # ------------------------------------------------------------------
    # Monitoring
    # ------------------------------------------------------------------

    @property
    def cache_full(self) -> bool:
        """Q.1: has this core's L1-I captured a full segment?"""
        return self.mc.full

    def observe_access(self, hit: bool) -> bool:
        """Feed one L1-I access outcome.

        Returns True when the engine should gather a presence vector for
        this miss (i.e. the cache is full, so the miss is part of a
        potential next-segment preamble). Keeping the gather conditional
        saves the remote probes when migration is impossible anyway.
        """
        if not self.mc.full:
            if not hit:
                self.mc.record_miss()
            return False
        self.msv.record(not hit)
        return not hit

    def note_miss_presence(self, presence_mask: int) -> None:
        """Record where the just-missed block is cached (MTQ push).

        In the directory/piggyback designs of Section 4.2.3 this sharing
        information rides on the ordinary miss messages, so it is not
        counted as broadcast traffic; explicit search broadcasts are
        counted per :meth:`decide` evaluation instead (Section 5.8).
        """
        self.mtq.record(presence_mask)

    @property
    def migration_enabled(self) -> bool:
        """Q.2: is the thread leaving its segment (dilution reached)?"""
        return self.mc.full and self.msv.dilution_reached and self.mtq.full

    # ------------------------------------------------------------------
    # Decision
    # ------------------------------------------------------------------

    def decide(
        self,
        idle_cores: list[int],
        allowed_cores: Optional[frozenset[int]] = None,
        nearest: Optional[callable] = None,
    ) -> MigrationDecision:
        """Q.3: pick a migration target.

        Args:
            idle_cores: cores with no running thread and an empty queue.
            allowed_cores: restriction imposed by team scheduling (None
                means every core is fair game).
            nearest: ``f(candidates) -> core`` tie-breaker, typically the
                torus distance; defaults to lowest id.
        """
        self.stats.broadcasts += 1
        candidates = self.mtq.common_cores(exclude=self.core_id)
        if allowed_cores is not None:
            candidates = [c for c in candidates if c in allowed_cores]
        if candidates:
            target = nearest(candidates) if nearest else candidates[0]
            self.stats.segment_match_migrations += 1
            return MigrationDecision(MigrationReason.SEGMENT_MATCH, target)

        idle = [c for c in idle_cores if c != self.core_id]
        if allowed_cores is not None:
            idle = [c for c in idle if c in allowed_cores]
        if idle:
            target = nearest(idle) if nearest else idle[0]
            self.stats.idle_core_migrations += 1
            return MigrationDecision(MigrationReason.IDLE_CORE, target)

        # No remote match and no idle core: the thread stays and will keep
        # missing locally, i.e. it is loading a *new* segment over the old
        # one (Section 4.1's "SLICC opts for incurring the instruction
        # misses locally"). Treat the cache as refilling: reset MC so the
        # fill proceeds without re-searching on every miss — this is what
        # keeps search broadcasts rare (Section 5.8).
        self.stats.stay_decisions += 1
        self.mc.reset()
        self.msv.reset()
        self.mtq.reset()
        return MigrationDecision(MigrationReason.STAY)

    # ------------------------------------------------------------------
    # Resets
    # ------------------------------------------------------------------

    def on_thread_switch(self) -> None:
        """The running thread changed (migration in/out or dispatch).

        MSV and MTQ describe the *current thread's* recent behaviour, so
        they reset; the MC describes the *cache*, so it persists.
        """
        self.msv.reset()
        self.mtq.reset()

    def on_queue_empty(self) -> None:
        """Thread queue drained: allow a new segment to be cached (Q.1)."""
        self.mc.reset()
        self.stats.mc_resets += 1

    def full_reset(self) -> None:
        """Team completed (SLICC-SW/Pp): reset MC, MSV and MTQ."""
        self.mc.reset()
        self.msv.reset()
        self.mtq.reset()
