"""Hardware storage cost model — reproduces Table 3 (Section 5.7).

Every formula mirrors the paper's accounting:

* **MTQ**: ``matched_t`` entries of ``n_cores - 1`` presence bits (a core
  needs no bit for itself): 4 x 15 = 60 bits at the paper's config.
* **MSV**: one bit per tracked access: 100 bits.
* **Cache signature**: the bloom filter, 2K bits at the chosen size.
* **Thread queue**: 30 entries x (12-bit thread id + 48-bit context
  pointer + 4-bit core id) = 1920 bits, centralised.
* **Team management table** (SLICC-SW/Pp only): 60 entries x (12-bit id +
  32-bit timestamp + 4-bit type + 4-bit team + 8-bit index) = 3600 bits.

Grand total 7728 bits = 966 bytes, vs ~40KB per core for PIF — the 2.4%
relative overhead headline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import SliccParams

#: Field widths from Table 3.
THREAD_ID_BITS = 12
CONTEXT_PTR_BITS = 48
CORE_ID_BITS = 4
TIMESTAMP_BITS = 32
TYPE_ID_BITS = 4
TEAM_ID_BITS = 4
TEAM_INDEX_BITS = 8
THREAD_QUEUE_ENTRIES = 30
TEAM_TABLE_ENTRIES = 60

#: PIF's per-core storage requirement reported by the paper (~40 KB).
PIF_STORAGE_BITS = 40 * 1024 * 8


@dataclass(frozen=True)
class HardwareCost:
    """Bit costs of SLICC's components for one configuration."""

    mtq_bits: int
    msv_bits: int
    signature_bits: int
    thread_queue_bits: int
    team_table_bits: int

    @property
    def cache_monitor_bits(self) -> int:
        """Cache Monitor Unit subtotal (MTQ + MSV + signature)."""
        return self.mtq_bits + self.msv_bits + self.signature_bits

    @property
    def total_bits(self) -> int:
        """Grand total in bits."""
        return (
            self.cache_monitor_bits
            + self.thread_queue_bits
            + self.team_table_bits
        )

    @property
    def total_bytes(self) -> int:
        """Grand total in bytes (rounded up)."""
        return (self.total_bits + 7) // 8

    @property
    def relative_to_pif(self) -> float:
        """SLICC storage as a fraction of PIF's ~40KB per core."""
        return self.total_bits / PIF_STORAGE_BITS


def mtq_bits(n_cores: int, matched_t: int) -> int:
    """Missed-tag-queue storage: matched_t entries of (n_cores - 1) bits."""
    return matched_t * (n_cores - 1)


def thread_queue_bits(entries: int = THREAD_QUEUE_ENTRIES) -> int:
    """Centralised thread-queue storage."""
    return entries * (THREAD_ID_BITS + CONTEXT_PTR_BITS + CORE_ID_BITS)


def team_table_bits(entries: int = TEAM_TABLE_ENTRIES) -> int:
    """Team-management-table storage (SLICC-SW / SLICC-Pp only)."""
    return entries * (
        THREAD_ID_BITS
        + TIMESTAMP_BITS
        + TYPE_ID_BITS
        + TEAM_ID_BITS
        + TEAM_INDEX_BITS
    )


def slicc_hardware_cost(
    params: SliccParams,
    n_cores: int = 16,
    with_team_table: bool = True,
) -> HardwareCost:
    """Compute Table 3 for a SLICC configuration.

    Args:
        params: supplies ``matched_t``, MSV window and bloom size.
        n_cores: machine size (16 in the paper).
        with_team_table: False for type-oblivious SLICC, which needs no
            team management.
    """
    return HardwareCost(
        mtq_bits=mtq_bits(n_cores, params.matched_t),
        msv_bits=params.msv_window,
        signature_bits=params.bloom_bits,
        thread_queue_bits=thread_queue_bits(),
        team_table_bits=team_table_bits() if with_team_table else 0,
    )
