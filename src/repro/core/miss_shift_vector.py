"""Miss-dilution tracking: the miss shift-vector (Section 4.2.2).

The MSV is a 100-bit FIFO shift register recording hit(0)/miss(1) for the
last 100 L1-I accesses, enabled once the cache is full. When the number
of set bits reaches ``dilution_t`` the thread is deemed to be *leaving*
its cached segment (frequent recent misses) rather than briefly diverging
(sparse misses), and migration is enabled. The MSV is reset on every
migration.

The implementation keeps a running popcount so each access is O(1).
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigurationError


class MissShiftVector:
    """Fixed-width hit/miss history with O(1) dilution queries."""

    __slots__ = ("window", "dilution_t", "_bits", "_ones")

    def __init__(self, window: int = 100, dilution_t: int = 10) -> None:
        if window <= 0:
            raise ConfigurationError("window must be positive")
        if not (0 <= dilution_t <= window):
            raise ConfigurationError("dilution_t must lie in [0, window]")
        self.window = window
        self.dilution_t = dilution_t
        self._bits: deque[int] = deque(maxlen=window)
        self._ones = 0

    @property
    def miss_count(self) -> int:
        """Number of misses among the recorded accesses."""
        return self._ones

    @property
    def occupancy(self) -> int:
        """How many accesses have been recorded (up to ``window``)."""
        return len(self._bits)

    @property
    def dilution_reached(self) -> bool:
        """True when recent misses are frequent enough to allow migration.

        With ``dilution_t == 0`` migration is always allowed (the setting
        used by the Figure 7 threshold sweep).
        """
        return self._ones >= self.dilution_t

    def record(self, miss: bool) -> None:
        """Shift in one access outcome."""
        bit = 1 if miss else 0
        if len(self._bits) == self.window:
            self._ones -= self._bits[0]
        self._bits.append(bit)
        self._ones += bit

    def reset(self) -> None:
        """Clear all history (done on every migration)."""
        self._bits.clear()
        self._ones = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MissShiftVector(misses={self._ones}/{len(self._bits)}, "
            f"dilution_t={self.dilution_t})"
        )
