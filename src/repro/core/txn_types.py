"""Transaction-type assignment for the type-aware SLICC variants
(Section 4.3.1).

Three alternatives, matching the paper's hardware/software spectrum:

* :class:`SoftwareTypeOracle` (SLICC-SW) — the OLTP software layer
  annotates every thread with its transaction type at launch. In the
  simulator the trace's ground-truth ``txn_type`` plays that role.
* :class:`PreambleTypeDetector` (SLICC-Pp) — a dedicated *scout core*
  runs the first few tens of instructions of each new thread and hashes
  the addresses; threads hashing alike are the same type. Our hash is the
  16KB-aligned region of the first instruction block, which captures the
  paper's "similar starting address ranges" observation: transaction
  entry stubs are type-distinct while later (shared storage-manager) code
  is not. The paper reports 100% accuracy; the detector's accuracy on any
  trace is measurable via :meth:`PreambleTypeDetector.accuracy`.
* Type-oblivious SLICC uses neither — it never asks for a type.
"""

from __future__ import annotations

from repro.workloads.trace import KIND_INSTR, ThreadTrace

#: Instruction records the scout core executes per thread before hashing.
SCOUT_WINDOW = 16

#: Starting-address coarsening: 256 blocks = 16KB regions.
REGION_SHIFT = 8


class SoftwareTypeOracle:
    """SLICC-SW: the software layer hands the type over verbatim."""

    def type_of(self, thread: ThreadTrace) -> int:
        """Ground-truth transaction type (guaranteed correct)."""
        return thread.txn_type


class PreambleTypeDetector:
    """SLICC-Pp: scout-core type detection by preamble hashing.

    Hash ids are assigned in first-seen order, so they are *cluster* ids,
    not the trace's type ids; :meth:`accuracy` checks the clustering
    against ground truth (it is 1.0 exactly when the mapping hash->type
    is a bijection over the observed threads).
    """

    def __init__(self) -> None:
        self._hash_to_cluster: dict[int, int] = {}
        self._observed: list[tuple[int, int]] = []

    def preamble_hash(self, thread: ThreadTrace) -> int:
        """Hash of the thread's starting address range."""
        instr = thread.addr[thread.kind == KIND_INSTR][:SCOUT_WINDOW]
        if len(instr) == 0:
            return -1
        return int(instr[0]) >> REGION_SHIFT

    def type_of(self, thread: ThreadTrace) -> int:
        """Cluster id for the thread (stable across calls)."""
        key = self.preamble_hash(thread)
        cluster = self._hash_to_cluster.setdefault(
            key, len(self._hash_to_cluster)
        )
        self._observed.append((cluster, thread.txn_type))
        return cluster

    def accuracy(self) -> float:
        """Fraction of observed threads whose cluster maps 1:1 to a type.

        A thread is counted correct when its cluster's majority ground
        truth type equals its own type — the usual clustering-accuracy
        metric. Returns 1.0 for an empty observation set.
        """
        if not self._observed:
            return 1.0
        majority: dict[int, dict[int, int]] = {}
        for cluster, true_type in self._observed:
            majority.setdefault(cluster, {}).setdefault(true_type, 0)
            majority[cluster][true_type] += 1
        correct = 0
        for cluster, true_type in self._observed:
            counts = majority[cluster]
            best = max(counts, key=lambda t: (counts[t], -t))
            if true_type == best:
                correct += 1
        return correct / len(self._observed)

    @property
    def scout_records(self) -> int:
        """Instruction records a thread spends on the scout core."""
        return SCOUT_WINDOW
