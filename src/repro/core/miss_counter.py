"""Cache-full detection: the saturating miss counter (Section 4.2.1).

A log2(cache blocks)-wide resettable saturating counter per core counts
L1-I misses. When it saturates at ``fill_up_t`` the cache is considered
to hold a full code segment, and migrations become possible. The counter
is reset — without flushing the cache — whenever the core's thread queue
drains, giving a later thread the chance to install a new segment.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class MissCounter:
    """Resettable saturating miss counter (the paper's MC)."""

    __slots__ = ("fill_up_t", "_count")

    def __init__(self, fill_up_t: int) -> None:
        if fill_up_t <= 0:
            raise ConfigurationError("fill_up_t must be positive")
        self.fill_up_t = fill_up_t
        self._count = 0

    @property
    def count(self) -> int:
        """Current value (saturates at ``fill_up_t``)."""
        return self._count

    @property
    def full(self) -> bool:
        """True once the cache is considered full of a useful segment."""
        return self._count >= self.fill_up_t

    def record_miss(self) -> bool:
        """Count one miss; returns the post-update :attr:`full` state."""
        if self._count < self.fill_up_t:
            self._count += 1
        return self._count >= self.fill_up_t

    def reset(self) -> None:
        """Reset to empty (thread queue drained; Section 4.1 Q.1)."""
        self._count = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MissCounter({self._count}/{self.fill_up_t})"
