"""Team formation and type-aware scheduling (Section 4.3.2).

SLICC-SW and SLICC-Pp group same-type threads into **teams** so similar
transactions co-schedule and pipeline through the same set of caches.
Scheduling rules reproduced from the paper, with N worker cores:

* team size classes: **large** (>= 1.5N threads, capped at 2N), **medium**
  (0.5N .. 1.5N), **small** (< 0.5N — not grouped; members are *stray*
  threads);
* the oldest team is scheduled first, without preemption; a large team may
  use all cores, a medium team half of them;
* stray threads are scheduled individually to idle cores, possibly in
  parallel with a medium team;
* team threads are injected to start on the same initial core (the
  preamble thread then drags the footprint across the team's cores — this
  is the pipelining of Figure 4, and also why stalled migration hurts
  SLICC-SW in Figure 8's high-dilution regime);
* when a team completes, every agent's MC/MSV/MTQ is reset (the engine
  performs the reset when :meth:`TeamScheduler.thread_completed` says a
  team finished).

The scheduler is engine-agnostic: it hands out ``(thread, core, team)``
dispatch tuples and tracks team membership; queue mechanics stay in
:class:`repro.core.scheduler.ThreadQueues`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.scheduler import ThreadQueues
from repro.errors import SimulationError

#: Teams never exceed 2N threads (the thread-pool window of Section 5.1).
MAX_TEAM_FACTOR = 2.0
LARGE_FACTOR = 1.5
SMALL_FACTOR = 0.5


@dataclass
class Team:
    """One scheduled team of same-type threads."""

    team_id: int
    type_key: int
    members: set[int]
    allowed_cores: frozenset[int]
    remaining: set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if not self.remaining:
            self.remaining = set(self.members)


@dataclass(frozen=True)
class Dispatch:
    """Instruction to start one thread on one core."""

    thread_id: int
    core: int
    team_id: Optional[int]


@dataclass
class _Waiting:
    thread_id: int
    type_key: int
    arrival: int


class TeamScheduler:
    """Type-aware team scheduler over a set of worker cores."""

    def __init__(
        self,
        worker_cores: list[int],
        small_threshold: Optional[int] = None,
    ) -> None:
        """Args:
            worker_cores: cores available to teams.
            small_threshold: minimum same-type group size that forms a
                team (smaller groups are strays). Defaults to the paper's
                0.5N; the engine lowers it proportionally for traces with
                few threads per type so the team machinery still engages
                at sub-paper scales (the paper's 1K-task arrival stream
                always accumulates enough same-type threads).
        """
        if not worker_cores:
            raise SimulationError("need at least one worker core")
        self.worker_cores = list(worker_cores)
        self.n = len(worker_cores)
        if small_threshold is None:
            small_threshold = max(2, int(SMALL_FACTOR * self.n))
        self.small_threshold = small_threshold
        self._waiting: list[_Waiting] = []
        self._active: dict[int, Team] = {}
        self._thread_team: dict[int, int] = {}
        self._next_team_id = 0
        self.teams_completed = 0

    # ------------------------------------------------------------------
    # Arrival / completion
    # ------------------------------------------------------------------

    def thread_arrived(self, thread_id: int, type_key: int, arrival: int) -> None:
        """A thread entered the SLICC pool (pool admission is the engine's
        job; this records it as waiting for dispatch)."""
        self._waiting.append(_Waiting(thread_id, type_key, arrival))

    def thread_completed(self, thread_id: int) -> bool:
        """Record a completion. Returns True when this finished a team —
        the engine must then reset all agents (Section 4.3.2)."""
        team_id = self._thread_team.pop(thread_id, None)
        if team_id is None:
            return False
        team = self._active[team_id]
        team.remaining.discard(thread_id)
        if team.remaining:
            return False
        del self._active[team_id]
        self.teams_completed += 1
        return True

    def allowed_cores(self, thread_id: int) -> Optional[frozenset[int]]:
        """Cores the thread may run on / migrate to (None = unrestricted).

        Stray threads and threads of completed teams are unrestricted.
        """
        team_id = self._thread_team.get(thread_id)
        if team_id is None or team_id not in self._active:
            return None
        return self._active[team_id].allowed_cores

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _free_cores(self) -> list[int]:
        """Worker cores not reserved by an active team."""
        reserved: set[int] = set()
        for team in self._active.values():
            reserved |= team.allowed_cores
        return [c for c in self.worker_cores if c not in reserved]

    def _oldest_groups(self) -> list[tuple[int, list[_Waiting]]]:
        """Waiting threads grouped by type, oldest group first."""
        groups: dict[int, list[_Waiting]] = {}
        for w in self._waiting:
            groups.setdefault(w.type_key, []).append(w)
        return sorted(
            groups.items(), key=lambda item: min(w.arrival for w in item[1])
        )

    def dispatch(
        self, queues: ThreadQueues, idle_cores: Optional[list[int]] = None
    ) -> list[Dispatch]:
        """Form and place teams/strays given current queue state.

        Returns dispatch tuples; the engine enqueues each thread on its
        core. Called whenever cores run dry.

        Args:
            queues: current queue depths (for least-congested placement).
            idle_cores: cores with nothing running *and* nothing queued —
                strays and team start-cores prefer these, since queue
                depth alone cannot see running threads.
        """
        out: list[Dispatch] = []
        idle = list(idle_cores) if idle_cores else []
        free = self._free_cores()
        max_team = int(MAX_TEAM_FACTOR * self.n)

        # Absorption: a waiting thread whose type already has an active,
        # not-yet-full team joins it immediately — this is how the paper's
        # continuous arrival stream keeps the stray fraction low (3% for
        # TPC-E) even though any 2N-thread window holds few of each type.
        active_by_type = {t.type_key: t for t in self._active.values()}
        for w in list(self._waiting):
            team = active_by_type.get(w.type_key)
            if team is None or len(team.members) >= max_team:
                continue
            team.members.add(w.thread_id)
            team.remaining.add(w.thread_id)
            self._thread_team[w.thread_id] = team.team_id
            core = queues.least_congested(allowed=team.allowed_cores)
            out.append(Dispatch(w.thread_id, core, team.team_id))
            self._waiting.remove(w)

        groups = self._oldest_groups()
        team_groups = [
            g for g in groups if min(len(g[1]), max_team) >= self.small_threshold
        ]
        for type_key, group in groups:
            if not free:
                break
            if type_key in active_by_type:
                # Leftovers beyond a full active team wait for it to end.
                continue
            size = min(len(group), max_team)
            if size < self.small_threshold:
                continue  # small group: handled as strays below
            members = group[:size]
            if size >= LARGE_FACTOR * self.n or (
                len(team_groups) == 1 and not self._active
            ):
                # Large team — or the only runnable team with nothing to
                # time-multiplex against (keeping half the cores idle would
                # fight the paper's stated goal of maximising utilisation):
                # all currently free cores.
                cores = list(free)
            else:
                # Medium team: at most half the worker cores (the paper's
                # cap), scaled down for small teams so several can
                # co-schedule — enough caches for a pipeline, no more.
                want = min(max(1, self.n // 2), max(4, (size + 1) // 2))
                cores = free[:want]
            team = Team(
                team_id=self._next_team_id,
                type_key=type_key,
                members={w.thread_id for w in members},
                allowed_cores=frozenset(cores),
            )
            self._next_team_id += 1
            self._active[team.team_id] = team
            # Inject team threads round-robin over the team's cores. (The
            # paper injects them on a single initial core and lets
            # migration drain the queue outward; that serialises workloads
            # that never migrate — e.g. MapReduce, whose footprint fits in
            # one L1-I — so we spread at injection and let segment-match
            # migrations pull threads together. Deviation documented in
            # DESIGN.md/EXPERIMENTS.md.)
            idle_in_team = [c for c in cores if c in idle]
            spread = idle_in_team if idle_in_team else list(cores)
            for slot, w in enumerate(members):
                start_core = spread[slot % len(spread)]
                self._thread_team[w.thread_id] = team.team_id
                out.append(Dispatch(w.thread_id, start_core, team.team_id))
                self._waiting.remove(w)
            free = [c for c in free if c not in team.allowed_cores]

        # Strays: dispatched individually, but *only to idle cores* —
        # a waiting thread is more valuable in the pool (where its type
        # group can grow into a team) than queued behind a busy core.
        # Oldest waiting threads go first so nothing starves: whenever a
        # core idles with no team work available, a stray fills it.
        still_free = self._free_cores()
        idle_free = [c for c in idle if c in still_free]
        for w in list(self._waiting):
            if not idle_free:
                break
            core = idle_free.pop(0)
            out.append(Dispatch(w.thread_id, core, None))
            self._waiting.remove(w)
        return out

    @property
    def waiting_count(self) -> int:
        """Threads admitted but not yet dispatched."""
        return len(self._waiting)

    @property
    def active_team_count(self) -> int:
        """Teams currently holding cores."""
        return len(self._active)
