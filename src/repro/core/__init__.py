"""SLICC core: the paper's contribution.

The per-core agent (:class:`SliccAgent`) combines the three tracking
structures — miss counter, miss shift-vector, missed-tag queue — with the
bloom-filter cache signature to make the migrate/stay decisions of
Section 4. Team scheduling (:class:`TeamScheduler`) and the two
type-assignment mechanisms implement the SLICC-SW / SLICC-Pp variants.
"""

from repro.core.agent import (
    AgentStats,
    MigrationDecision,
    MigrationReason,
    SliccAgent,
)
from repro.core.hw_cost import HardwareCost, slicc_hardware_cost
from repro.core.miss_counter import MissCounter
from repro.core.miss_shift_vector import MissShiftVector
from repro.core.missed_tag_queue import MissedTagQueue
from repro.core.scheduler import ThreadQueues
from repro.core.signature import BloomSignature
from repro.core.teams import Dispatch, Team, TeamScheduler
from repro.core.txn_types import PreambleTypeDetector, SoftwareTypeOracle

__all__ = [
    "AgentStats",
    "BloomSignature",
    "Dispatch",
    "HardwareCost",
    "MigrationDecision",
    "MigrationReason",
    "MissCounter",
    "MissShiftVector",
    "MissedTagQueue",
    "PreambleTypeDetector",
    "SliccAgent",
    "SoftwareTypeOracle",
    "Team",
    "TeamScheduler",
    "ThreadQueues",
    "slicc_hardware_cost",
]
