"""Remote segment search: the missed-tag queue (Section 4.2.3).

The MTQ is a ``matched_t``-entry FIFO. Each entry is an ``n_cores``-bit
presence vector: bit *C* of entry *i* says the *i*-th recently missed
instruction block is cached at core *C* (as reported by core C's cache
signature). ANDing the vectors tells the agent which cores hold *all* of
the recent misses — i.e. which remote cache already contains the segment
preamble the thread is heading into.

Presence vectors are plain Python ints used as bitmasks; entry count and
core count are both tiny.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigurationError


class MissedTagQueue:
    """FIFO of presence bitvectors for recently missed instruction tags."""

    __slots__ = ("matched_t", "n_cores", "_entries")

    def __init__(self, matched_t: int, n_cores: int) -> None:
        if matched_t <= 0:
            raise ConfigurationError("matched_t must be positive")
        if n_cores <= 0:
            raise ConfigurationError("n_cores must be positive")
        self.matched_t = matched_t
        self.n_cores = n_cores
        self._entries: deque[int] = deque(maxlen=matched_t)

    @property
    def full(self) -> bool:
        """True when ``matched_t`` misses have been recorded."""
        return len(self._entries) == self.matched_t

    @property
    def occupancy(self) -> int:
        """Number of recorded misses (up to ``matched_t``)."""
        return len(self._entries)

    def record(self, presence_mask: int) -> None:
        """Push the presence vector of the newest miss (oldest falls out)."""
        self._entries.append(presence_mask)

    def common_cores(self, exclude: int | None = None) -> list[int]:
        """Cores whose caches hold *all* recorded missed tags.

        Returns an empty list unless the queue is full — a migration
        decision needs ``matched_t`` corroborating misses.

        Args:
            exclude: core id to drop from the result (the local core).
        """
        if not self.full:
            return []
        mask = (1 << self.n_cores) - 1
        for entry in self._entries:
            mask &= entry
            if not mask:
                return []
        if exclude is not None:
            mask &= ~(1 << exclude)
        return [c for c in range(self.n_cores) if mask & (1 << c)]

    def reset(self) -> None:
        """Drop all recorded misses (on migration / team completion)."""
        self._entries.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MissedTagQueue({len(self._entries)}/{self.matched_t} entries)"
        )
