"""Per-core thread queues and naive load balancing (Section 4.1).

In SLICC's steady state every core has one running thread plus a hardware
FIFO of waiting threads. Newly arrived threads go to the least congested
core; migrating threads join the tail of their target core's queue.
``ThreadQueues`` owns only queue state — *which* thread runs is the
engine's business — so it is trivially unit-testable.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

from repro.errors import SimulationError


class ThreadQueues:
    """FIFO thread queues for ``n_cores`` cores."""

    def __init__(self, n_cores: int) -> None:
        if n_cores <= 0:
            raise SimulationError("n_cores must be positive")
        self.n_cores = n_cores
        self._queues: list[deque[int]] = [deque() for _ in range(n_cores)]
        self._queued: set[int] = set()

    def enqueue(self, core: int, thread_id: int) -> None:
        """Append a thread to a core's queue.

        Raises:
            SimulationError: if the thread is already queued somewhere —
                a thread can only wait in one place.
        """
        if thread_id in self._queued:
            raise SimulationError(
                f"thread {thread_id} enqueued while already waiting"
            )
        self._queues[core].append(thread_id)
        self._queued.add(thread_id)

    def dequeue(self, core: int) -> Optional[int]:
        """Pop the next waiting thread of a core (None when empty)."""
        queue = self._queues[core]
        if not queue:
            return None
        thread_id = queue.popleft()
        self._queued.discard(thread_id)
        return thread_id

    def depth(self, core: int) -> int:
        """Number of threads waiting on a core."""
        return len(self._queues[core])

    def steal_tail(self, core: int) -> Optional[int]:
        """Remove and return the most recently queued thread of a core.

        Used by the engine's idle-core rebalancing: the tail thread is the
        one that has waited least and therefore loses the least cache
        affinity by being moved. Returns None when the queue is empty.
        """
        queue = self._queues[core]
        if not queue:
            return None
        thread_id = queue.pop()
        self._queued.discard(thread_id)
        return thread_id

    def deepest_cores(self, min_depth: int = 1) -> list[int]:
        """Cores ordered by queue depth, deepest first, at least
        ``min_depth`` waiting threads."""
        cores = [
            c for c in range(self.n_cores) if len(self._queues[c]) >= min_depth
        ]
        cores.sort(key=lambda c: -len(self._queues[c]))
        return cores

    def total_waiting(self) -> int:
        """Threads waiting across all cores."""
        return len(self._queued)

    def least_congested(
        self, allowed: Optional[Iterable[int]] = None
    ) -> int:
        """Core with the fewest waiting threads (ties -> lowest id).

        Args:
            allowed: restrict the choice to these cores (team scheduling).
        """
        cores = list(allowed) if allowed is not None else range(self.n_cores)
        if not cores:
            raise SimulationError("least_congested called with no cores")
        return min(cores, key=lambda c: (len(self._queues[c]), c))

    def is_empty(self, core: int) -> bool:
        """True when no thread waits on this core."""
        return not self._queues[core]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        depths = [len(q) for q in self._queues]
        return f"ThreadQueues(depths={depths})"
