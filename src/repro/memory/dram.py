"""DDR3 main-memory timing model (Table 2).

The paper's machine uses DDR3-1600 with an open-page policy, 2 channels,
1 rank and 8 banks, and lists the full timing set (tCAS-10, tRCD-10,
tRP-10, ...). The replay engine's default flat ``memory_latency`` of
42ns x 2.5GHz ≈ 105-120 core cycles is the average this model produces;
``DramModel`` exposes the underlying row-buffer mechanics for studies
that care about locality in the miss stream (e.g. how SLICC's migrations
change row-buffer hit rates).

Timings are in *memory bus* cycles (800MHz for DDR3-1600) and converted
to core cycles via the clock ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DdrTimings:
    """DDR3 timing parameters in bus cycles (Table 2 values)."""

    tCAS: int = 10
    tRCD: int = 10
    tRP: int = 10
    tRAS: int = 35
    tRC: float = 47.5
    tWR: int = 15
    tWTR: float = 7.5
    tRTRS: int = 1
    tCCD: int = 4
    tCWD: float = 9.5
    #: Bus burst: 64B line over an 8B bus at double data rate.
    burst_cycles: int = 4

    def row_hit_cycles(self) -> float:
        """Open page, row already active: CAS + burst."""
        return self.tCAS + self.burst_cycles

    def row_miss_cycles(self) -> float:
        """Open page, wrong row active: precharge + activate + CAS."""
        return self.tRP + self.tRCD + self.tCAS + self.burst_cycles

    def row_empty_cycles(self) -> float:
        """Bank idle (no row active): activate + CAS."""
        return self.tRCD + self.tCAS + self.burst_cycles


class DramModel:
    """Open-page DDR3 model: channels x banks with row-buffer state.

    Address mapping: block id -> channel (low bit), bank (next bits),
    row (remaining bits; 128 blocks = 8KB rows).
    """

    ROW_BLOCKS = 128

    def __init__(
        self,
        timings: DdrTimings | None = None,
        n_channels: int = 2,
        n_banks: int = 8,
        core_clock_ghz: float = 2.5,
        bus_clock_ghz: float = 0.8,
    ) -> None:
        if n_channels <= 0 or n_banks <= 0:
            raise ConfigurationError("channels/banks must be positive")
        self.timings = timings if timings is not None else DdrTimings()
        self.n_channels = n_channels
        self.n_banks = n_banks
        self.ratio = core_clock_ghz / bus_clock_ghz
        #: Open row per (channel, bank); None = precharged.
        self._open_row: dict[tuple[int, int], int | None] = {
            (c, b): None for c in range(n_channels) for b in range(n_banks)
        }
        self.row_hits = 0
        self.row_misses = 0
        self.row_empties = 0

    def _map(self, block: int) -> tuple[int, int, int]:
        channel = block % self.n_channels
        bank = (block // self.n_channels) % self.n_banks
        row = block // (self.ROW_BLOCKS * self.n_channels * self.n_banks)
        return channel, bank, row

    def access(self, block: int) -> int:
        """Access one 64B line; returns the latency in *core* cycles.

        Updates the open-row state (open-page policy keeps the row
        active after the access).
        """
        channel, bank, row = self._map(block)
        key = (channel, bank)
        open_row = self._open_row[key]
        t = self.timings
        if open_row == row:
            self.row_hits += 1
            bus_cycles = t.row_hit_cycles()
        elif open_row is None:
            self.row_empties += 1
            bus_cycles = t.row_empty_cycles()
        else:
            self.row_misses += 1
            bus_cycles = t.row_miss_cycles()
        self._open_row[key] = row
        return int(round(bus_cycles * self.ratio))

    @property
    def row_hit_rate(self) -> float:
        """Fraction of accesses hitting an open row."""
        total = self.row_hits + self.row_misses + self.row_empties
        return self.row_hits / total if total else 0.0

    def average_latency(self) -> float:
        """Average core-cycle latency implied by the observed mix.

        For a fresh model this sits near the flat 42ns (~105 core
        cycles) the Table 2 summary quotes.
        """
        total = self.row_hits + self.row_misses + self.row_empties
        if total == 0:
            t = self.timings
            return t.row_empty_cycles() * self.ratio
        t = self.timings
        weighted = (
            self.row_hits * t.row_hit_cycles()
            + self.row_misses * t.row_miss_cycles()
            + self.row_empties * t.row_empty_cycles()
        )
        return weighted * self.ratio / total
