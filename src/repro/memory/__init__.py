"""Main-memory substrate: the Table 2 DDR3 timing model."""

from repro.memory.dram import DdrTimings, DramModel

__all__ = ["DdrTimings", "DramModel"]
