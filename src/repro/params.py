"""Simulation parameters mirroring Tables 1 and 2 of the SLICC paper.

Three dataclasses carry all configuration:

* :class:`CacheParams` — geometry and latency of one cache level.
* :class:`SystemParams` — the machine of Table 2 (16 OoO cores, private
  32KB L1s, shared NUCA L2, 4x4 torus, DDR3 memory) plus the timing
  constants our simplified stall-cycle model needs.
* :class:`SliccParams` — the three SLICC thresholds (``fill_up_t``,
  ``matched_t``, ``dilution_t``) and the bloom-filter signature size,
  with the paper's chosen operating point as defaults (Section 5.2).

``ScalePreset`` shrinks workloads so unit tests run in milliseconds while
benchmarks use a size large enough for the paper's effects to be visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum

from repro.errors import ConfigurationError

#: Cache block size used throughout the paper (bytes).
BLOCK_SIZE = 64

#: log2(BLOCK_SIZE); block id = byte address >> BLOCK_SHIFT.
BLOCK_SHIFT = 6


class ScalePreset(Enum):
    """Workload scale presets.

    ``SMOKE`` is for unit tests (seconds), ``CI`` for the benchmark harness
    (minutes for the full suite), ``PAPER`` approaches the paper's 1K tasks
    and is intended for unattended runs.
    """

    SMOKE = "smoke"
    CI = "ci"
    PAPER = "paper"


@dataclass(frozen=True)
class CacheParams:
    """Geometry and latency for a single cache.

    Attributes:
        size_bytes: total capacity in bytes.
        assoc: number of ways per set.
        block_size: line size in bytes (64 throughout the paper).
        hit_latency: access latency in cycles (load-to-use).
        policy: replacement policy name, one of
            ``lru, lip, bip, dip, srrip, brrip, drrip``.
    """

    size_bytes: int = 32 * 1024
    assoc: int = 8
    block_size: int = BLOCK_SIZE
    hit_latency: int = 3
    policy: str = "lru"

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.assoc <= 0 or self.block_size <= 0:
            raise ConfigurationError(
                f"cache parameters must be positive: {self}"
            )
        if self.size_bytes % (self.block_size * self.assoc) != 0:
            raise ConfigurationError(
                f"size {self.size_bytes} not divisible by "
                f"block_size*assoc = {self.block_size * self.assoc}"
            )
        n_sets = self.size_bytes // (self.block_size * self.assoc)
        if n_sets & (n_sets - 1) != 0:
            raise ConfigurationError(
                f"number of sets must be a power of two, got {n_sets}"
            )

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.block_size * self.assoc)

    @property
    def n_blocks(self) -> int:
        """Total number of cache lines (used for fill-up_t defaults)."""
        return self.size_bytes // self.block_size

    def scaled(self, size_bytes: int, hit_latency: int | None = None) -> "CacheParams":
        """Return a copy with a new size (and optionally latency).

        Used by the Figure 1 cache-size sweep and the PIF upper-bound model
        (512KB capacity at 32KB latency).
        """
        if hit_latency is None:
            hit_latency = self.hit_latency
        return replace(self, size_bytes=size_bytes, hit_latency=hit_latency)


@dataclass(frozen=True)
class SystemParams:
    """The Table 2 machine plus stall-model constants.

    The paper simulates 16 out-of-order cores on a 4x4 torus with private
    32KB L1s and a 16MB shared NUCA L2. Our replay engine charges stall
    cycles per miss instead of modelling the pipeline; the overlap factors
    encode that out-of-order execution hides data-miss latency far better
    than fetch-miss latency (Sections 3.3 and 5.6).
    """

    n_cores: int = 16
    torus_width: int = 4
    l1i: CacheParams = field(default_factory=CacheParams)
    l1d: CacheParams = field(default_factory=CacheParams)
    l2_hit_latency: int = 16
    memory_latency: int = 120

    #: Retired instructions represented by one instruction-block record.
    instructions_per_iblock: int = 12
    #: Base cycles charged per instruction-block record (fetch+execute).
    base_cycles_per_iblock: int = 4
    #: Fraction of a data-load miss penalty that stalls the core.
    load_overlap: float = 0.35
    #: Fraction of a data-store miss penalty that stalls the core.
    store_overlap: float = 0.15
    #: Extra front-end refill cycles charged on every L1-I miss (fetch
    #: stalls cannot be hidden by the OoO window the way data stalls can).
    frontend_refill_cycles: int = 10
    #: Fraction of the miss penalty still paid when a next-line prefetch
    #: arrives late (prefetch issued on the trigger miss, used immediately).
    prefetch_late_fraction: float = 0.5
    #: Cycles charged on a TLB miss (page-table walk).
    tlb_miss_cycles: int = 30
    #: Cycles to save+restore a thread context through the nearest L2 bank.
    migration_context_cycles: int = 2 * 16 + 32
    #: Extra cycles per torus hop during a migration.
    migration_hop_cycles: int = 1
    #: Pipeline refill cycles at the destination core after a migration.
    migration_refill_cycles: int = 20

    def __post_init__(self) -> None:
        if self.torus_width * self.torus_width != self.n_cores:
            raise ConfigurationError(
                f"n_cores ({self.n_cores}) must equal torus_width^2 "
                f"({self.torus_width}^2)"
            )
        if not (0.0 <= self.load_overlap <= 1.0 and 0.0 <= self.store_overlap <= 1.0):
            raise ConfigurationError("overlap factors must lie in [0, 1]")


@dataclass(frozen=True)
class SliccParams:
    """SLICC thresholds and signature configuration (Sections 4.2, 5.2).

    Defaults are the operating point the paper settles on: ``fill_up_t`` =
    256 (half the 512 blocks of a 32KB L1-I), ``matched_t`` = 4,
    ``dilution_t`` = 10, and a 2K-bit partial-address bloom filter.
    """

    fill_up_t: int = 256
    matched_t: int = 4
    dilution_t: int = 10
    msv_window: int = 100
    bloom_bits: int = 2048
    #: Thread pool size multiplier: SLICC manages up to 2N threads (5.1).
    thread_pool_factor: int = 2

    def __post_init__(self) -> None:
        if self.fill_up_t <= 0:
            raise ConfigurationError("fill_up_t must be positive")
        if self.matched_t <= 0:
            raise ConfigurationError("matched_t must be positive")
        if not (0 <= self.dilution_t <= self.msv_window):
            raise ConfigurationError(
                f"dilution_t must lie in [0, msv_window={self.msv_window}]"
            )
        if self.bloom_bits <= 0 or self.bloom_bits & (self.bloom_bits - 1) != 0:
            raise ConfigurationError("bloom_bits must be a positive power of two")


#: Default machine used throughout tests and benchmarks.
DEFAULT_SYSTEM = SystemParams()

#: The paper's chosen SLICC operating point.
DEFAULT_SLICC = SliccParams()
