"""Trace-replay simulation engine.

Replays a :class:`repro.workloads.trace.Trace` on a :class:`Machine`
under one of six variants:

======================  =====================================================
``base``                OS-style static scheduling, no migration (Section 5.1)
``nextline``            base + per-core next-line instruction prefetcher
``pif``                 base + the PIF upper-bound L1-I (512KB @ 32KB latency)
``slicc``               type-oblivious SLICC thread migration (Section 4.1)
``slicc-sw``            SLICC + software-provided types + teams (Section 4.3)
``slicc-pp``            SLICC + scout-core preamble type detection
``steps``               STEPS-style same-core time-multiplexing (Section 6)
======================  =====================================================

Scheduling model: every core has a local cycle clock and a FIFO thread
queue; an event heap always advances the core that is earliest in time,
running its current thread for up to ``quantum`` records before
rescheduling. This quantum interleaving approximates the concurrency of
the paper's cycle-accurate Zesto runs while staying fast enough for
parameter sweeps (DESIGN.md section 3 discusses the substitution).

A thread runs on exactly one core at a time. Migration enqueues the
thread at the target core and charges it the Thread-Motion-style context
transfer cost (Section 4.4) when it next starts running.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional

from repro.cache.classify import MissClass, MissClassifier
from repro.core.agent import MigrationReason, SliccAgent
from repro.core.scheduler import ThreadQueues
from repro.core.txn_types import PreambleTypeDetector, SoftwareTypeOracle
from repro.errors import ConfigurationError, SimulationError
from repro.params import SliccParams, SystemParams
from repro.prefetch.nextline import NextLinePrefetcher
from repro.prefetch.pif import pif_l1i_params
from repro.sim.machine import Machine
from repro.sim.results import SimulationResult
from repro.sim.timing import TimingModel
from repro.workloads.trace import KIND_INSTR, KIND_STORE, Trace

VARIANTS = (
    "base",
    "nextline",
    "pif",
    "slicc",
    "slicc-sw",
    "slicc-pp",
    "steps",
)

#: Variants that migrate threads.
SLICC_VARIANTS = ("slicc", "slicc-sw", "slicc-pp")

#: Variants that use team scheduling.
TEAM_VARIANTS = ("slicc-sw", "slicc-pp")

#: Cycles charged per STEPS context switch (Harizopoulos & Ailamaki report
#: a hand-optimised switch far cheaper than an OS one).
STEPS_SWITCH_CYCLES = 24

#: Cycles of L2 bandwidth charged per block shipped by the migration data
#: prefetcher (Section 5.5's mitigation experiment).
DATA_PREFETCH_CYCLES_PER_BLOCK = 2

#: One in this many bypassed misses installs anyway (gap self-repair; see
#: the segment-protection comment in ``_process_instruction``).
BYPASS_REPAIR_RATE = 8


@dataclass(frozen=True)
class SimConfig:
    """Configuration of one simulation run."""

    variant: str = "base"
    system: SystemParams = field(default_factory=SystemParams)
    slicc: SliccParams = field(default_factory=SliccParams)
    quantum: int = 50
    collect_miss_classes: bool = False
    #: Cycles between successive thread arrivals. ``None`` derives a
    #: throughput-matched spacing (mean thread service time / cores) so
    #: the machine runs at steady state with threads at *different phases*
    #: of their transactions — the regime of the paper's 1K-task stream.
    #: 0 makes all threads available at cycle zero (synchronised start).
    arrival_spacing: Optional[int] = None
    #: Idle-core work stealing in SLICC variants (see
    #: :meth:`ReplayEngine._rebalance`). Exposed for the ablation bench.
    work_stealing: bool = True
    #: Minimum queue depth a victim core must have before an idle core
    #: steals from it. Higher values trade utilisation for segment
    #: stability (a stolen thread replicates its segment at the idle
    #: core, evicting whatever lived there).
    steal_min_depth: int = 3
    #: Reset the stolen-to core's MC so the stolen thread *replicates*
    #: the hot segment there (spreading queue load over two copies).
    #: False keeps the idle core's cache frozen: the stolen thread runs
    #: bypassed until a segment match pulls it back into the collective.
    #: The default False preserves assembled segments; the ablation bench
    #: quantifies both policies.
    steal_resets_mc: bool = False
    #: Migration data prefetcher (Section 5.5): ship the last n data
    #: block tags with a migrating thread. 0 disables (the default — the
    #: paper found the mitigation unhelpful; the bench reproduces that).
    data_prefetch_n: int = 0
    #: Model the banked NUCA L2's finite capacity and bank distances
    #: (Table 2) instead of the infinite-L2 approximation. Slower; only
    #: changes results when a workload's footprint pressures 16MB.
    model_l2_capacity: bool = False

    def __post_init__(self) -> None:
        if self.variant not in VARIANTS:
            raise ConfigurationError(
                f"unknown variant {self.variant!r}; known: {VARIANTS}"
            )
        if self.quantum <= 0:
            raise ConfigurationError("quantum must be positive")


class _ThreadState:
    """Mutable replay position of one thread."""

    __slots__ = ("trace", "pos", "pending_cycles", "done", "i_misses")

    def __init__(self, trace) -> None:
        self.trace = trace
        self.pos = 0
        self.pending_cycles = 0
        self.done = False
        self.i_misses = 0


class ReplayEngine:
    """Replays one trace under one configuration. Single-use."""

    def __init__(self, trace: Trace, config: SimConfig) -> None:
        self.trace = trace
        self.config = config
        system = config.system
        self.timing_base = system

        variant = config.variant
        self.is_slicc = variant in SLICC_VARIANTS
        self.has_teams = variant in TEAM_VARIANTS
        # STEPS (Section 6): time-multiplex similar threads on one core,
        # context-switching when the running thread leaves the cached
        # chunk (dilution), instead of migrating between cores.
        self.is_steps = variant == "steps"

        l1i_params = pif_l1i_params(system.l1i) if variant == "pif" else None
        self.machine = Machine(
            system,
            slicc=config.slicc if self.is_slicc else None,
            l1i_params=l1i_params,
            with_signatures=self.is_slicc,
            model_l2_capacity=config.model_l2_capacity,
        )
        self.timing = TimingModel(system, self.machine.l1i_params.hit_latency)

        n = system.n_cores
        # SLICC-Pp dedicates the last core to preamble scouting.
        if variant == "slicc-pp":
            self.worker_cores = list(range(n - 1))
        else:
            self.worker_cores = list(range(n))
        self._worker_set = frozenset(self.worker_cores)

        self.queues = ThreadQueues(n)
        self.agents: Optional[list[SliccAgent]] = None
        if self.is_slicc:
            self.agents = [
                SliccAgent(core, config.slicc, n) for core in range(n)
            ]
        self.steps_agents: Optional[list[SliccAgent]] = None
        if self.is_steps:
            # STEPS reuses the MSV dilution detector per core, nothing
            # else of the SLICC machinery.
            self.steps_agents = [
                SliccAgent(core, config.slicc, n) for core in range(n)
            ]

        self.data_prefetcher = None
        if config.data_prefetch_n > 0 and self.is_slicc:
            from repro.prefetch.migration_data import MigrationDataPrefetcher

            self.data_prefetcher = MigrationDataPrefetcher(
                config.data_prefetch_n
            )

        # Type-aware scheduling (SLICC-SW / SLICC-Pp): partition the
        # worker cores among transaction types proportionally to their
        # share of the thread mix, so same-type threads co-schedule on the
        # same caches and pipeline (Section 4.3.2's teams, realised as a
        # static partition — robust under any arrival pattern, whereas
        # dynamic team formation needs a deep standing pool to group
        # from). Types too small to earn 2 cores pool into a shared
        # region and behave like the paper's stray threads.
        self.type_source = None
        self._partition: Optional[dict[int, frozenset[int]]] = None
        self._thread_type_key: dict[int, int] = {}
        if self.has_teams or self.is_steps:
            # STEPS groups same-type threads onto the same cores too (its
            # teams run on one core each, time-multiplexed).
            if variant == "slicc-pp":
                self.type_source = PreambleTypeDetector()
            else:
                self.type_source = SoftwareTypeOracle()
            counts: dict[int, int] = {}
            for thread in trace.threads:
                key = self.type_source.type_of(thread)
                self._thread_type_key[thread.thread_id] = key
                counts[key] = counts.get(key, 0) + 1
            self._partition = self._build_partition(counts)

        self.prefetchers: Optional[list[NextLinePrefetcher]] = None
        if variant == "nextline":
            self.prefetchers = []
            for core in range(n):
                pf = NextLinePrefetcher(self.machine.l1i[core])
                self.machine.l1i[core].on_evict = pf.on_evict
                self.prefetchers.append(pf)

        self.i_classifiers: Optional[list[MissClassifier]] = None
        self.d_classifiers: Optional[list[MissClassifier]] = None
        if config.collect_miss_classes:
            self.i_classifiers = [
                MissClassifier(self.machine.l1i_params.n_blocks)
                for _ in range(n)
            ]
            self.d_classifiers = [
                MissClassifier(system.l1d.n_blocks) for _ in range(n)
            ]

        # Thread / core state.
        self.threads = [_ThreadState(t) for t in trace.threads]
        self.running: list[Optional[int]] = [None] * n
        self.clock = [0] * n
        self._heap: list[tuple[int, int, int]] = []
        self._in_heap = [False] * n
        self._seq = 0
        self._arrival_ptr = 0
        self._resident = 0
        # SLICC manages a 2N pool (Section 5.1); STEPS also needs peers
        # queued per core to multiplex between.
        pool_factor = (
            config.slicc.thread_pool_factor
            if (self.is_slicc or self.is_steps)
            else 1
        )
        self.pool_size = pool_factor * len(self.worker_cores)

        spacing = config.arrival_spacing
        if spacing is None:
            # Throughput-matched arrival rate: one thread per (mean thread
            # service time / worker count), using the base cycle cost as
            # the service-time proxy.
            mean_records = trace.total_records / len(trace.threads)
            spacing = int(
                mean_records
                * system.base_cycles_per_iblock
                / max(1, len(self.worker_cores))
            )
        self._arrival_time = [spacing * i for i in range(len(self.threads))]

        # Statistics.
        self.migrations = 0
        self.context_switches = 0
        self.steals = 0
        self.completed = 0
        self._bypass_tick = 0
        self.busy_cycles = 0
        self.cycles_base = 0
        self.cycles_i_stall = 0
        self.cycles_d_stall = 0
        self.cycles_migration = 0
        self.cycles_tlb = 0
        self._ran = False

    # ------------------------------------------------------------------
    # Heap / activation helpers
    # ------------------------------------------------------------------

    def _build_partition(
        self, counts: dict[int, int]
    ) -> dict[int, frozenset[int]]:
        """Split the worker cores among types by thread-count share.

        Types earning fewer than 2 cores pool into a shared region
        (key ``-1``) alongside any leftover cores — their threads are the
        equivalent of the paper's strays.
        """
        workers = list(self.worker_cores)
        total = max(1, sum(counts.values()))
        n = len(workers)
        ordered = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        small_keys = [k for k, c in ordered if round(n * c / total) < 2]
        # Reserve a pool region when small types exist.
        reserve = 2 if small_keys else 0
        assignment: dict[int, frozenset[int]] = {}
        cursor = 0
        for key, count in ordered:
            if key in small_keys:
                continue
            want = round(n * count / total)
            avail = n - reserve - cursor
            take = min(want, avail)
            if take < 2:
                small_keys.append(key)
                continue
            assignment[key] = frozenset(workers[cursor : cursor + take])
            cursor += take
        pool = frozenset(workers[cursor:])
        if pool:
            for key in small_keys:
                assignment[key] = pool
            assignment[-1] = pool
        else:
            # Everything assigned exactly: strays roam the whole chip.
            for key in small_keys:
                assignment[key] = frozenset(workers)
            assignment[-1] = frozenset(workers)
        return assignment

    def _allowed_for(self, thread_id: int) -> frozenset[int]:
        """Cores a thread may be placed on / migrate to."""
        if self._partition is None:
            return self._worker_set
        key = self._thread_type_key.get(thread_id, -1)
        return self._partition.get(key, self._worker_set)

    def _activate(self, core: int, at_cycle: int) -> None:
        """Ensure a core with work is in the event heap."""
        if self._in_heap[core]:
            return
        self.clock[core] = max(self.clock[core], at_cycle)
        self._seq += 1
        heapq.heappush(self._heap, (self.clock[core], self._seq, core))
        self._in_heap[core] = True

    def _idle_cores(self) -> list[int]:
        """Worker cores with nothing running and nothing queued."""
        return [
            c
            for c in self.worker_cores
            if self.running[c] is None and self.queues.is_empty(c)
        ]

    def _rebalance(self, now: int) -> None:
        """Idle-core work stealing (SLICC variants only).

        Same-type threads chase the same segment sequence, so they pile
        up in the queue of whichever core holds the next segment while
        other cores run dry. An idle core adopting the *tail* of the
        deepest compatible queue keeps utilisation up; because a core
        that drained its queue has already reset its MC
        (:meth:`SliccAgent.on_queue_empty`), the stolen thread simply
        loads its segment there without triggering bounce migrations.
        This implements the paper's stated scheduler goal of maximising
        core utilisation and reducing queuing delay (Section 4.3.2).
        """
        if self.agents is None or not self.config.work_stealing:
            return
        idle = self._idle_cores()
        if not idle:
            return
        for victim in self.queues.deepest_cores(
            min_depth=self.config.steal_min_depth
        ):
            if not idle:
                break
            thread_id = self.queues.steal_tail(victim)
            if thread_id is None:
                continue
            allowed = self._allowed_for(thread_id)
            target = next((c for c in idle if c in allowed), None)
            if target is None:
                # No compatible idle core; put the thread back.
                self.queues.enqueue(victim, thread_id)
                continue
            idle.remove(target)
            self.steals += 1
            if self.config.steal_resets_mc:
                # The idle core adopts (replicates) the stolen thread's
                # segment: hot chunks end up on several cores, spreading
                # the convoy that forms behind popular code.
                self.agents[target].mc.reset()
            self.queues.enqueue(target, thread_id)
            self._activate(target, now)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def _admit_threads(self, now: int) -> None:
        """Pull threads from the arrival stream into the resident pool.

        A thread is admitted once it has arrived (its arrival time is due)
        and the pool has room (N threads for the baseline's OS scheduler,
        2N for SLICC — Section 5.1).
        """
        while (
            self._arrival_ptr < len(self.threads)
            and self._arrival_time[self._arrival_ptr] <= now
            and self._resident < self.pool_size
        ):
            thread_id = self._arrival_ptr
            self._arrival_ptr += 1
            self._resident += 1
            state = self.threads[thread_id]
            if isinstance(self.type_source, PreambleTypeDetector):
                # Scout-core preprocessing: a few tens of instructions on
                # the dedicated core before the thread starts working.
                state.pending_cycles += (
                    self.type_source.scout_records * self.timing.ibase
                )
            core = self._place_core(thread_id)
            self.queues.enqueue(core, thread_id)
            self._activate(core, now)

    def _place_core(self, thread_id: int) -> int:
        """Naive load balancing within the thread's allowed region:
        idle core first, else shortest queue (Section 4.1)."""
        allowed = self._allowed_for(thread_id)
        idle = [c for c in self._idle_cores() if c in allowed]
        if idle:
            return idle[0]
        return self.queues.least_congested(allowed=sorted(allowed))

    # ------------------------------------------------------------------
    # Record processing
    # ------------------------------------------------------------------

    def _process_instruction(self, core: int, block: int) -> tuple[int, bool]:
        """One instruction-block record; returns (cycles, migrate_checked).

        The second element is True when SLICC decided to migrate — the
        caller must stop the quantum and perform the migration (the
        decision is stored in ``self._pending_decision``).
        """
        machine = self.machine
        timing = self.timing
        cycles = timing.ibase
        self.cycles_base += timing.ibase
        if not machine.itlb[core].access(block):
            cycles += timing.itlb_miss
            self.cycles_tlb += timing.itlb_miss

        # Segment protection: once this core's cache is full of a useful
        # segment (MC saturated), demand misses mostly bypass the fill
        # path so a thread streaming towards a *different* segment cannot
        # erode the collective other threads rely on. One in
        # BYPASS_REPAIR_RATE bypassed misses still installs: the blocks a
        # thread misses during its migration-decision window ("gaps" in
        # the paper's terms, Section 4.2.2) would otherwise be cached
        # nowhere and re-missed by every pass; the occasional install
        # accretes them onto the core where the gap occurs, repairing the
        # seam. Installs resume fully after the MC resets (queue drained,
        # STAY decision, or team completion).
        fill = True
        if self.agents is not None and self.agents[core].cache_full:
            self._bypass_tick += 1
            fill = self._bypass_tick % BYPASS_REPAIR_RATE == 0
        result = machine.l1i[core].access(block, fill=fill)
        if self.i_classifiers is not None:
            self.i_classifiers[core].observe(block, result.hit)

        if result.hit:
            if self.prefetchers is not None and self.prefetchers[
                core
            ].consume_if_prefetched(block):
                late = timing.prefetch_late(True)
                cycles += late
                self.cycles_i_stall += late
        else:
            if machine.nuca is not None:
                l2_hit, l2_cycles = machine.nuca.access(core, block)
                penalty = (
                    l2_cycles + timing.system.frontend_refill_cycles
                    if l2_hit
                    else timing.i_miss(False)
                )
            else:
                penalty = timing.i_miss(machine.l2_touch(block))
            cycles += penalty
            self.cycles_i_stall += penalty
            if fill:
                machine.signature_insert(core, block)
            if self.prefetchers is not None:
                prefetched = self.prefetchers[core].on_demand_miss(block)
                if prefetched is not None:
                    machine.l2_touch(prefetched)

        if self.steps_agents is not None:
            agent = self.steps_agents[core]
            agent.observe_access(result.hit)
            if not agent.cache_full:
                return cycles, False
            if (
                not result.hit
                and agent.msv.dilution_reached
                and not self.queues.is_empty(core)
            ):
                # The running thread left the cached chunk and peers are
                # waiting: context switch (STEPS time-multiplexing).
                self._pending_target = -1
                return cycles, True
            return cycles, False

        if self.agents is None:
            return cycles, False

        agent = self.agents[core]
        gather = agent.observe_access(result.hit)
        if gather:
            mask = machine.presence_mask(block, core, self.worker_cores)
            agent.note_miss_presence(mask)
            if agent.migration_enabled:
                thread_id = self.running[core]
                allowed = self._allowed_for(thread_id)
                decision = agent.decide(
                    self._idle_cores(),
                    allowed_cores=allowed,
                    nearest=lambda cands: self.machine.torus.nearest(
                        core, cands
                    ),
                )
                if decision.target is not None:
                    if decision.reason is MigrationReason.IDLE_CORE:
                        # The idle core adopts the thread's new segment:
                        # unfreeze its fill path.
                        self.agents[decision.target].mc.reset()
                    self._pending_target = decision.target
                    return cycles, True
        return cycles, False

    def _process_data(self, core: int, block: int, is_store: bool) -> int:
        """One data record; returns cycles charged."""
        machine = self.machine
        timing = self.timing
        cycles = timing.dbase
        self.cycles_base += timing.dbase
        if not machine.dtlb[core].access(block):
            cycles += timing.dtlb_miss
            self.cycles_tlb += timing.dtlb_miss

        if self.data_prefetcher is not None:
            thread_id = self.running[core]
            self.data_prefetcher.record_access(thread_id, block)
            if not machine.l1d[core].probe(block):
                self.data_prefetcher.note_demand(thread_id, block)
        result = machine.l1d[core].access(block)
        if self.d_classifiers is not None:
            self.d_classifiers[core].observe(block, result.hit)
        if not result.hit:
            if machine.nuca is not None:
                l2_hit, _ = machine.nuca.access(core, block)
                penalty = timing.d_miss(l2_hit, is_store)
            else:
                penalty = timing.d_miss(machine.l2_touch(block), is_store)
            cycles += penalty
            self.cycles_d_stall += penalty
        if is_store:
            machine.directory.on_write(core, block)
        elif not result.hit:
            machine.directory.on_read(core, block)
        return cycles

    # ------------------------------------------------------------------
    # Migration / completion
    # ------------------------------------------------------------------

    def _migrate(self, core: int, target: int) -> None:
        """Move the running thread of ``core`` to ``target``'s queue."""
        thread_id = self.running[core]
        if thread_id is None:
            raise SimulationError("migration from a core with no thread")
        state = self.threads[thread_id]
        hops = self.machine.torus.hops(core, target)
        cost = self.timing.migration(hops)
        if self.data_prefetcher is not None:
            # Ship the last-n data tags to the target L1-D (Section 5.5).
            blocks = self.data_prefetcher.blocks_for_migration(thread_id)
            for block in blocks:
                self.machine.l1d[target].install(block)
                self.machine.directory.on_read(target, block)
            cost += DATA_PREFETCH_CYCLES_PER_BLOCK * len(blocks)
        state.pending_cycles += cost
        self.cycles_migration += cost
        self.running[core] = None
        agent = self.agents[core]
        agent.on_thread_switch()
        self.migrations += 1
        self.queues.enqueue(target, thread_id)
        self._activate(target, self.clock[core])
        self._rebalance(self.clock[core])

    def _steps_switch(self, core: int) -> None:
        """STEPS context switch: requeue the running thread at the tail
        of its own core's queue and charge the (fast) switch cost."""
        thread_id = self.running[core]
        if thread_id is None:
            raise SimulationError("context switch with no running thread")
        self.running[core] = None
        self.clock[core] += STEPS_SWITCH_CYCLES
        self.context_switches += 1
        agent = self.steps_agents[core]
        agent.msv.reset()
        self.queues.enqueue(core, thread_id)

    def _complete(self, core: int, now: int) -> None:
        """The running thread of ``core`` finished all its records."""
        thread_id = self.running[core]
        state = self.threads[thread_id]
        state.done = True
        self.running[core] = None
        self.completed += 1
        self._resident -= 1
        if self.agents is not None:
            self.agents[core].on_thread_switch()
        self._admit_threads(now)
        self._rebalance(now)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the full trace; returns aggregated results."""
        if self._ran:
            raise SimulationError("ReplayEngine instances are single-use")
        self._ran = True
        self._pending_target: Optional[int] = None
        self._admit_threads(now=0)

        quantum = self.config.quantum
        while True:
            if not self._heap:
                if self._arrival_ptr >= len(self.threads):
                    break
                # All admitted work finished before the next arrival: jump
                # time forward to the arrival and admit it.
                now = max(
                    max(self.clock),
                    self._arrival_time[self._arrival_ptr],
                )
                self._admit_threads(now)
                if not self._heap:
                    raise SimulationError(
                        "no core activated by a due arrival — pool stuck"
                    )
                continue
            clock, _, core = heapq.heappop(self._heap)
            self._in_heap[core] = False
            clock = self.clock[core] = max(clock, self.clock[core])
            if (
                self._arrival_ptr < len(self.threads)
                and self._arrival_time[self._arrival_ptr] <= clock
            ):
                self._admit_threads(clock)

            if self.running[core] is None:
                thread_id = self.queues.dequeue(core)
                if thread_id is None:
                    # Note: the paper resets the MC when a queue drains
                    # (Section 4.1). With the segment-protection bypass
                    # that reset lets any thread landing on a drained core
                    # overwrite a chunk other threads still use, so this
                    # engine resets the MC on *idle-rung migrations* and
                    # STAY decisions instead — same adaptivity, without
                    # sacrificing assembled segments (see DESIGN.md).
                    self._rebalance(clock)
                    if not self.queues.is_empty(core):
                        self._activate(core, clock)
                    continue
                self.running[core] = thread_id
                state = self.threads[thread_id]
                if self.agents is not None:
                    self.agents[core].on_thread_switch()
                if self.steps_agents is not None:
                    self.steps_agents[core].msv.reset()
                if state.pending_cycles:
                    self.clock[core] += state.pending_cycles
                    state.pending_cycles = 0

            thread_id = self.running[core]
            state = self.threads[thread_id]
            trace = state.trace
            addr = trace.addr
            kind = trace.kind
            n_records = len(addr)
            cycles = 0
            migrated = False

            for _ in range(quantum):
                if state.pos >= n_records:
                    break
                block = int(addr[state.pos])
                k = int(kind[state.pos])
                state.pos += 1
                if k == KIND_INSTR:
                    step, migrate = self._process_instruction(core, block)
                    cycles += step
                    if step > self.timing.ibase:
                        state.i_misses += 1
                    if migrate:
                        migrated = True
                        break
                else:
                    cycles += self._process_data(
                        core, block, k == KIND_STORE
                    )

            self.clock[core] += cycles
            self.busy_cycles += cycles

            if migrated:
                if self._pending_target == -1:
                    self._steps_switch(core)
                else:
                    self._migrate(core, self._pending_target)
            elif state.pos >= n_records:
                self._complete(core, self.clock[core])

            if self.running[core] is not None or not self.queues.is_empty(core):
                self._activate(core, self.clock[core])

        if self.completed != len(self.threads):
            raise SimulationError(
                f"run ended with {self.completed}/{len(self.threads)} "
                "threads completed — scheduler deadlock"
            )
        return self._collect_results()

    # ------------------------------------------------------------------

    def _collect_results(self) -> SimulationResult:
        machine = self.machine
        result = SimulationResult(
            variant=self.config.variant,
            workload=self.trace.workload,
            cycles=max(self.clock),
            instructions=self.trace.total_instructions,
            i_accesses=machine.total_i_accesses(),
            i_misses=machine.total_i_misses(),
            d_accesses=machine.total_d_accesses(),
            d_misses=machine.total_d_misses(),
            migrations=self.migrations,
            invalidations=machine.directory.invalidations_sent,
            itlb_misses=sum(t.misses for t in machine.itlb),
            dtlb_misses=sum(t.misses for t in machine.dtlb),
            threads_completed=self.completed,
            context_switches=self.context_switches,
            cycles_base=self.cycles_base,
            cycles_i_stall=self.cycles_i_stall,
            cycles_d_stall=self.cycles_d_stall,
            cycles_migration=self.cycles_migration,
            cycles_tlb=self.cycles_tlb,
        )
        makespan = max(self.clock)
        if makespan:
            n_workers = len(self.worker_cores)
            result.utilization = self.busy_cycles / (n_workers * makespan)
        if self.agents is not None:
            result.broadcasts = sum(a.stats.broadcasts for a in self.agents)
            result.segment_match_migrations = sum(
                a.stats.segment_match_migrations for a in self.agents
            )
            result.idle_core_migrations = sum(
                a.stats.idle_core_migrations for a in self.agents
            )
            result.stay_decisions = sum(
                a.stats.stay_decisions for a in self.agents
            )
        if self._partition is not None:
            # Report the number of distinct type regions as "teams".
            regions = {cores for key, cores in self._partition.items() if key != -1}
            result.teams_completed = len(regions)
        if self.i_classifiers is not None:
            instructions = self.trace.total_instructions
            result.miss_class_mpki = {
                "instruction": self._class_mpki(self.i_classifiers, instructions),
                "data": self._class_mpki(self.d_classifiers, instructions),
            }
        return result

    @staticmethod
    def _class_mpki(
        classifiers: list[MissClassifier], instructions: int
    ) -> dict[str, float]:
        out = {}
        for miss_class in MissClass:
            total = sum(c.counts[miss_class] for c in classifiers)
            out[miss_class.value] = 1000.0 * total / instructions
        return out


def simulate(trace: Trace, config: Optional[SimConfig] = None, **kwargs) -> SimulationResult:
    """Convenience wrapper: build an engine, run it, return the result.

    ``kwargs`` are forwarded to :class:`SimConfig` when ``config`` is not
    given (e.g. ``simulate(trace, variant="slicc-sw")``).
    """
    if config is None:
        config = SimConfig(**kwargs)
    elif kwargs:
        raise ConfigurationError("pass either a SimConfig or kwargs, not both")
    return ReplayEngine(trace, config).run()
