"""Trace-replay simulation engine.

Replays a :class:`repro.workloads.trace.Trace` on a :class:`Machine`
under one *scheduling policy* (``SimConfig.variant`` names it). Policies
live in the :mod:`repro.sched` registry — the paper's seven variants:

======================  =====================================================
``base``                OS-style static scheduling, no migration (Section 5.1)
``nextline``            base + per-core next-line instruction prefetcher
``pif``                 base + the PIF upper-bound L1-I (512KB @ 32KB latency)
``slicc``               type-oblivious SLICC thread migration (Section 4.1)
``slicc-sw``            SLICC + software-provided types + teams (Section 4.3)
``slicc-pp``            SLICC + scout-core preamble type detection
``steps``               STEPS-style same-core time-multiplexing (Section 6)
======================  =====================================================

plus the scenario extensions (``tmi``, ``affinity``, ``random-migrate``
— see :mod:`repro.sched.extensions`). The engine owns the mechanism
(caches, queues, agents, the replay loop); the policy object declares
which machinery to build and makes the scheduling decisions, only at
quantum boundaries and scheduling events — the per-record hot path
stays policy-free (see DESIGN.md's policy-subsystem section).

Scheduling model: every core has a local cycle clock and a FIFO thread
queue; an event heap always advances the core that is earliest in time,
running its current thread for up to ``quantum`` records before
rescheduling. This quantum interleaving approximates the concurrency of
the paper's cycle-accurate Zesto runs while staying fast enough for
parameter sweeps (DESIGN.md section 3 discusses the substitution).

A thread runs on exactly one core at a time. Migration enqueues the
thread at the target core and charges it the Thread-Motion-style context
transfer cost (Section 4.4) when it next starts running.
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from dataclasses import dataclass, field
from typing import NamedTuple, Optional

from repro.cache.classify import MissClass, MissClassifier
from repro.cache.policies.base import ReplacementPolicy
from repro.cache.policies.lru import LruPolicy
from repro.core.agent import SliccAgent
from repro.core.scheduler import ThreadQueues
from repro.core.txn_types import PreambleTypeDetector
from repro.errors import ConfigurationError, SimulationError
from repro.params import SliccParams, SystemParams
from repro.prefetch.nextline import NextLinePrefetcher
from repro.sched import (
    STEPS_SWITCH_CYCLES,  # noqa: F401  (compat re-export; lives in sched)
    SchedulingPolicy,
    get_policy,
    has_policy,
    policy_names,
)
from repro.sim.machine import Machine
from repro.sim.results import SimulationResult
from repro.sim.timing import TimingModel
from repro.sim.tlb import PAGE_SHIFT
from repro.workloads.trace import KIND_INSTR, KIND_STORE, Trace

#: Deprecated: the paper's original seven variants, frozen here for
#: compatibility (golden grids, older callers). The authoritative —
#: growing — list is the policy registry: ``repro.sched.policy_names()``.
VARIANTS = (
    "base",
    "nextline",
    "pif",
    "slicc",
    "slicc-sw",
    "slicc-pp",
    "steps",
)

#: Deprecated: the paper's variants that migrate threads. Policy classes
#: now carry this as the ``migrates`` capability flag.
SLICC_VARIANTS = ("slicc", "slicc-sw", "slicc-pp")

#: Deprecated: the paper's variants that use team scheduling (the
#: ``team_scheduling`` policy flag, minus STEPS).
TEAM_VARIANTS = ("slicc-sw", "slicc-pp")

#: Cycles of L2 bandwidth charged per block shipped by the migration data
#: prefetcher (Section 5.5's mitigation experiment).
DATA_PREFETCH_CYCLES_PER_BLOCK = 2

#: One in this many bypassed misses installs anyway (gap self-repair; see
#: the segment-protection comment in ``_process_instruction``).
BYPASS_REPAIR_RATE = 8

#: MissClass members resolved once (the inline classifier path batches
#: per-class counts in locals and flushes through these keys).
_MC_COMPULSORY = MissClass.COMPULSORY
_MC_CAPACITY = MissClass.CAPACITY
_MC_CONFLICT = MissClass.CONFLICT


@dataclass(frozen=True)
class SimConfig:
    """Configuration of one simulation run."""

    variant: str = "base"
    system: SystemParams = field(default_factory=SystemParams)
    slicc: SliccParams = field(default_factory=SliccParams)
    quantum: int = 50
    collect_miss_classes: bool = False
    #: Cycles between successive thread arrivals. ``None`` derives a
    #: throughput-matched spacing (mean thread service time / cores) so
    #: the machine runs at steady state with threads at *different phases*
    #: of their transactions — the regime of the paper's 1K-task stream.
    #: 0 makes all threads available at cycle zero (synchronised start).
    arrival_spacing: Optional[int] = None
    #: Idle-core work stealing in SLICC variants (see
    #: :meth:`ReplayEngine._rebalance`). Exposed for the ablation bench.
    work_stealing: bool = True
    #: Minimum queue depth a victim core must have before an idle core
    #: steals from it. Higher values trade utilisation for segment
    #: stability (a stolen thread replicates its segment at the idle
    #: core, evicting whatever lived there).
    steal_min_depth: int = 3
    #: Reset the stolen-to core's MC so the stolen thread *replicates*
    #: the hot segment there (spreading queue load over two copies).
    #: False keeps the idle core's cache frozen: the stolen thread runs
    #: bypassed until a segment match pulls it back into the collective.
    #: The default False preserves assembled segments; the ablation bench
    #: quantifies both policies.
    steal_resets_mc: bool = False
    #: Migration data prefetcher (Section 5.5): ship the last n data
    #: block tags with a migrating thread. 0 disables (the default — the
    #: paper found the mitigation unhelpful; the bench reproduces that).
    data_prefetch_n: int = 0
    #: Model the banked NUCA L2's finite capacity and bank distances
    #: (Table 2) instead of the infinite-L2 approximation. Slower; only
    #: changes results when a workload's footprint pressures 16MB.
    model_l2_capacity: bool = False
    #: Replay kernel selection. ``"auto"`` (the default) resolves to the
    #: pure-python inline loop — on the paper's thrash-regime traces the
    #: vectorised batch kernel measures *slower* than the inline loop at
    #: the 50-record quantum (35-99.9% i-miss rates leave no hit bulk to
    #: vectorise; see the honest-result note in ``sim/batch.py``), so
    #: auto never silently regresses a run. ``"batch"`` opts into the
    #: batch kernel explicitly (raising on an ineligible config — see
    #: :meth:`ReplayEngine._batch_blockers` — or when numpy is missing
    #: or ``REPRO_NO_BATCH=1`` is set); ``"specialized"`` opts into the
    #: per-config generated kernel (``sim/specialize.py``; raising on an
    #: ineligible config — see :meth:`ReplayEngine._specialize_blockers`
    #: — or when ``REPRO_NO_SPECIALIZE=1`` is set); ``"inline"`` forces
    #: the inline loop; ``"fallback"`` routes every record through the
    #: generic ``_process_instruction`` / ``_process_data`` reference
    #: path. ``REPRO_KERNEL=<name>`` re-resolves ``"auto"`` fleet-wide
    #: (falling back silently to inline on ineligible configs). All
    #: kernels are byte-identical; the choice never affects results (and
    #: is excluded from experiment store keys — see ``exp/spec.py``).
    kernel: str = "auto"

    def __post_init__(self) -> None:
        if not has_policy(self.variant):
            raise ConfigurationError(
                f"unknown variant {self.variant!r}; known: {policy_names()}"
            )
        if self.quantum <= 0:
            raise ConfigurationError("quantum must be positive")
        if self.kernel not in (
            "auto", "batch", "specialized", "inline", "fallback"
        ):
            raise ConfigurationError(
                f"unknown kernel {self.kernel!r}; "
                "expected auto, batch, specialized, inline or fallback"
            )


class _ThreadState:
    """Mutable replay position of one thread.

    ``addr``/``kind``/``page`` are plain-list renderings of the trace
    arrays (page ids precomputed), bound at admission from the cache on
    the thread trace (:meth:`ThreadTrace.replay_tables`): indexing a
    Python list yields cached small ints where indexing a numpy array
    allocates a numpy scalar that must then be unboxed — a large
    per-record cost in the replay loop — and the tables are shared
    read-only across every simulation of the same trace.
    """

    __slots__ = ("trace", "pos", "pending_cycles", "done", "addr", "kind", "page")

    def __init__(self, trace) -> None:
        self.trace = trace
        self.pos = 0
        self.pending_cycles = 0
        self.done = False
        self.addr: Optional[list[int]] = None
        self.kind: Optional[list[int]] = None
        self.page: Optional[list[int]] = None


class _CoreHot(NamedTuple):
    """Per-core references the replay loop touches, resolved once.

    run() unpacks this positionally per dispatch; the field order here is
    the single source of truth (construction in ``_build_core_hot`` uses
    keywords, so only the unpack in run() must mirror this order).
    """

    l1i_index: list
    l1i_tags: list
    l1i_set_mask: int
    l1i_assoc: int
    l1i_stats: object
    l1i_is_lru: bool
    l1i_on_hit: object
    l1i_need_on_miss: bool
    l1i_on_miss: object
    l1i_on_fill: object
    l1i_choose_victim: object
    l1i_on_evict: object
    l1i_evict_is_sig: bool
    l1i_ages: Optional[list]
    l1i_hi: Optional[list]
    itlb: object
    itlb_map: object
    itlb_entries: int
    l1d_index: list
    l1d_tags: list
    l1d_set_mask: int
    l1d_assoc: int
    l1d_stats: object
    l1d_is_lru: bool
    l1d_on_hit: object
    l1d_need_on_miss: bool
    l1d_on_miss: object
    l1d_on_fill: object
    l1d_choose_victim: object
    l1d_on_evict: object
    l1d_evict_is_dir: bool
    l1d_ages: Optional[list]
    l1d_hi: Optional[list]
    dtlb: object
    dtlb_map: object
    dtlb_entries: int
    sig_masks: Optional[list]
    sig_imask: int
    sig_bit: int
    presence_excl: int
    slicc_agent: Optional[SliccAgent]
    steps_agent: Optional[SliccAgent]
    mc: object
    mc_limit: int
    msv: object
    msv_bits: object
    msv_window: int
    msv_dilution: int
    mtq_entries: object
    mtq_matched: int
    pf: Optional[NextLinePrefetcher]
    pf_pending: Optional[set]
    i_cls: Optional[MissClassifier]
    icls_shadow: object
    icls_seen: Optional[set]
    icls_cap: int
    d_cls: Optional[MissClassifier]
    dcls_shadow: object
    dcls_seen: Optional[set]
    dcls_cap: int
    nuca_ipen: Optional[list]


class ReplayEngine:
    """Replays one trace under one configuration. Single-use."""

    def __init__(self, trace: Trace, config: SimConfig) -> None:
        self.trace = trace
        self.config = config
        system = config.system
        self.timing_base = system

        variant = config.variant
        # The policy object carries all variant-specific capability flags
        # and decisions; the engine attributes below mirror its flags so
        # the construction and hot-loop code reads the same as before.
        policy_cls = get_policy(variant)
        self.policy: SchedulingPolicy = policy_cls(config)
        self.is_slicc = self.policy.slicc_machinery
        # STEPS (Section 6): time-multiplex similar threads on one core,
        # context-switching when the running thread leaves the cached
        # chunk (dilution), instead of migrating between cores.
        self.is_steps = self.policy.time_multiplexes

        l1i_params = policy_cls.l1i_params(system)
        self.machine = Machine(
            system,
            slicc=config.slicc if self.is_slicc else None,
            l1i_params=l1i_params,
            with_signatures=self.is_slicc,
            model_l2_capacity=config.model_l2_capacity,
        )
        self.timing = TimingModel(system, self.machine.l1i_params.hit_latency)

        n = system.n_cores
        # SLICC-Pp dedicates the last core to preamble scouting.
        if self.policy.scout_core:
            self.worker_cores = list(range(n - 1))
        else:
            self.worker_cores = list(range(n))
        self._worker_set = frozenset(self.worker_cores)
        #: Worker cores as a bitmask (the fused presence-probe operand).
        self._worker_mask = sum(1 << c for c in self.worker_cores)

        self.queues = ThreadQueues(n)
        self.agents: Optional[list[SliccAgent]] = None
        if self.is_slicc:
            self.agents = [
                SliccAgent(core, config.slicc, n) for core in range(n)
            ]
        self.steps_agents: Optional[list[SliccAgent]] = None
        if self.is_steps:
            # STEPS reuses the MSV dilution detector per core, nothing
            # else of the SLICC machinery.
            self.steps_agents = [
                SliccAgent(core, config.slicc, n) for core in range(n)
            ]

        self.data_prefetcher = None
        if config.data_prefetch_n > 0 and self.policy.migrates:
            from repro.prefetch.migration_data import MigrationDataPrefetcher

            self.data_prefetcher = MigrationDataPrefetcher(
                config.data_prefetch_n
            )

        # Type-aware scheduling (SLICC-SW / SLICC-Pp): partition the
        # worker cores among transaction types proportionally to their
        # share of the thread mix, so same-type threads co-schedule on the
        # same caches and pipeline (Section 4.3.2's teams, realised as a
        # static partition — robust under any arrival pattern, whereas
        # dynamic team formation needs a deep standing pool to group
        # from). Types too small to earn 2 cores pool into a shared
        # region and behave like the paper's stray threads.
        self.type_source = self.policy.make_type_source()
        self._partition: Optional[dict[int, frozenset[int]]] = None
        self._thread_type_key: dict[int, int] = {}
        if self.type_source is not None:
            counts: dict[int, int] = {}
            for thread in trace.threads:
                key = self.type_source.type_of(thread)
                self._thread_type_key[thread.thread_id] = key
                counts[key] = counts.get(key, 0) + 1
            self._partition = self._build_partition(counts)

        # Sorted-tuple mirror of each partition region, precomputed so
        # placement does not re-sort the allowed frozenset per thread.
        self._worker_sorted = tuple(self.worker_cores)
        self._partition_sorted: Optional[dict[int, tuple[int, ...]]] = None
        if self._partition is not None:
            self._partition_sorted = {
                key: tuple(sorted(cores))
                for key, cores in self._partition.items()
            }

        self.prefetchers: Optional[list[NextLinePrefetcher]] = None
        if self.policy.nextline_prefetch:
            self.prefetchers = []
            for core in range(n):
                pf = NextLinePrefetcher(self.machine.l1i[core])
                self.machine.l1i[core].on_evict = pf.on_evict
                self.prefetchers.append(pf)

        self.i_classifiers: Optional[list[MissClassifier]] = None
        self.d_classifiers: Optional[list[MissClassifier]] = None
        if config.collect_miss_classes:
            self.i_classifiers = [
                MissClassifier(self.machine.l1i_params.n_blocks)
                for _ in range(n)
            ]
            self.d_classifiers = [
                MissClassifier(system.l1d.n_blocks) for _ in range(n)
            ]

        # Banked-NUCA flat state (PR 3): per-bank hot tuples shared by
        # all cores, a per-core instruction-miss penalty table (bank
        # latency plus the front-end refill), and batched bank
        # statistics run() flushes once when the loop ends.
        self._nuca_hot: Optional[list[tuple]] = None
        self._nuca_i_pen: Optional[list[list[int]]] = None
        self._nuca_acc: Optional[list[int]] = None
        self._nuca_miss: Optional[list[int]] = None
        self._nuca_ev: Optional[list[int]] = None
        if self.machine.nuca is not None:
            nuca = self.machine.nuca
            refill = system.frontend_refill_cycles
            self._nuca_hot = nuca.hot_banks()
            self._nuca_i_pen = [
                [lat + refill for lat in nuca.latency_table(core)]
                for core in range(n)
            ]
            self._nuca_acc = [0] * nuca.n_banks
            self._nuca_miss = [0] * nuca.n_banks
            self._nuca_ev = [0] * nuca.n_banks

        # Fast-path coverage: since PR 3 every configuration takes the
        # inlined record handling in run() — the next-line prefetcher,
        # the miss classifiers, the migration data prefetcher and the
        # banked NUCA L2 all expose flat hot state the loop drives
        # directly with plain ints and batched counter flushes. The
        # generic _process_instruction/_process_data methods are kept as
        # the reference implementation: the golden suite pins both, and
        # tests force these flags off to replay a config through the
        # reference path and compare byte-for-byte.
        self._fast_i = True
        self._fast_d = True

        # Thread / core state.
        self.threads = [_ThreadState(t) for t in trace.threads]
        self.running: list[Optional[int]] = [None] * n
        self.clock = [0] * n
        self._heap: list[tuple[int, int, int]] = []
        self._in_heap = [False] * n
        self._seq = 0
        self._arrival_ptr = 0
        self._resident = 0
        # SLICC manages a 2N pool (Section 5.1); STEPS also needs peers
        # queued per core to multiplex between.
        pool_factor = (
            config.slicc.thread_pool_factor
            if (self.policy.migrates or self.is_steps)
            else 1
        )
        self.pool_size = pool_factor * len(self.worker_cores)

        spacing = config.arrival_spacing
        if spacing is None:
            # Throughput-matched arrival rate: one thread per (mean thread
            # service time / worker count), using the base cycle cost as
            # the service-time proxy.
            mean_records = trace.total_records / len(trace.threads)
            spacing = int(
                mean_records
                * system.base_cycles_per_iblock
                / max(1, len(self.worker_cores))
            )
        self._arrival_time = [spacing * i for i in range(len(self.threads))]

        # Work-stealing knobs, resolved once (the _rebalance early-out
        # runs on every migration and completion).
        self._steal_enabled = self.policy.migrates and config.work_stealing
        self._steal_min_depth = config.steal_min_depth
        self._steal_resets_mc = config.steal_resets_mc

        # Statistics.
        self.migrations = 0
        self.context_switches = 0
        self.steals = 0
        self.completed = 0
        self._bypass_tick = 0
        self.busy_cycles = 0
        self.cycles_base = 0
        self.cycles_i_stall = 0
        self.cycles_d_stall = 0
        self.cycles_migration = 0
        self.cycles_tlb = 0
        self._ran = False

        # Per-core tuples of every reference the replay loop touches,
        # resolved once here (after all cache/prefetcher/signature
        # wiring) so each dispatch is a single tuple unpack instead of
        # dozens of attribute chains. Everything inside is stable for
        # the lifetime of the run: policies, stat blocks, TLB maps and
        # tracker objects are mutated in place, never rebound.
        self._core_hot = [self._build_core_hot(core) for core in range(n)]

        # Policy attachment: the policy allocates its per-run state
        # against the fully built machine, and its decision entry points
        # are bound as engine attributes so the replay loop dispatches
        # through one bound-method call exactly as before the extraction.
        policy = self.policy
        policy.bind(self)
        self._evaluate_migration = policy.evaluate_migration
        self._steps_switch = policy.context_switch
        policy_type = type(policy)
        self._policy_on_start = (
            policy_type.on_thread_start
            is not SchedulingPolicy.on_thread_start
        )
        self._policy_on_complete = (
            policy_type.on_complete is not SchedulingPolicy.on_complete
        )
        self._policy_quantum_hook = policy.quantum_hook

        # Kernel selection (PR 6): batch (vectorised quantum passes) vs
        # inline (the PR 2/3 per-record loop) vs fallback (the generic
        # reference methods). All three are byte-identical — the golden
        # suite pins it; the choice is pure performance.
        self.kernel = self._select_kernel()
        self._batch = None
        self._specialized = None
        if self.kernel == "batch":
            from repro.sim.batch import BatchKernel

            self._batch = BatchKernel(self)
        elif self.kernel == "specialized":
            from repro.sim.specialize import kernel_for_engine

            self._specialized = kernel_for_engine(self)
        elif self.kernel == "fallback":
            self._fast_i = False
            self._fast_d = False

    def _batch_blockers(self) -> list[str]:
        """Why this configuration cannot use the batch kernel (empty
        when eligible).

        The batch kernel mirrors exactly the machinery of the standard
        fast path — LRU L1s, TLBs, bloom signatures, the coherence
        directory and the SLICC/STEPS trackers. Features with their own
        per-record inline state stay on the inline loop, as does any
        policy that clears the ``batch_kernel_safe`` capability flag.
        """
        reasons = []
        if not self.policy.batch_kernel_safe:
            reasons.append(
                f"policy {self.policy.name!r} clears batch_kernel_safe"
            )
        if self.prefetchers is not None:
            reasons.append("next-line prefetcher")
        if self.i_classifiers is not None:
            reasons.append("miss classifiers")
        if self.machine.nuca is not None:
            reasons.append("banked NUCA L2")
        if self.data_prefetcher is not None:
            reasons.append("migration data prefetcher")
        if self.machine.l1i[0].policy.__class__ is not LruPolicy:
            reasons.append("non-LRU L1-I policy")
        if self.machine.l1d[0].policy.__class__ is not LruPolicy:
            reasons.append("non-LRU L1-D policy")
        return reasons

    def _specialize_blockers(self) -> list[str]:
        """Why this configuration cannot use the specialized kernel
        (empty when eligible).

        The generator (``repro.sim.specialize``) emits the inline loop
        with only the age-counter LRU replacement arms — prefetchers,
        classifiers, the banked NUCA L2 and the data prefetcher are all
        generatable, so unlike the batch kernel none of them block. A
        policy that clears the ``specialize_safe`` capability flag stays
        on the inline loop (its hooks may violate the generated tail's
        folded assumptions — see ``sched/base.py``).
        """
        reasons = []
        if not self.policy.specialize_safe:
            reasons.append(
                f"policy {self.policy.name!r} clears specialize_safe"
            )
        if self.machine.l1i[0].policy.__class__ is not LruPolicy:
            reasons.append("non-LRU L1-I policy")
        if self.machine.l1d[0].policy.__class__ is not LruPolicy:
            reasons.append("non-LRU L1-D policy")
        return reasons

    def _select_kernel(self) -> str:
        """Resolve ``config.kernel`` to the kernel this run will use.

        ``auto`` resolves to ``inline``: both alternative kernels are
        explicit opt-ins because neither beats the inline loop on the
        paper's thrash-regime traces (batch *loses* — the measured
        negative result in ``sim/batch.py``; specialized is a modest
        win that stays under the roadmap bar — see ``sim/specialize.py``
        and BENCH_10.json). ``REPRO_KERNEL=<name>`` re-resolves ``auto``
        fleet-wide (CI runs the golden suite this way), falling back
        *silently* to inline when the named kernel cannot run this
        config — a fleet override must not break ineligible configs. An
        explicit per-config ``batch``/``specialized`` request, by
        contrast, is validated loudly: ineligible configuration, missing
        numpy or a ``REPRO_NO_BATCH=1`` / ``REPRO_NO_SPECIALIZE=1`` veto
        each raise rather than silently running a different kernel than
        the caller asked for.
        """
        requested = self.config.kernel
        if requested == "auto":
            env = os.environ.get("REPRO_KERNEL", "").strip()
            if not env or env == "auto":
                return "inline"
            if env == "batch":
                from repro.sim.batch import numpy_available

                if (
                    os.environ.get("REPRO_NO_BATCH")
                    or not numpy_available()
                    or self._batch_blockers()
                ):
                    return "inline"
                return "batch"
            if env == "specialized":
                if (
                    os.environ.get("REPRO_NO_SPECIALIZE")
                    or self._specialize_blockers()
                ):
                    return "inline"
                return "specialized"
            if env in ("inline", "fallback"):
                return env
            raise ConfigurationError(
                f"unknown REPRO_KERNEL {env!r}; "
                "expected auto, batch, specialized, inline or fallback"
            )
        if requested in ("fallback", "inline"):
            return requested
        if requested == "specialized":
            if os.environ.get("REPRO_NO_SPECIALIZE"):
                raise ConfigurationError(
                    "kernel='specialized' requested but "
                    "REPRO_NO_SPECIALIZE is set"
                )
            blockers = self._specialize_blockers()
            if blockers:
                raise ConfigurationError(
                    "kernel='specialized' requested but the configuration "
                    "is ineligible: " + "; ".join(blockers)
                )
            return "specialized"
        from repro.sim.batch import numpy_available

        if os.environ.get("REPRO_NO_BATCH"):
            raise ConfigurationError(
                "kernel='batch' requested but REPRO_NO_BATCH is set"
            )
        if not numpy_available():
            raise ConfigurationError(
                "kernel='batch' requested but numpy is unavailable"
            )
        blockers = self._batch_blockers()
        if blockers:
            raise ConfigurationError(
                "kernel='batch' requested but the configuration is "
                "ineligible: " + "; ".join(blockers)
            )
        return "batch"

    def _build_core_hot(self, core: int) -> "_CoreHot":
        machine = self.machine
        l1i = machine.l1i[core]
        l1i_policy = l1i.policy
        l1i_is_lru = l1i_policy.__class__ is LruPolicy
        l1d = machine.l1d[core]
        l1d_policy = l1d.policy
        l1d_is_lru = l1d_policy.__class__ is LruPolicy
        itlb = machine.itlb[core]
        dtlb = machine.dtlb[core]
        sig_set = machine.signature_set
        if sig_set is not None:
            sig_masks = sig_set.masks
            sig_imask = machine._sig_index_mask
            sig_bit = 1 << core
            presence_excl = self._worker_mask & ~(1 << core)
        else:
            sig_masks = None
            sig_imask = sig_bit = presence_excl = 0
        slicc_agent = self.agents[core] if self.agents is not None else None
        steps_agent = (
            self.steps_agents[core] if self.steps_agents is not None else None
        )
        track = slicc_agent if slicc_agent is not None else steps_agent
        if track is not None:
            mc = track.mc
            mc_limit = mc.fill_up_t
            msv = track.msv
            msv_bits = msv._bits
            msv_window = msv.window
            msv_dilution = msv.dilution_t
        else:
            mc = msv = msv_bits = None
            mc_limit = msv_window = msv_dilution = 0
        if slicc_agent is not None:
            mtq_entries = slicc_agent.mtq._entries
            mtq_matched = slicc_agent.mtq.matched_t
        else:
            mtq_entries = None
            mtq_matched = 0
        pf = self.prefetchers[core] if self.prefetchers is not None else None
        i_cls = (
            self.i_classifiers[core] if self.i_classifiers is not None else None
        )
        d_cls = (
            self.d_classifiers[core] if self.d_classifiers is not None else None
        )
        return _CoreHot(
            l1i_index=l1i._index,
            l1i_tags=l1i._tags,
            l1i_set_mask=l1i._set_mask,
            l1i_assoc=l1i.assoc,
            l1i_stats=l1i.stats,
            l1i_is_lru=l1i_is_lru,
            l1i_on_hit=l1i_policy.on_hit,
            l1i_need_on_miss=(
                type(l1i_policy).on_miss is not ReplacementPolicy.on_miss
            ),
            l1i_on_miss=l1i_policy.on_miss,
            l1i_on_fill=l1i_policy.on_fill,
            l1i_choose_victim=l1i_policy.choose_victim,
            l1i_on_evict=l1i.on_evict,
            l1i_evict_is_sig=(
                machine.signatures is not None
                and l1i.on_evict == machine.signatures[core].on_evict
            ),
            l1i_ages=l1i_policy._age if l1i_is_lru else None,
            l1i_hi=l1i_policy._hi if l1i_is_lru else None,
            itlb=itlb,
            itlb_map=itlb._map,
            itlb_entries=itlb.entries,
            l1d_index=l1d._index,
            l1d_tags=l1d._tags,
            l1d_set_mask=l1d._set_mask,
            l1d_assoc=l1d.assoc,
            l1d_stats=l1d.stats,
            l1d_is_lru=l1d_is_lru,
            l1d_on_hit=l1d_policy.on_hit,
            l1d_need_on_miss=(
                type(l1d_policy).on_miss is not ReplacementPolicy.on_miss
            ),
            l1d_on_miss=l1d_policy.on_miss,
            l1d_on_fill=l1d_policy.on_fill,
            l1d_choose_victim=l1d_policy.choose_victim,
            l1d_on_evict=l1d.on_evict,
            l1d_evict_is_dir=(
                getattr(l1d.on_evict, "func", None)
                == machine.directory.on_evict
            ),
            l1d_ages=l1d_policy._age if l1d_is_lru else None,
            l1d_hi=l1d_policy._hi if l1d_is_lru else None,
            dtlb=dtlb,
            dtlb_map=dtlb._map,
            dtlb_entries=dtlb.entries,
            sig_masks=sig_masks,
            sig_imask=sig_imask,
            sig_bit=sig_bit,
            presence_excl=presence_excl,
            slicc_agent=slicc_agent,
            steps_agent=steps_agent,
            mc=mc,
            mc_limit=mc_limit,
            msv=msv,
            msv_bits=msv_bits,
            msv_window=msv_window,
            msv_dilution=msv_dilution,
            mtq_entries=mtq_entries,
            mtq_matched=mtq_matched,
            pf=pf,
            pf_pending=pf._pending if pf is not None else None,
            i_cls=i_cls,
            icls_shadow=i_cls._shadow if i_cls is not None else None,
            icls_seen=i_cls._seen if i_cls is not None else None,
            icls_cap=i_cls.capacity_blocks if i_cls is not None else 0,
            d_cls=d_cls,
            dcls_shadow=d_cls._shadow if d_cls is not None else None,
            dcls_seen=d_cls._seen if d_cls is not None else None,
            dcls_cap=d_cls.capacity_blocks if d_cls is not None else 0,
            nuca_ipen=(
                self._nuca_i_pen[core] if self._nuca_i_pen is not None else None
            ),
        )

    # ------------------------------------------------------------------
    # Heap / activation helpers
    # ------------------------------------------------------------------

    def _build_partition(
        self, counts: dict[int, int]
    ) -> dict[int, frozenset[int]]:
        """Split the worker cores among types by thread-count share.

        Types earning fewer than 2 cores pool into a shared region
        (key ``-1``) alongside any leftover cores — their threads are the
        equivalent of the paper's strays.
        """
        workers = list(self.worker_cores)
        total = max(1, sum(counts.values()))
        n = len(workers)
        ordered = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        small_keys = [k for k, c in ordered if round(n * c / total) < 2]
        # Reserve a pool region when small types exist.
        reserve = 2 if small_keys else 0
        assignment: dict[int, frozenset[int]] = {}
        cursor = 0
        for key, count in ordered:
            if key in small_keys:
                continue
            want = round(n * count / total)
            avail = n - reserve - cursor
            take = min(want, avail)
            if take < 2:
                small_keys.append(key)
                continue
            assignment[key] = frozenset(workers[cursor : cursor + take])
            cursor += take
        pool = frozenset(workers[cursor:])
        if pool:
            for key in small_keys:
                assignment[key] = pool
            assignment[-1] = pool
        else:
            # Everything assigned exactly: strays roam the whole chip.
            for key in small_keys:
                assignment[key] = frozenset(workers)
            assignment[-1] = frozenset(workers)
        return assignment

    def _allowed_for(self, thread_id: int) -> frozenset[int]:
        """Cores a thread may be placed on / migrate to."""
        if self._partition is None:
            return self._worker_set
        key = self._thread_type_key.get(thread_id, -1)
        return self._partition.get(key, self._worker_set)

    def _activate(self, core: int, at_cycle: int) -> None:
        """Ensure a core with work is in the event heap."""
        if self._in_heap[core]:
            return
        self.clock[core] = max(self.clock[core], at_cycle)
        self._seq += 1
        heapq.heappush(self._heap, (self.clock[core], self._seq, core))
        self._in_heap[core] = True

    def _idle_cores(self) -> list[int]:
        """Worker cores with nothing running and nothing queued."""
        running = self.running
        queues = self.queues._queues
        return [
            c
            for c in self.worker_cores
            if running[c] is None and not queues[c]
        ]

    def _rebalance(self, now: int) -> None:
        """Idle-core work stealing (migrating policies only — the SLICC
        variants plus the tmi/random-migrate extensions).

        Same-type threads chase the same segment sequence, so they pile
        up in the queue of whichever core holds the next segment while
        other cores run dry. An idle core adopting the *tail* of the
        deepest compatible queue keeps utilisation up; the
        ``steal_resets_mc`` knob controls whether the stolen-to core
        also unfreezes its fill path (see :class:`SimConfig` — this
        engine deliberately does *not* reset the MC on queue drain, so
        by default assembled segments survive steals).
        This implements the paper's stated scheduler goal of maximising
        core utilisation and reducing queuing delay (Section 4.3.2).
        """
        if not self._steal_enabled:
            return
        idle = self._idle_cores()
        if not idle:
            return
        for victim in self.queues.deepest_cores(
            min_depth=self._steal_min_depth
        ):
            if not idle:
                break
            thread_id = self.queues.steal_tail(victim)
            if thread_id is None:
                continue
            allowed = self._allowed_for(thread_id)
            target = next((c for c in idle if c in allowed), None)
            if target is None:
                # No compatible idle core; put the thread back.
                self.queues.enqueue(victim, thread_id)
                continue
            idle.remove(target)
            self.steals += 1
            if self._steal_resets_mc:
                # The stealing core adopts (replicates) the stolen
                # thread's segment — each policy resets its own fill
                # tracker (the SLICC agents' MC, or policy-local state).
                self.policy.on_steal(target)
            self.queues.enqueue(target, thread_id)
            self._activate(target, now)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def _admit_threads(self, now: int) -> None:
        """Pull threads from the arrival stream into the resident pool.

        A thread is admitted once it has arrived (its arrival time is due)
        and the pool has room (N threads for the baseline's OS scheduler,
        2N for SLICC — Section 5.1).
        """
        while (
            self._arrival_ptr < len(self.threads)
            and self._arrival_time[self._arrival_ptr] <= now
            and self._resident < self.pool_size
        ):
            thread_id = self._arrival_ptr
            self._arrival_ptr += 1
            self._resident += 1
            state = self.threads[thread_id]
            if state.addr is None:
                # Bind the shared numpy -> list tables (see _ThreadState).
                state.addr, state.kind, state.page = (
                    state.trace.replay_tables(PAGE_SHIFT)
                )
            if isinstance(self.type_source, PreambleTypeDetector):
                # Scout-core preprocessing: a few tens of instructions on
                # the dedicated core before the thread starts working.
                state.pending_cycles += (
                    self.type_source.scout_records * self.timing.ibase
                )
            core = self._place_core(thread_id)
            self.queues.enqueue(core, thread_id)
            self._activate(core, now)

    def _place_core(self, thread_id: int) -> int:
        """Naive load balancing within the thread's allowed region:
        idle core first, else shortest queue (Section 4.1)."""
        allowed = self._allowed_for(thread_id)
        idle = [c for c in self._idle_cores() if c in allowed]
        if idle:
            return idle[0]
        if self._partition_sorted is None:
            region = self._worker_sorted
        else:
            key = self._thread_type_key.get(thread_id, -1)
            region = self._partition_sorted.get(key, self._worker_sorted)
        return self.queues.least_congested(allowed=region)

    # ------------------------------------------------------------------
    # Record processing
    # ------------------------------------------------------------------

    def _process_instruction(self, core: int, block: int) -> tuple[int, bool]:
        """One instruction-block record; returns (cycles, migrate_checked).

        The second element is True when SLICC decided to migrate — the
        caller must stop the quantum and perform the migration (the
        decision is stored in ``self._pending_target``).

        The TLB has already been consulted by the caller (run() handles
        it inline for every record); this path owns everything from the
        L1 down. It is the generic fallback — run() short-circuits the
        common configurations inline with identical semantics.
        """
        machine = self.machine
        timing = self.timing
        cycles = timing.ibase
        self.cycles_base += timing.ibase

        # Segment protection: once this core's cache is full of a useful
        # segment (MC saturated), demand misses mostly bypass the fill
        # path so a thread streaming towards a *different* segment cannot
        # erode the collective other threads rely on. One in
        # BYPASS_REPAIR_RATE bypassed misses still installs: the blocks a
        # thread misses during its migration-decision window ("gaps" in
        # the paper's terms, Section 4.2.2) would otherwise be cached
        # nowhere and re-missed by every pass; the occasional install
        # accretes them onto the core where the gap occurs, repairing the
        # seam. Installs resume fully after the MC resets (queue drained,
        # STAY decision, or team completion).
        fill = True
        if self.agents is not None and self.agents[core].cache_full:
            self._bypass_tick += 1
            fill = self._bypass_tick % BYPASS_REPAIR_RATE == 0
        hit = machine.l1i[core].access_fast(block, fill=fill)
        if self.i_classifiers is not None:
            self.i_classifiers[core].observe(block, hit)

        if hit:
            if self.prefetchers is not None and self.prefetchers[
                core
            ].consume_if_prefetched(block):
                late = timing.prefetch_late(True)
                cycles += late
                self.cycles_i_stall += late
        else:
            if machine.nuca is not None:
                l2_hit, l2_cycles = machine.nuca.access(core, block)
                penalty = (
                    l2_cycles + timing.system.frontend_refill_cycles
                    if l2_hit
                    else timing.i_miss(False)
                )
            else:
                penalty = timing.i_miss(machine.l2_touch(block))
            cycles += penalty
            self.cycles_i_stall += penalty
            if fill:
                machine.signature_insert(core, block)
            if self.prefetchers is not None:
                prefetched = self.prefetchers[core].on_demand_miss(block)
                if prefetched is not None:
                    machine.l2_touch(prefetched)

        if self.steps_agents is not None:
            agent = self.steps_agents[core]
            agent.observe_access(hit)
            if not agent.cache_full:
                return cycles, False
            if (
                not hit
                and agent.msv.dilution_reached
                and not self.queues.is_empty(core)
            ):
                # The running thread left the cached chunk and peers are
                # waiting: context switch (STEPS time-multiplexing).
                self._pending_target = -1
                return cycles, True
            return cycles, False

        if self.agents is None:
            return cycles, False

        agent = self.agents[core]
        gather = agent.observe_access(hit)
        if gather:
            mask = machine.presence_mask(block, core, self._worker_mask)
            agent.note_miss_presence(mask)
            if agent.migration_enabled and self._evaluate_migration(
                core, agent
            ):
                return cycles, True
        return cycles, False

    def _process_data(self, core: int, block: int, is_store: bool) -> int:
        """One data record; returns cycles charged.

        As with :meth:`_process_instruction`, the TLB was already
        handled by the caller.
        """
        machine = self.machine
        timing = self.timing
        cycles = timing.dbase
        self.cycles_base += timing.dbase

        if self.data_prefetcher is not None:
            thread_id = self.running[core]
            self.data_prefetcher.record_access(thread_id, block)
            if not machine.l1d[core].probe(block):
                self.data_prefetcher.note_demand(thread_id, block)
        hit = machine.l1d[core].access_fast(block)
        if self.d_classifiers is not None:
            self.d_classifiers[core].observe(block, hit)
        if not hit:
            if machine.nuca is not None:
                l2_hit, _ = machine.nuca.access(core, block)
                penalty = timing.d_miss(l2_hit, is_store)
            else:
                penalty = timing.d_miss(machine.l2_touch(block), is_store)
            cycles += penalty
            self.cycles_d_stall += penalty
        if is_store:
            machine.directory.on_write(core, block)
        elif not hit:
            machine.directory.on_read(core, block)
        return cycles

    # ------------------------------------------------------------------
    # Migration / completion
    # ------------------------------------------------------------------

    def _migrate(self, core: int, target: int) -> None:
        """Move the running thread of ``core`` to ``target``'s queue."""
        thread_id = self.running[core]
        if thread_id is None:
            raise SimulationError("migration from a core with no thread")
        state = self.threads[thread_id]
        hops = self.machine.torus.hops(core, target)
        cost = self.timing.migration(hops)
        if self.data_prefetcher is not None:
            # Ship the last-n data tags to the target L1-D (Section 5.5).
            blocks = self.data_prefetcher.blocks_for_migration(thread_id)
            for block in blocks:
                self.machine.l1d[target].install(block)
                self.machine.directory.on_read(target, block)
            cost += DATA_PREFETCH_CYCLES_PER_BLOCK * len(blocks)
        state.pending_cycles += cost
        self.cycles_migration += cost
        self.running[core] = None
        self.policy.on_migrate(core, target)
        self.migrations += 1
        self.queues.enqueue(target, thread_id)
        self._activate(target, self.clock[core])
        self._rebalance(self.clock[core])

    def _complete(self, core: int, now: int) -> None:
        """The running thread of ``core`` finished all its records."""
        thread_id = self.running[core]
        state = self.threads[thread_id]
        state.done = True
        self.running[core] = None
        self.completed += 1
        self._resident -= 1
        if self._policy_on_complete:
            self.policy.on_complete(core)
        self._admit_threads(now)
        self._rebalance(now)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the full trace; returns aggregated results."""
        if self._ran:
            raise SimulationError("ReplayEngine instances are single-use")
        self._ran = True
        self._pending_target: Optional[int] = None
        self._admit_threads(now=0)

        if self._specialized is not None:
            # Specialized kernel (PR 10): the whole main loop runs as a
            # per-config generated function (repro.sim.specialize) —
            # only admission above and collection below are shared.
            self._specialized(self)
            if self.completed != len(self.threads):
                raise SimulationError(
                    f"run ended with {self.completed}/{len(self.threads)} "
                    "threads completed — scheduler deadlock"
                )
            return self._collect_results()

        quantum = self.config.quantum
        machine = self.machine
        timing = self.timing
        ibase = timing.ibase
        dbase = timing.dbase
        fast_i = self._fast_i
        fast_d = self._fast_d
        process_instruction = self._process_instruction
        process_data = self._process_data
        directory_on_write = machine.directory.on_write
        dir_sharers = machine.directory._sharers
        queues_is_empty = self.queues.is_empty
        l2_seen = machine._l2_seen
        itlb_pen = timing.itlb_miss
        dtlb_pen = timing.dtlb_miss
        i_miss_l2 = timing.i_miss_l2
        i_miss_mem = timing.i_miss_mem
        d_load_l2 = timing.d_load_l2
        d_load_mem = timing.d_load_mem
        d_store_l2 = timing.d_store_l2
        d_store_mem = timing.d_store_mem
        #: Late-prefetch residual: the fallback always charges the L2
        #: flavour (prefetches are only consumed after their trigger miss
        #: brought the line on chip), so this is one constant.
        pf_late = timing.prefetch_late(True)
        dp = self.data_prefetcher
        nuca_hot = self._nuca_hot
        nuca_acc = self._nuca_acc
        nuca_miss_ct = self._nuca_miss
        nuca_ev = self._nuca_ev
        n_banks = machine.nuca.n_banks if machine.nuca is not None else 0
        core_hot = self._core_hot
        # Policy hooks, resolved once: zero per-quantum overhead for
        # policies without them (the legacy seven), one bound-method call
        # per scheduling event for those with them. Nothing here is ever
        # consulted per record.
        policy_on_start = self._policy_on_start
        policy_on_thread_start = self.policy.on_thread_start
        policy_quantum = self._policy_quantum_hook
        policy_quantum_end = self.policy.quantum_end
        KI = KIND_INSTR
        KS = KIND_STORE
        batch_dispatch = (
            self._batch.dispatch if self._batch is not None else None
        )
        heappop = heapq.heappop
        heap = self._heap
        in_heap = self._in_heap
        clocks = self.clock
        threads = self.threads
        n_threads = len(threads)
        arrival_time = self._arrival_time
        running = self.running
        while True:
            if not heap:
                if self._arrival_ptr >= n_threads:
                    break
                # All admitted work finished before the next arrival: jump
                # time forward to the arrival and admit it.
                now = max(
                    max(clocks),
                    arrival_time[self._arrival_ptr],
                )
                self._admit_threads(now)
                if not heap:
                    raise SimulationError(
                        "no core activated by a due arrival — pool stuck"
                    )
                continue
            clock, _, core = heappop(heap)
            in_heap[core] = False
            clock = clocks[core] = max(clock, clocks[core])
            if (
                self._arrival_ptr < n_threads
                and arrival_time[self._arrival_ptr] <= clock
            ):
                self._admit_threads(clock)

            if running[core] is None:
                thread_id = self.queues.dequeue(core)
                if thread_id is None:
                    # Note: the paper resets the MC when a queue drains
                    # (Section 4.1). With the segment-protection bypass
                    # that reset lets any thread landing on a drained core
                    # overwrite a chunk other threads still use, so this
                    # engine resets the MC on *idle-rung migrations* and
                    # STAY decisions instead — same adaptivity, without
                    # sacrificing assembled segments (see DESIGN.md).
                    self._rebalance(clock)
                    if not self.queues.is_empty(core):
                        self._activate(core, clock)
                    continue
                running[core] = thread_id
                state = threads[thread_id]
                if policy_on_start:
                    # SLICC resets the dispatched core's MSV/MTQ, STEPS
                    # its MSV — per-thread trackers do not survive a
                    # thread switch (the MC, describing the cache, does).
                    policy_on_thread_start(core)
                if state.pending_cycles:
                    clocks[core] += state.pending_cycles
                    state.pending_cycles = 0

            thread_id = running[core]
            state = threads[thread_id]

            if batch_dispatch is not None:
                # Batch kernel (PR 6): the whole quantum runs as
                # vectorised passes in repro.sim.batch; only the
                # scheduling tail below is shared with the inline path.
                migrated = batch_dispatch(core, thread_id, state)
                if migrated:
                    if self._pending_target == -1:
                        self._steps_switch(core)
                    else:
                        self._migrate(core, self._pending_target)
                elif state.pos >= len(state.addr):
                    self._complete(core, clocks[core])
                elif policy_quantum:
                    target = policy_quantum_end(core)
                    if target is not None:
                        self._migrate(core, target)
                if running[core] is not None or not queues_is_empty(core):
                    self._activate(core, clocks[core])
                continue

            addr = state.addr
            kind = state.kind
            pages = state.page
            n_records = len(addr)
            pos = state.pos
            cycles = 0
            tlb_cycles = 0
            i_stall_cycles = 0
            d_stall_cycles = 0
            migrated = False

            # Per-core hot references: one tuple unpack per dispatch
            # (field order is defined by _CoreHot — keep this unpack
            # aligned with the class). The loop body below handles every
            # record — TLB access plus L1 hit or miss, and since PR 3
            # also the next-line prefetcher, the miss classifiers, the
            # migration data prefetcher and the banked NUCA L2 —
            # entirely inline, with no attribute chains, method dispatch
            # or result allocation. The inline paths mirror the
            # reference _process_instruction/_process_data line for
            # line; the golden suite pins them byte-identical, and the
            # fast-vs-fallback matrix in tests/test_hot_path.py replays
            # each configuration through both.
            (
                l1i_index,
                l1i_tags,
                l1i_set_mask,
                l1i_assoc,
                l1i_stats,
                l1i_is_lru,
                l1i_on_hit,
                l1i_need_on_miss,
                l1i_on_miss,
                l1i_on_fill,
                l1i_choose_victim,
                l1i_on_evict,
                l1i_evict_is_sig,
                l1i_ages,
                l1i_hi,
                itlb,
                itlb_map,
                itlb_entries,
                l1d_index,
                l1d_tags,
                l1d_set_mask,
                l1d_assoc,
                l1d_stats,
                l1d_is_lru,
                l1d_on_hit,
                l1d_need_on_miss,
                l1d_on_miss,
                l1d_on_fill,
                l1d_choose_victim,
                l1d_on_evict,
                l1d_evict_is_dir,
                l1d_ages,
                l1d_hi,
                dtlb,
                dtlb_map,
                dtlb_entries,
                sig_masks,
                sig_imask,
                sig_bit,
                presence_excl,
                slicc_agent,
                steps_agent,
                mc,
                mc_limit,
                msv,
                msv_bits,
                msv_window,
                msv_dilution,
                mtq_entries,
                mtq_matched,
                pf,
                pf_pending,
                i_cls,
                icls_shadow,
                icls_seen,
                icls_cap,
                d_cls,
                dcls_shadow,
                dcls_seen,
                dcls_cap,
                nuca_ipen,
            ) = core_hot[core]

            # Batched counters, flushed once per quantum: per-record
            # read-modify-write on heap objects is pure overhead when
            # nothing reads the totals mid-run.
            bypass_tick = self._bypass_tick
            if msv is not None:
                # Local mirrors of the MSV occupancy/popcount, flushed at
                # quantum end; resynced after _evaluate_migration, whose
                # STAY outcome resets the MSV in place.
                msv_n = len(msv_bits)
                msv_ones = msv._ones
            itlb_last = -1
            dtlb_last = -1
            i_n = 0
            d_n = 0
            itlb_m = 0
            dtlb_m = 0
            i_m = 0
            d_m = 0
            i_ev = 0
            d_ev = 0
            # PR 3 batched feature counters (flushed with the rest).
            pf_issued = 0
            pf_useful = 0
            i_pf = 0
            icls_comp = icls_capc = icls_conf = 0
            dcls_comp = dcls_capc = dcls_conf = 0
            dp_useful = 0
            if dp is not None:
                # The running thread is fixed for the whole quantum:
                # resolve its data-prefetch history ring and pending set
                # once (record_access/note_demand, amortised).
                dp_hist = dp._history.get(thread_id)
                if dp_hist is None:
                    dp_hist = deque(maxlen=dp.n_blocks)
                    dp._history[thread_id] = dp_hist
                dp_pending = dp._pending.get(thread_id)
            else:
                dp_hist = None
                dp_pending = None

            end = pos + quantum
            if end > n_records:
                end = n_records
            for block, k, page in zip(
                addr[pos:end], kind[pos:end], pages[pos:end]
            ):
                pos += 1
                if k == KI:
                    # --- I-TLB (Tlb.access, inlined; the page id is
                    # precomputed in the replay tables) ---
                    i_n += 1
                    if page == itlb_last:
                        # Already the most-recent entry: move_to_end
                        # would be a no-op (sequential blocks share a
                        # page, so this is the common case).
                        pass
                    elif page in itlb_map:
                        itlb_map.move_to_end(page)
                        itlb_last = page
                    else:
                        itlb_m += 1
                        itlb_map[page] = None
                        itlb_last = page
                        if len(itlb_map) > itlb_entries:
                            itlb_map.popitem(last=False)
                        tlb_cycles += itlb_pen
                    if not fast_i:
                        step, migrate = process_instruction(core, block)
                        cycles += step
                        if migrate:
                            migrated = True
                            break
                        continue
                    # (ibase is charged once per inline record at
                    # the quantum flush: ibase * i_n.)
                    set_idx = block & l1i_set_mask
                    index = l1i_index[set_idx]
                    way = index.get(block)
                    if way is not None:
                        # --- L1-I hit ---
                        if l1i_is_lru:
                            hi = l1i_hi[set_idx] + 1
                            l1i_hi[set_idx] = hi
                            l1i_ages[set_idx][way] = hi
                        else:
                            l1i_on_hit(set_idx, way)
                        if i_cls is not None:
                            # MissClassifier.observe (hit case), inlined:
                            # keep the fully-associative shadow's recency
                            # faithful; nothing to classify.
                            if block in icls_shadow:
                                icls_shadow.move_to_end(block)
                            else:
                                icls_shadow[block] = None
                                if len(icls_shadow) > icls_cap:
                                    icls_shadow.popitem(last=False)
                        if pf_pending is not None and block in pf_pending:
                            # consume_if_prefetched, inlined: the hit
                            # consumed an in-flight prefetch — charge the
                            # late-prefetch residual.
                            pf_pending.discard(block)
                            pf_useful += 1
                            i_stall_cycles += pf_late
                        if mc is not None and mc._count >= mc_limit:
                            if slicc_agent is not None:
                                bypass_tick += 1
                            # msv.record(miss=False), inlined
                            if msv_n == msv_window:
                                msv_ones -= msv_bits[0]
                            else:
                                msv_n += 1
                            msv_bits.append(0)
                        continue
                    # --- L1-I miss ---
                    i_m += 1
                    if i_cls is not None:
                        # MissClassifier.observe (miss case), inlined.
                        if block in icls_shadow:
                            icls_shadow.move_to_end(block)
                            if block not in icls_seen:
                                icls_seen.add(block)
                                icls_comp += 1
                            else:
                                icls_conf += 1
                        else:
                            icls_shadow[block] = None
                            if len(icls_shadow) > icls_cap:
                                icls_shadow.popitem(last=False)
                            if block not in icls_seen:
                                icls_seen.add(block)
                                icls_comp += 1
                            else:
                                icls_capc += 1
                    if l1i_need_on_miss:
                        l1i_on_miss(set_idx)
                    fill = True
                    mc_full = False
                    if slicc_agent is not None and mc._count >= mc_limit:
                        # Segment-protection bypass (see
                        # _process_instruction for the rationale).
                        mc_full = True
                        bypass_tick += 1
                        fill = bypass_tick % BYPASS_REPAIR_RATE == 0
                    if fill:
                        # --- SetAssociativeCache._fill, inlined ---
                        if len(index) < l1i_assoc:
                            tags = l1i_tags[set_idx]
                            way = tags.index(None)
                        else:
                            if l1i_is_lru:
                                ages = l1i_ages[set_idx]
                                way = ages.index(min(ages))
                            else:
                                way = l1i_choose_victim(set_idx)
                            tags = l1i_tags[set_idx]
                            victim = tags[way]
                            del index[victim]
                            i_ev += 1
                            if l1i_evict_is_sig:
                                # BloomSignature.on_evict, inlined:
                                # clear the bit unless a same-set
                                # survivor shares the filter index.
                                vidx = victim & sig_imask
                                for other in index:
                                    if other & sig_imask == vidx:
                                        break
                                else:
                                    sig_masks[vidx] &= ~sig_bit
                            elif pf_pending is not None:
                                # NextLinePrefetcher.on_evict, inlined: a
                                # pending prefetch for the victim dies.
                                pf_pending.discard(victim)
                            elif l1i_on_evict is not None:
                                l1i_on_evict(victim)
                        tags[way] = block
                        index[block] = way
                        if l1i_is_lru:
                            hi = l1i_hi[set_idx] + 1
                            l1i_hi[set_idx] = hi
                            l1i_ages[set_idx][way] = hi
                        else:
                            l1i_on_fill(set_idx, way)
                    if nuca_ipen is None:
                        if block in l2_seen:
                            i_stall_cycles += i_miss_l2
                        else:
                            l2_seen.add(block)
                            i_stall_cycles += i_miss_mem
                    else:
                        # --- NucaL2.access, inlined: banked lookup with
                        # distance-aware latency; banks are plain LRU.
                        # On a bank hit the penalty is the per-bank
                        # latency table entry (latency + front-end
                        # refill); a bank miss pays the memory-flavour
                        # instruction miss and fills the bank. The
                        # infinite-L2 l2_seen set is not consulted,
                        # mirroring the reference path. ---
                        bank = block % n_banks
                        local = block // n_banks
                        (
                            b_index,
                            b_tags,
                            b_ages,
                            b_hi,
                            b_mask,
                            b_assoc,
                        ) = nuca_hot[bank]
                        nuca_acc[bank] += 1
                        b_set = local & b_mask
                        b_dict = b_index[b_set]
                        b_way = b_dict.get(local)
                        if b_way is not None:
                            h = b_hi[b_set] + 1
                            b_hi[b_set] = h
                            b_ages[b_set][b_way] = h
                            i_stall_cycles += nuca_ipen[bank]
                        else:
                            nuca_miss_ct[bank] += 1
                            if len(b_dict) < b_assoc:
                                b_t = b_tags[b_set]
                                b_way = b_t.index(None)
                            else:
                                b_a = b_ages[b_set]
                                b_way = b_a.index(min(b_a))
                                b_t = b_tags[b_set]
                                del b_dict[b_t[b_way]]
                                nuca_ev[bank] += 1
                            b_t[b_way] = local
                            b_dict[local] = b_way
                            h = b_hi[b_set] + 1
                            b_hi[b_set] = h
                            b_ages[b_set][b_way] = h
                            i_stall_cycles += i_miss_mem
                    if fill and sig_masks is not None:
                        sig_masks[block & sig_imask] |= sig_bit
                    if pf_pending is not None:
                        # NextLinePrefetcher.on_demand_miss + the
                        # engine's l2_touch of the prefetched block,
                        # inlined: fetch block+1 unless already resident
                        # (an install, not a demand access — no
                        # access/miss counts, no policy.on_miss).
                        nxt = block + 1
                        n_set = nxt & l1i_set_mask
                        n_index = l1i_index[n_set]
                        if nxt not in n_index:
                            i_pf += 1
                            if len(n_index) < l1i_assoc:
                                n_tags = l1i_tags[n_set]
                                n_way = n_tags.index(None)
                            else:
                                if l1i_is_lru:
                                    n_a = l1i_ages[n_set]
                                    n_way = n_a.index(min(n_a))
                                else:
                                    n_way = l1i_choose_victim(n_set)
                                n_tags = l1i_tags[n_set]
                                victim = n_tags[n_way]
                                del n_index[victim]
                                i_ev += 1
                                pf_pending.discard(victim)
                            n_tags[n_way] = nxt
                            n_index[nxt] = n_way
                            if l1i_is_lru:
                                hi = l1i_hi[n_set] + 1
                                l1i_hi[n_set] = hi
                                l1i_ages[n_set][n_way] = hi
                            else:
                                l1i_on_fill(n_set, n_way)
                            pf_pending.add(nxt)
                            pf_issued += 1
                            l2_seen.add(nxt)
                    if steps_agent is not None:
                        # observe_access + the STEPS dilution check,
                        # inlined from _process_instruction.
                        if mc._count < mc_limit:
                            mc._count += 1
                        else:
                            if msv_n == msv_window:
                                msv_ones -= msv_bits[0]
                            else:
                                msv_n += 1
                            msv_bits.append(1)
                            msv_ones += 1
                        if (
                            mc._count >= mc_limit
                            and msv_ones >= msv_dilution
                            and not queues_is_empty(core)
                        ):
                            self._pending_target = -1
                            migrated = True
                            break
                    elif slicc_agent is not None:
                        if not mc_full:
                            # observe_access -> mc.record_miss, inlined
                            # (mc_full was False, so no saturation check).
                            mc._count += 1
                        else:
                            # observe_access -> msv.record(True) and the
                            # presence gather (note_miss_presence) with
                            # the fused bloom probe, inlined.
                            if msv_n == msv_window:
                                msv_ones -= msv_bits[0]
                            else:
                                msv_n += 1
                            msv_bits.append(1)
                            msv_ones += 1
                            mtq_entries.append(
                                sig_masks[block & sig_imask] & presence_excl
                            )
                            if (
                                msv_ones >= msv_dilution
                                and len(mtq_entries) == mtq_matched
                            ):
                                if self._evaluate_migration(
                                    core, slicc_agent
                                ):
                                    migrated = True
                                    break
                                # STAY: the agent reset its trackers in
                                # place — resync the mirrors.
                                msv_n = len(msv_bits)
                                msv_ones = msv._ones
                    continue
                # --- data record ---
                # --- D-TLB (Tlb.access, inlined; precomputed page) ---
                d_n += 1
                if page == dtlb_last:
                    pass
                elif page in dtlb_map:
                    dtlb_map.move_to_end(page)
                    dtlb_last = page
                else:
                    dtlb_m += 1
                    dtlb_map[page] = None
                    dtlb_last = page
                    if len(dtlb_map) > dtlb_entries:
                        dtlb_map.popitem(last=False)
                    tlb_cycles += dtlb_pen
                if not fast_d:
                    cycles += process_data(core, block, k == KS)
                    continue
                # (dbase is charged at the quantum flush: dbase * d_n.)
                if dp_hist is not None:
                    # MigrationDataPrefetcher.record_access, inlined
                    # (bounded deque; the oldest tag falls off).
                    dp_hist.append(block)
                set_idx = block & l1d_set_mask
                index = l1d_index[set_idx]
                way = index.get(block)
                if way is not None:
                    # --- L1-D hit ---
                    if l1d_is_lru:
                        hi = l1d_hi[set_idx] + 1
                        l1d_hi[set_idx] = hi
                        l1d_ages[set_idx][way] = hi
                    else:
                        l1d_on_hit(set_idx, way)
                    if d_cls is not None:
                        # MissClassifier.observe (hit case), inlined.
                        if block in dcls_shadow:
                            dcls_shadow.move_to_end(block)
                        else:
                            dcls_shadow[block] = None
                            if len(dcls_shadow) > dcls_cap:
                                dcls_shadow.popitem(last=False)
                    if k == KS:
                        # Directory.on_write fast cases, inlined: first
                        # write, or a write by the sole sharer.
                        sharers = dir_sharers.get(block)
                        if sharers is None:
                            dir_sharers[block] = {core}
                        elif len(sharers) == 1 and core in sharers:
                            pass
                        else:
                            directory_on_write(core, block)
                    continue
                # --- L1-D miss ---
                d_m += 1
                if dp_pending and block in dp_pending:
                    # note_demand, inlined: the miss consumed a block the
                    # migration prefetcher shipped here.
                    dp_pending.discard(block)
                    dp_useful += 1
                if d_cls is not None:
                    # MissClassifier.observe (miss case), inlined.
                    if block in dcls_shadow:
                        dcls_shadow.move_to_end(block)
                        if block not in dcls_seen:
                            dcls_seen.add(block)
                            dcls_comp += 1
                        else:
                            dcls_conf += 1
                    else:
                        dcls_shadow[block] = None
                        if len(dcls_shadow) > dcls_cap:
                            dcls_shadow.popitem(last=False)
                        if block not in dcls_seen:
                            dcls_seen.add(block)
                            dcls_comp += 1
                        else:
                            dcls_capc += 1
                if l1d_need_on_miss:
                    l1d_on_miss(set_idx)
                # --- SetAssociativeCache._fill, inlined ---
                if len(index) < l1d_assoc:
                    tags = l1d_tags[set_idx]
                    way = tags.index(None)
                else:
                    if l1d_is_lru:
                        ages = l1d_ages[set_idx]
                        way = ages.index(min(ages))
                    else:
                        way = l1d_choose_victim(set_idx)
                    tags = l1d_tags[set_idx]
                    victim = tags[way]
                    del index[victim]
                    d_ev += 1
                    if l1d_evict_is_dir:
                        # Directory.on_evict, inlined.
                        vs = dir_sharers.get(victim)
                        if vs is not None:
                            vs.discard(core)
                            if not vs:
                                del dir_sharers[victim]
                    elif l1d_on_evict is not None:
                        l1d_on_evict(victim)
                tags[way] = block
                index[block] = way
                if l1d_is_lru:
                    hi = l1d_hi[set_idx] + 1
                    l1d_hi[set_idx] = hi
                    l1d_ages[set_idx][way] = hi
                else:
                    l1d_on_fill(set_idx, way)
                if nuca_ipen is None:
                    if block in l2_seen:
                        in_l2 = True
                    else:
                        l2_seen.add(block)
                        in_l2 = False
                else:
                    # --- NucaL2.access, inlined (data flavour): only
                    # the bank hit/miss outcome feeds the overlap-
                    # adjusted penalty; l2_seen is not consulted. ---
                    bank = block % n_banks
                    local = block // n_banks
                    (
                        b_index,
                        b_tags,
                        b_ages,
                        b_hi,
                        b_mask,
                        b_assoc,
                    ) = nuca_hot[bank]
                    nuca_acc[bank] += 1
                    b_set = local & b_mask
                    b_dict = b_index[b_set]
                    b_way = b_dict.get(local)
                    if b_way is not None:
                        h = b_hi[b_set] + 1
                        b_hi[b_set] = h
                        b_ages[b_set][b_way] = h
                        in_l2 = True
                    else:
                        nuca_miss_ct[bank] += 1
                        if len(b_dict) < b_assoc:
                            b_t = b_tags[b_set]
                            b_way = b_t.index(None)
                        else:
                            b_a = b_ages[b_set]
                            b_way = b_a.index(min(b_a))
                            b_t = b_tags[b_set]
                            del b_dict[b_t[b_way]]
                            nuca_ev[bank] += 1
                        b_t[b_way] = local
                        b_dict[local] = b_way
                        h = b_hi[b_set] + 1
                        b_hi[b_set] = h
                        b_ages[b_set][b_way] = h
                        in_l2 = False
                if k == KS:
                    d_stall_cycles += d_store_l2 if in_l2 else d_store_mem
                    sharers = dir_sharers.get(block)
                    if sharers is None:
                        dir_sharers[block] = {core}
                    elif len(sharers) == 1 and core in sharers:
                        pass
                    else:
                        directory_on_write(core, block)
                else:
                    d_stall_cycles += d_load_l2 if in_l2 else d_load_mem
                    # Directory.on_read, inlined.
                    sharers = dir_sharers.get(block)
                    if sharers is None:
                        dir_sharers[block] = {core}
                    else:
                        sharers.add(core)

            state.pos = pos
            # Flush the batched counters. The fallback paths increment
            # the same totals directly, so fast-path records were only
            # ever counted in the locals (the L1 access counters belong
            # to the fast path alone: with fast_i/fast_d set, every
            # record of that kind took the inline route).
            if fast_i:
                self._bypass_tick = bypass_tick
                if msv is not None:
                    msv._ones = msv_ones
                l1i_stats.accesses += i_n
                l1i_stats.misses += i_m
                l1i_stats.evictions += i_ev
                inline_base = ibase * i_n
                cycles += inline_base
                self.cycles_base += inline_base
                if pf is not None:
                    pf.issued += pf_issued
                    pf.useful += pf_useful
                    l1i_stats.prefetch_fills += i_pf
                if i_cls is not None:
                    i_cls.accesses += i_n
                    counts = i_cls.counts
                    counts[_MC_COMPULSORY] += icls_comp
                    counts[_MC_CAPACITY] += icls_capc
                    counts[_MC_CONFLICT] += icls_conf
            if fast_d:
                l1d_stats.accesses += d_n
                l1d_stats.misses += d_m
                l1d_stats.evictions += d_ev
                inline_base = dbase * d_n
                cycles += inline_base
                self.cycles_base += inline_base
                if d_cls is not None:
                    d_cls.accesses += d_n
                    counts = d_cls.counts
                    counts[_MC_COMPULSORY] += dcls_comp
                    counts[_MC_CAPACITY] += dcls_capc
                    counts[_MC_CONFLICT] += dcls_conf
                if dp_useful:
                    dp.useful += dp_useful
            itlb.accesses += i_n
            itlb.misses += itlb_m
            dtlb.accesses += d_n
            dtlb.misses += dtlb_m
            cycles += tlb_cycles + i_stall_cycles + d_stall_cycles
            self.cycles_tlb += tlb_cycles
            self.cycles_i_stall += i_stall_cycles
            self.cycles_d_stall += d_stall_cycles
            clocks[core] += cycles
            self.busy_cycles += cycles

            if migrated:
                if self._pending_target == -1:
                    self._steps_switch(core)
                else:
                    self._migrate(core, self._pending_target)
            elif state.pos >= n_records:
                self._complete(core, clocks[core])
            elif policy_quantum:
                # Extension policies decide at quantum boundaries only
                # (their per-record cost is zero: they read the batched
                # L1-I statistics flushed just above).
                target = policy_quantum_end(core)
                if target is not None:
                    self._migrate(core, target)

            if running[core] is not None or not queues_is_empty(core):
                self._activate(core, clocks[core])

        if nuca_hot is not None:
            # Flush the batched bank statistics (inline events only; the
            # reference path updates bank stats directly, so mixed
            # fast/fallback runs stay correct).
            for bank, cache in enumerate(machine.nuca._banks):
                stats = cache.stats
                stats.accesses += nuca_acc[bank]
                stats.misses += nuca_miss_ct[bank]
                stats.evictions += nuca_ev[bank]
                nuca_acc[bank] = nuca_miss_ct[bank] = nuca_ev[bank] = 0

        if self.completed != len(self.threads):
            raise SimulationError(
                f"run ended with {self.completed}/{len(self.threads)} "
                "threads completed — scheduler deadlock"
            )
        return self._collect_results()

    # ------------------------------------------------------------------

    def _collect_results(self) -> SimulationResult:
        machine = self.machine
        result = SimulationResult(
            variant=self.config.variant,
            workload=self.trace.workload,
            cycles=max(self.clock),
            instructions=self.trace.total_instructions,
            i_accesses=machine.total_i_accesses(),
            i_misses=machine.total_i_misses(),
            d_accesses=machine.total_d_accesses(),
            d_misses=machine.total_d_misses(),
            migrations=self.migrations,
            invalidations=machine.directory.invalidations_sent,
            itlb_misses=sum(t.misses for t in machine.itlb),
            dtlb_misses=sum(t.misses for t in machine.dtlb),
            threads_completed=self.completed,
            context_switches=self.context_switches,
            cycles_base=self.cycles_base,
            cycles_i_stall=self.cycles_i_stall,
            cycles_d_stall=self.cycles_d_stall,
            cycles_migration=self.cycles_migration,
            cycles_tlb=self.cycles_tlb,
        )
        makespan = max(self.clock)
        if makespan:
            n_workers = len(self.worker_cores)
            result.utilization = self.busy_cycles / (n_workers * makespan)
        if self.agents is not None:
            result.broadcasts = sum(a.stats.broadcasts for a in self.agents)
            result.segment_match_migrations = sum(
                a.stats.segment_match_migrations for a in self.agents
            )
            result.idle_core_migrations = sum(
                a.stats.idle_core_migrations for a in self.agents
            )
            result.stay_decisions = sum(
                a.stats.stay_decisions for a in self.agents
            )
        if self._partition is not None:
            # Report the number of distinct type regions as "teams".
            regions = {cores for key, cores in self._partition.items() if key != -1}
            result.teams_completed = len(regions)
        if self.i_classifiers is not None:
            instructions = self.trace.total_instructions
            result.miss_class_mpki = {
                "instruction": self._class_mpki(self.i_classifiers, instructions),
                "data": self._class_mpki(self.d_classifiers, instructions),
            }
        self.policy.contribute_stats(result)
        return result

    @staticmethod
    def _class_mpki(
        classifiers: list[MissClassifier], instructions: int
    ) -> dict[str, float]:
        out = {}
        for miss_class in MissClass:
            total = sum(c.counts[miss_class] for c in classifiers)
            out[miss_class.value] = 1000.0 * total / instructions
        return out


def simulate(trace: Trace, config: Optional[SimConfig] = None, **kwargs) -> SimulationResult:
    """Convenience wrapper: build an engine, run it, return the result.

    ``kwargs`` are forwarded to :class:`SimConfig` when ``config`` is not
    given (e.g. ``simulate(trace, variant="slicc-sw")``).
    """
    if config is None:
        config = SimConfig(**kwargs)
    elif kwargs:
        raise ConfigurationError("pass either a SimConfig or kwargs, not both")
    return ReplayEngine(trace, config).run()
