"""Per-config specialized replay kernel (generated dead-branch-free loops).

The inline quantum loop in :meth:`repro.sim.engine.ReplayEngine.run`
handles *every* configuration: ~226 branch sites cover the next-line
prefetcher, the miss classifiers, the banked NUCA L2, the migration data
prefetcher, the SLICC/STEPS trackers and the work-stealing knobs. For
any one run almost all of those predicates are *run constants* — policy
capability flags and config toggles that never change after engine
construction. This module is the partial evaluator the roadmap names as
the alternative to batching (and the one that, unlike batching, does not
depend on the miss rate): given the run constants of a configuration it

* **emits Python source** for a main loop specialized to exactly that
  configuration — every run-constant predicate folded, the dead branches
  deleted outright;
* **inlines per-config constants as literals** — set masks, way counts,
  TLB sizes, the quantum, every timing-model penalty and the SLICC
  thresholds become ``LOAD_CONST`` instead of local reads;
* **hoists** the engine attribute chains and bound methods the loop
  touches into function locals once per run, and unpacks a *slim*
  per-core hot tuple per dispatch (only the fields this configuration
  uses, instead of the inline loop's full 60-field
  :class:`~repro.sim.engine._CoreHot` unpack);
* ``compile()``/``exec()``s the module once and **memoises the kernel**
  by its :class:`KernelSpec` signature, so the generation cost (~ms) is
  paid once per configuration per process and amortised across sweeps.

The generated loop mirrors the inline loop *line for line* — it is the
same code with the dead arms removed — so byte-identical results follow
by construction and are enforced by the 48 golden pins and the 4-kernel
equivalence matrix in ``tests/test_hot_path.py``.

Structurally this is runtime specialization in the spirit of tracing /
metatracing JITs: the "trace" here is degenerate (the run constants are
known up front from the config, no profiling needed), which is why a
simple textual partial evaluator suffices.

Debugging and tooling:

* ``REPRO_SPECIALIZE_DUMP=<dir>`` writes every generated module to
  ``<dir>/<signature>.py`` so the emitted code can be read and diffed.
* ``REPRO_SPECIALIZE_AOT=1`` additionally tries to compile the generated
  module ahead of time with mypyc or Cython into a per-config cache
  directory (``REPRO_SPECIALIZE_CACHE``, default
  ``~/.cache/repro-specialize``), silently falling back to the exec'd
  pure-Python kernel when no toolchain is present or compilation fails.

**Measured result** (BENCH_10.json): real but modest — a uniform
1.03-1.13x over the inline loop across all eight gated variants
(slicc/tpcc-10: 1.09x, interleaved best-of-24), well short of the 1.5x
target. The surviving work per record (dict probes, LRU stamps, tracker
updates) is identical to the inline loop by construction, so
dead-branch deletion can only shave the predicate tax itself, and
CPython's run-constant predicates are cheap ``LOAD_FAST`` + jump pairs.
``kernel="auto"`` therefore keeps resolving to the inline loop (see
``engine._select_kernel``); the specialized kernel is selectable
per-config or fleet-wide via ``REPRO_KERNEL=specialized``, and CI runs
the full golden suite under it. ``REPRO_NO_SPECIALIZE=1`` vetoes it
(mirroring ``REPRO_NO_BATCH``).
"""

from __future__ import annotations

import hashlib
import os
from typing import Callable, NamedTuple

from repro.sim.engine import _CoreHot
from repro.workloads.trace import KIND_INSTR, KIND_STORE

# The generated source hard-codes the record-kind literals (protocol
# constants, not config knobs); fail at import time if they ever drift.
assert KIND_INSTR == 0 and KIND_STORE == 2, "record-kind literals drifted"

#: Field name -> position in the engine's per-core hot tuple. Resolved
#: from the NamedTuple itself so a future reordering cannot silently
#: desynchronise the generated indices.
_HOT_INDEX = {name: i for i, name in enumerate(_CoreHot._fields)}


class KernelSpec(NamedTuple):
    """The run constants one specialized kernel is generated for.

    Two engines with equal specs share one generated kernel (the memo
    key); every field is a plain bool/int so the spec is hashable and
    its repr — embedded in the generated module docstring — is
    deterministic. Fields that do not apply to a configuration are
    canonicalised to 0/False so irrelevant knobs never fragment the
    cache (e.g. a non-SLICC run ignores the SLICC thresholds).
    """

    # Structural toggles (which machinery exists).
    has_slicc: bool
    has_steps: bool
    has_pf: bool
    has_cls: bool
    has_nuca: bool
    has_dp: bool
    policy_on_start: bool
    policy_quantum: bool
    # L1-I eviction arm (at most one).
    l1i_evict_sig: bool
    l1i_evict_generic: bool
    # L1-D eviction arm.
    l1d_evict_dir: bool
    l1d_evict_generic: bool
    # Literal constants.
    quantum: int
    ibase: int
    dbase: int
    itlb_pen: int
    dtlb_pen: int
    i_miss_l2: int
    i_miss_mem: int
    d_load_l2: int
    d_load_mem: int
    d_store_l2: int
    d_store_mem: int
    pf_late: int
    l1i_set_mask: int
    l1i_assoc: int
    itlb_entries: int
    l1d_set_mask: int
    l1d_assoc: int
    dtlb_entries: int
    sig_imask: int
    mc_limit: int
    msv_window: int
    msv_dilution: int
    mtq_matched: int
    icls_cap: int
    dcls_cap: int
    n_banks: int
    bypass_repair: int


def spec_from_engine(engine) -> KernelSpec:
    """Extract the run constants of a fully constructed engine.

    Raises :class:`AssertionError` on a configuration the generator does
    not model (callers gate on ``ReplayEngine._specialize_blockers``, so
    this is a belt-and-braces invariant, not an expected failure).
    """
    from repro.sim.engine import BYPASS_REPAIR_RATE

    machine = engine.machine
    timing = engine.timing
    hot = engine._core_hot[0]
    has_slicc = engine.agents is not None
    has_steps = engine.steps_agents is not None
    has_pf = engine.prefetchers is not None
    has_cls = engine.i_classifiers is not None
    has_nuca = machine.nuca is not None
    has_dp = engine.data_prefetcher is not None
    # The eligibility gate guarantees plain age-counter LRU L1s, whose
    # replacement policy never overrides on_miss; the generated loop
    # emits only the age-counter arms.
    assert hot.l1i_is_lru and hot.l1d_is_lru, "specialize requires LRU L1s"
    assert not hot.l1i_need_on_miss and not hot.l1d_need_on_miss
    l1i_evict_sig = bool(hot.l1i_evict_is_sig)
    l1i_evict_generic = (
        not l1i_evict_sig and not has_pf and hot.l1i_on_evict is not None
    )
    l1d_evict_dir = bool(hot.l1d_evict_is_dir)
    l1d_evict_generic = not l1d_evict_dir and hot.l1d_on_evict is not None
    has_msv = has_slicc or has_steps
    return KernelSpec(
        has_slicc=has_slicc,
        has_steps=has_steps,
        has_pf=has_pf,
        has_cls=has_cls,
        has_nuca=has_nuca,
        has_dp=has_dp,
        policy_on_start=bool(engine._policy_on_start),
        policy_quantum=bool(engine._policy_quantum_hook),
        l1i_evict_sig=l1i_evict_sig,
        l1i_evict_generic=l1i_evict_generic,
        l1d_evict_dir=l1d_evict_dir,
        l1d_evict_generic=l1d_evict_generic,
        quantum=engine.config.quantum,
        ibase=timing.ibase,
        dbase=timing.dbase,
        itlb_pen=timing.itlb_miss,
        dtlb_pen=timing.dtlb_miss,
        i_miss_l2=timing.i_miss_l2,
        i_miss_mem=timing.i_miss_mem,
        d_load_l2=timing.d_load_l2,
        d_load_mem=timing.d_load_mem,
        d_store_l2=timing.d_store_l2,
        d_store_mem=timing.d_store_mem,
        pf_late=timing.prefetch_late(True) if has_pf else 0,
        l1i_set_mask=hot.l1i_set_mask,
        l1i_assoc=hot.l1i_assoc,
        itlb_entries=hot.itlb_entries,
        l1d_set_mask=hot.l1d_set_mask,
        l1d_assoc=hot.l1d_assoc,
        dtlb_entries=hot.dtlb_entries,
        sig_imask=hot.sig_imask if has_slicc else 0,
        mc_limit=hot.mc_limit if has_msv else 0,
        msv_window=hot.msv_window if has_msv else 0,
        msv_dilution=hot.msv_dilution if has_msv else 0,
        mtq_matched=hot.mtq_matched if has_slicc else 0,
        icls_cap=hot.icls_cap if has_cls else 0,
        dcls_cap=hot.dcls_cap if has_cls else 0,
        n_banks=machine.nuca.n_banks if has_nuca else 0,
        bypass_repair=BYPASS_REPAIR_RATE if has_slicc else 0,
    )


def signature(spec: KernelSpec) -> str:
    """Short stable content signature of a spec (cache/dump file names)."""
    return hashlib.sha256(repr(spec).encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# Source generation
# ----------------------------------------------------------------------


class _Emitter:
    """Tiny indented-line builder for the generated module."""

    def __init__(self) -> None:
        self.lines: list[str] = []

    def emit(self, block: str, indent: int = 0) -> None:
        """Append ``block`` (a possibly multi-line chunk written at
        column 0) shifted right by ``indent`` levels of 4 spaces."""
        pad = "    " * indent
        for line in block.splitlines():
            self.lines.append(pad + line if line.strip() else "")

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _hot_fields(spec: KernelSpec) -> list[str]:
    """The per-core hot-tuple fields this configuration's loop touches,
    in unpack order (deduplicated, stable)."""
    fields = [
        "l1i_index",
        "l1i_tags",
        "l1i_stats",
        "l1i_ages",
        "l1i_hi",
        "itlb",
        "itlb_map",
        "l1d_index",
        "l1d_tags",
        "l1d_stats",
        "l1d_ages",
        "l1d_hi",
        "dtlb",
        "dtlb_map",
    ]
    if spec.l1i_evict_generic:
        fields.append("l1i_on_evict")
    if spec.l1d_evict_generic:
        fields.append("l1d_on_evict")
    if spec.has_slicc:
        fields += [
            "sig_masks",
            "sig_bit",
            "presence_excl",
            "slicc_agent",
            "mc",
            "msv",
            "msv_bits",
            "mtq_entries",
        ]
    if spec.has_steps:
        fields += ["mc", "msv", "msv_bits"]
    if spec.has_pf:
        fields += ["pf", "pf_pending"]
    if spec.has_cls:
        fields += [
            "i_cls",
            "icls_shadow",
            "icls_seen",
            "d_cls",
            "dcls_shadow",
            "dcls_seen",
        ]
    if spec.has_nuca:
        fields.append("nuca_ipen")
    return list(dict.fromkeys(fields))


def generate_source(spec: KernelSpec) -> str:
    """Emit the source of the specialized module for ``spec``.

    The module defines ``kernel(engine)``, which executes the engine's
    entire post-admission main loop (the engine's :meth:`run` handles
    admission before and result collection after). Deterministic: equal
    specs yield byte-identical source.

    Indentation levels in the emitted function:

    ====== ==========================================================
    1      ``kernel`` body (prologue, the ``while True`` header)
    2      dispatch + per-quantum setup/flush (``while`` body)
    3      record-loop body / the data-record arm
    4      the instruction arm (``if k == 0`` body) / data-hit body
    5      instruction-hit body, SLICC fill body
    ====== ==========================================================
    """
    s = spec
    has_msv = s.has_slicc or s.has_steps
    has_mig = s.has_slicc or s.has_steps
    # The pf block touches the infinite-L2 seen-set even under NUCA
    # (l2_touch of the prefetched block), so bind it for either.
    needs_l2_seen = (not s.has_nuca) or s.has_pf
    e = _Emitter()
    e.emit(
        f'"""Generated specialized replay kernel — do not edit.\n'
        f"\n"
        f"signature: {signature(spec)}\n"
        f"spec: {spec!r}\n"
        f"\n"
        f"Emitted by repro.sim.specialize.generate_source: the inline\n"
        f"quantum loop of repro.sim.engine.ReplayEngine.run with this\n"
        f"configuration's run-constant branches folded away and its\n"
        f"constants inlined as literals.\n"
        f'"""\n'
        f"import heapq\n"
    )
    if s.has_dp:
        e.emit("from collections import deque\n")
    if s.has_cls:
        e.emit(
            "from repro.cache.classify import MissClass\n"
            "_MC_COMPULSORY = MissClass.COMPULSORY\n"
            "_MC_CAPACITY = MissClass.CAPACITY\n"
            "_MC_CONFLICT = MissClass.CONFLICT\n"
        )
    e.emit("from repro.errors import SimulationError\n\n")
    e.emit("def kernel(engine):")

    # --- run-constant bindings, hoisted once per run ------------------
    e.emit(
        "machine = engine.machine\n"
        "queues_is_empty = engine.queues.is_empty\n"
        "queues_dequeue = engine.queues.dequeue\n"
        "directory_on_write = machine.directory.on_write\n"
        "dir_sharers = machine.directory._sharers\n"
        "admit_threads = engine._admit_threads\n"
        "rebalance = engine._rebalance\n"
        "activate = engine._activate\n"
        "migrate = engine._migrate\n"
        "complete = engine._complete\n"
        "heappop = heapq.heappop\n"
        "heap = engine._heap\n"
        "in_heap = engine._in_heap\n"
        "clocks = engine.clock\n"
        "threads = engine.threads\n"
        "n_threads = len(threads)\n"
        "arrival_time = engine._arrival_time\n"
        "running = engine.running",
        1,
    )
    if needs_l2_seen:
        e.emit("l2_seen = machine._l2_seen", 1)
    if s.has_nuca:
        e.emit(
            "nuca_hot = engine._nuca_hot\n"
            "nuca_acc = engine._nuca_acc\n"
            "nuca_miss_ct = engine._nuca_miss\n"
            "nuca_ev = engine._nuca_ev",
            1,
        )
    if s.has_dp:
        e.emit(
            "dp = engine.data_prefetcher\n"
            "dp_history = dp._history\n"
            "dp_pending_map = dp._pending\n"
            "dp_n_blocks = dp.n_blocks",
            1,
        )
    if s.has_slicc:
        e.emit("evaluate_migration = engine._evaluate_migration", 1)
    if s.has_steps:
        e.emit("steps_switch = engine._steps_switch", 1)
    if s.policy_on_start:
        e.emit("policy_on_thread_start = engine.policy.on_thread_start", 1)
    if s.policy_quantum:
        e.emit("policy_quantum_end = engine.policy.quantum_end", 1)
    # Slim per-core hot tuples: only the fields this config's loop uses.
    fields = _hot_fields(s)
    idx = ", ".join(f"h[{_HOT_INDEX[name]}]" for name in fields)
    names = ", ".join(fields)
    e.emit(
        "# Slim per-core hot tuples (indices into engine._CoreHot).\n"
        f"hot_all = [({idx},) for h in engine._core_hot]",
        1,
    )

    # --- main loop ----------------------------------------------------
    e.emit(
        "while True:\n"
        "    if not heap:\n"
        "        if engine._arrival_ptr >= n_threads:\n"
        "            break\n"
        "        now = max(\n"
        "            max(clocks),\n"
        "            arrival_time[engine._arrival_ptr],\n"
        "        )\n"
        "        admit_threads(now)\n"
        "        if not heap:\n"
        "            raise SimulationError(\n"
        '                "no core activated by a due arrival — pool stuck"\n'
        "            )\n"
        "        continue\n"
        "    clock, _, core = heappop(heap)\n"
        "    in_heap[core] = False\n"
        "    clock = clocks[core] = max(clock, clocks[core])\n"
        "    if (\n"
        "        engine._arrival_ptr < n_threads\n"
        "        and arrival_time[engine._arrival_ptr] <= clock\n"
        "    ):\n"
        "        admit_threads(clock)\n"
        "\n"
        "    if running[core] is None:\n"
        "        thread_id = queues_dequeue(core)\n"
        "        if thread_id is None:\n"
        "            rebalance(clock)\n"
        "            if not queues_is_empty(core):\n"
        "                activate(core, clock)\n"
        "            continue\n"
        "        running[core] = thread_id\n"
        "        state = threads[thread_id]",
        1,
    )
    if s.policy_on_start:
        e.emit("        policy_on_thread_start(core)", 1)
    e.emit(
        "        if state.pending_cycles:\n"
        "            clocks[core] += state.pending_cycles\n"
        "            state.pending_cycles = 0\n"
        "\n"
        "    thread_id = running[core]\n"
        "    state = threads[thread_id]\n"
        "    addr = state.addr\n"
        "    kind = state.kind\n"
        "    pages = state.page\n"
        "    n_records = len(addr)\n"
        "    pos = state.pos\n"
        "    tlb_cycles = 0\n"
        "    i_stall_cycles = 0\n"
        "    d_stall_cycles = 0",
        1,
    )
    if has_mig:
        e.emit("    migrated = False", 1)
    e.emit(f"    ({names},) = hot_all[core]", 1)
    if s.has_slicc:
        e.emit("    bypass_tick = engine._bypass_tick", 1)
    if has_msv:
        e.emit(
            "    msv_n = len(msv_bits)\n"
            "    msv_ones = msv._ones",
            1,
        )
    e.emit(
        "    itlb_last = -1\n"
        "    dtlb_last = -1\n"
        "    i_n = 0\n"
        "    d_n = 0\n"
        "    itlb_m = 0\n"
        "    dtlb_m = 0\n"
        "    i_m = 0\n"
        "    d_m = 0\n"
        "    i_ev = 0\n"
        "    d_ev = 0",
        1,
    )
    if s.has_pf:
        e.emit("    pf_issued = 0\n    pf_useful = 0\n    i_pf = 0", 1)
    if s.has_cls:
        e.emit(
            "    icls_comp = icls_capc = icls_conf = 0\n"
            "    dcls_comp = dcls_capc = dcls_conf = 0",
            1,
        )
    if s.has_dp:
        e.emit(
            "    dp_useful = 0\n"
            "    dp_hist = dp_history.get(thread_id)\n"
            "    if dp_hist is None:\n"
            "        dp_hist = deque(maxlen=dp_n_blocks)\n"
            "        dp_history[thread_id] = dp_hist\n"
            "    dp_pending = dp_pending_map.get(thread_id)",
            1,
        )
    e.emit(
        f"    end = pos + {s.quantum}\n"
        "    if end > n_records:\n"
        "        end = n_records\n"
        "    for block, k, page in zip(\n"
        "        addr[pos:end], kind[pos:end], pages[pos:end]\n"
        "    ):\n"
        "        pos += 1\n"
        "        if k == 0:",  # KIND_INSTR (asserted at import)
        1,
    )

    # ---- instruction record (level 4) ----
    e.emit(
        "i_n += 1\n"
        "if page == itlb_last:\n"
        "    pass\n"
        "elif page in itlb_map:\n"
        "    itlb_map.move_to_end(page)\n"
        "    itlb_last = page\n"
        "else:\n"
        "    itlb_m += 1\n"
        "    itlb_map[page] = None\n"
        "    itlb_last = page\n"
        f"    if len(itlb_map) > {s.itlb_entries}:\n"
        "        itlb_map.popitem(last=False)\n"
        f"    tlb_cycles += {s.itlb_pen}\n"
        f"set_idx = block & {s.l1i_set_mask}\n"
        "index = l1i_index[set_idx]\n"
        "way = index.get(block)\n"
        "if way is not None:\n"
        "    hi = l1i_hi[set_idx] + 1\n"
        "    l1i_hi[set_idx] = hi\n"
        "    l1i_ages[set_idx][way] = hi",
        4,
    )
    if s.has_cls:
        e.emit(
            "    if block in icls_shadow:\n"
            "        icls_shadow.move_to_end(block)\n"
            "    else:\n"
            "        icls_shadow[block] = None\n"
            f"        if len(icls_shadow) > {s.icls_cap}:\n"
            "            icls_shadow.popitem(last=False)",
            4,
        )
    if s.has_pf:
        e.emit(
            "    if block in pf_pending:\n"
            "        pf_pending.discard(block)\n"
            "        pf_useful += 1\n"
            f"        i_stall_cycles += {s.pf_late}",
            4,
        )
    if has_msv:
        bump = "        bypass_tick += 1\n" if s.has_slicc else ""
        e.emit(
            f"    if mc._count >= {s.mc_limit}:\n"
            + bump
            + f"        if msv_n == {s.msv_window}:\n"
            "            msv_ones -= msv_bits[0]\n"
            "        else:\n"
            "            msv_n += 1\n"
            "        msv_bits.append(0)",
            4,
        )
    e.emit("    continue", 4)

    # ---- instruction miss (level 4) ----
    e.emit("i_m += 1", 4)
    if s.has_cls:
        e.emit(
            "if block in icls_shadow:\n"
            "    icls_shadow.move_to_end(block)\n"
            "    if block not in icls_seen:\n"
            "        icls_seen.add(block)\n"
            "        icls_comp += 1\n"
            "    else:\n"
            "        icls_conf += 1\n"
            "else:\n"
            "    icls_shadow[block] = None\n"
            f"    if len(icls_shadow) > {s.icls_cap}:\n"
            "        icls_shadow.popitem(last=False)\n"
            "    if block not in icls_seen:\n"
            "        icls_seen.add(block)\n"
            "        icls_comp += 1\n"
            "    else:\n"
            "        icls_capc += 1",
            4,
        )
    # Fill decision: the segment-protection bypass exists only with the
    # SLICC agents; every other configuration always fills.
    fill_indent = 4
    if s.has_slicc:
        e.emit(
            "fill = True\n"
            "mc_full = False\n"
            f"if mc._count >= {s.mc_limit}:\n"
            "    mc_full = True\n"
            "    bypass_tick += 1\n"
            f"    fill = bypass_tick % {s.bypass_repair} == 0\n"
            "if fill:",
            4,
        )
        fill_indent = 5
    # SetAssociativeCache._fill, inlined (age-counter LRU arm only).
    if s.l1i_evict_sig:
        evict_arm = (
            f"    vidx = victim & {s.sig_imask}\n"
            "    for other in index:\n"
            f"        if other & {s.sig_imask} == vidx:\n"
            "            break\n"
            "    else:\n"
            "        sig_masks[vidx] &= ~sig_bit\n"
        )
    elif s.has_pf:
        evict_arm = "    pf_pending.discard(victim)\n"
    elif s.l1i_evict_generic:
        evict_arm = "    l1i_on_evict(victim)\n"
    else:
        evict_arm = ""
    e.emit(
        f"if len(index) < {s.l1i_assoc}:\n"
        "    tags = l1i_tags[set_idx]\n"
        "    way = tags.index(None)\n"
        "else:\n"
        "    ages = l1i_ages[set_idx]\n"
        "    way = ages.index(min(ages))\n"
        "    tags = l1i_tags[set_idx]\n"
        "    victim = tags[way]\n"
        "    del index[victim]\n"
        "    i_ev += 1\n"
        + evict_arm
        + "tags[way] = block\n"
        "index[block] = way\n"
        "hi = l1i_hi[set_idx] + 1\n"
        "l1i_hi[set_idx] = hi\n"
        "l1i_ages[set_idx][way] = hi",
        fill_indent,
    )
    # Downstream penalty.
    if not s.has_nuca:
        e.emit(
            "if block in l2_seen:\n"
            f"    i_stall_cycles += {s.i_miss_l2}\n"
            "else:\n"
            "    l2_seen.add(block)\n"
            f"    i_stall_cycles += {s.i_miss_mem}",
            4,
        )
    else:
        e.emit(
            f"bank = block % {s.n_banks}\n"
            f"local = block // {s.n_banks}\n"
            "(\n"
            "    b_index,\n"
            "    b_tags,\n"
            "    b_ages,\n"
            "    b_hi,\n"
            "    b_mask,\n"
            "    b_assoc,\n"
            ") = nuca_hot[bank]\n"
            "nuca_acc[bank] += 1\n"
            "b_set = local & b_mask\n"
            "b_dict = b_index[b_set]\n"
            "b_way = b_dict.get(local)\n"
            "if b_way is not None:\n"
            "    h = b_hi[b_set] + 1\n"
            "    b_hi[b_set] = h\n"
            "    b_ages[b_set][b_way] = h\n"
            "    i_stall_cycles += nuca_ipen[bank]\n"
            "else:\n"
            "    nuca_miss_ct[bank] += 1\n"
            "    if len(b_dict) < b_assoc:\n"
            "        b_t = b_tags[b_set]\n"
            "        b_way = b_t.index(None)\n"
            "    else:\n"
            "        b_a = b_ages[b_set]\n"
            "        b_way = b_a.index(min(b_a))\n"
            "        b_t = b_tags[b_set]\n"
            "        del b_dict[b_t[b_way]]\n"
            "        nuca_ev[bank] += 1\n"
            "    b_t[b_way] = local\n"
            "    b_dict[local] = b_way\n"
            "    h = b_hi[b_set] + 1\n"
            "    b_hi[b_set] = h\n"
            "    b_ages[b_set][b_way] = h\n"
            f"    i_stall_cycles += {s.i_miss_mem}",
            4,
        )
    if s.has_slicc:
        e.emit(
            "if fill:\n"
            f"    sig_masks[block & {s.sig_imask}] |= sig_bit",
            4,
        )
    if s.has_pf:
        e.emit(
            "nxt = block + 1\n"
            f"n_set = nxt & {s.l1i_set_mask}\n"
            "n_index = l1i_index[n_set]\n"
            "if nxt not in n_index:\n"
            "    i_pf += 1\n"
            f"    if len(n_index) < {s.l1i_assoc}:\n"
            "        n_tags = l1i_tags[n_set]\n"
            "        n_way = n_tags.index(None)\n"
            "    else:\n"
            "        n_a = l1i_ages[n_set]\n"
            "        n_way = n_a.index(min(n_a))\n"
            "        n_tags = l1i_tags[n_set]\n"
            "        victim = n_tags[n_way]\n"
            "        del n_index[victim]\n"
            "        i_ev += 1\n"
            "        pf_pending.discard(victim)\n"
            "    n_tags[n_way] = nxt\n"
            "    n_index[nxt] = n_way\n"
            "    hi = l1i_hi[n_set] + 1\n"
            "    l1i_hi[n_set] = hi\n"
            "    l1i_ages[n_set][n_way] = hi\n"
            "    pf_pending.add(nxt)\n"
            "    pf_issued += 1\n"
            "    l2_seen.add(nxt)",
            4,
        )
    if s.has_steps:
        e.emit(
            f"if mc._count < {s.mc_limit}:\n"
            "    mc._count += 1\n"
            "else:\n"
            f"    if msv_n == {s.msv_window}:\n"
            "        msv_ones -= msv_bits[0]\n"
            "    else:\n"
            "        msv_n += 1\n"
            "    msv_bits.append(1)\n"
            "    msv_ones += 1\n"
            "if (\n"
            f"    mc._count >= {s.mc_limit}\n"
            f"    and msv_ones >= {s.msv_dilution}\n"
            "    and not queues_is_empty(core)\n"
            "):\n"
            "    engine._pending_target = -1\n"
            "    migrated = True\n"
            "    break",
            4,
        )
    elif s.has_slicc:
        e.emit(
            "if not mc_full:\n"
            "    mc._count += 1\n"
            "else:\n"
            f"    if msv_n == {s.msv_window}:\n"
            "        msv_ones -= msv_bits[0]\n"
            "    else:\n"
            "        msv_n += 1\n"
            "    msv_bits.append(1)\n"
            "    msv_ones += 1\n"
            "    mtq_entries.append(\n"
            f"        sig_masks[block & {s.sig_imask}] & presence_excl\n"
            "    )\n"
            "    if (\n"
            f"        msv_ones >= {s.msv_dilution}\n"
            f"        and len(mtq_entries) == {s.mtq_matched}\n"
            "    ):\n"
            "        if evaluate_migration(core, slicc_agent):\n"
            "            migrated = True\n"
            "            break\n"
            "        msv_n = len(msv_bits)\n"
            "        msv_ones = msv._ones",
            4,
        )
    e.emit("continue", 4)

    # ---- data record (level 3) ----
    e.emit(
        "d_n += 1\n"
        "if page == dtlb_last:\n"
        "    pass\n"
        "elif page in dtlb_map:\n"
        "    dtlb_map.move_to_end(page)\n"
        "    dtlb_last = page\n"
        "else:\n"
        "    dtlb_m += 1\n"
        "    dtlb_map[page] = None\n"
        "    dtlb_last = page\n"
        f"    if len(dtlb_map) > {s.dtlb_entries}:\n"
        "        dtlb_map.popitem(last=False)\n"
        f"    tlb_cycles += {s.dtlb_pen}",
        3,
    )
    if s.has_dp:
        e.emit("dp_hist.append(block)", 3)
    e.emit(
        f"set_idx = block & {s.l1d_set_mask}\n"
        "index = l1d_index[set_idx]\n"
        "way = index.get(block)\n"
        "if way is not None:\n"
        "    hi = l1d_hi[set_idx] + 1\n"
        "    l1d_hi[set_idx] = hi\n"
        "    l1d_ages[set_idx][way] = hi",
        3,
    )
    if s.has_cls:
        e.emit(
            "    if block in dcls_shadow:\n"
            "        dcls_shadow.move_to_end(block)\n"
            "    else:\n"
            "        dcls_shadow[block] = None\n"
            f"        if len(dcls_shadow) > {s.dcls_cap}:\n"
            "            dcls_shadow.popitem(last=False)",
            3,
        )
    e.emit(
        "    if k == 2:\n"  # KIND_STORE (asserted at import)
        "        sharers = dir_sharers.get(block)\n"
        "        if sharers is None:\n"
        "            dir_sharers[block] = {core}\n"
        "        elif len(sharers) == 1 and core in sharers:\n"
        "            pass\n"
        "        else:\n"
        "            directory_on_write(core, block)\n"
        "    continue\n"
        "d_m += 1",
        3,
    )
    if s.has_dp:
        e.emit(
            "if dp_pending and block in dp_pending:\n"
            "    dp_pending.discard(block)\n"
            "    dp_useful += 1",
            3,
        )
    if s.has_cls:
        e.emit(
            "if block in dcls_shadow:\n"
            "    dcls_shadow.move_to_end(block)\n"
            "    if block not in dcls_seen:\n"
            "        dcls_seen.add(block)\n"
            "        dcls_comp += 1\n"
            "    else:\n"
            "        dcls_conf += 1\n"
            "else:\n"
            "    dcls_shadow[block] = None\n"
            f"    if len(dcls_shadow) > {s.dcls_cap}:\n"
            "        dcls_shadow.popitem(last=False)\n"
            "    if block not in dcls_seen:\n"
            "        dcls_seen.add(block)\n"
            "        dcls_comp += 1\n"
            "    else:\n"
            "        dcls_capc += 1",
            3,
        )
    if s.l1d_evict_dir:
        d_evict_arm = (
            "    vs = dir_sharers.get(victim)\n"
            "    if vs is not None:\n"
            "        vs.discard(core)\n"
            "        if not vs:\n"
            "            del dir_sharers[victim]\n"
        )
    elif s.l1d_evict_generic:
        d_evict_arm = "    l1d_on_evict(victim)\n"
    else:
        d_evict_arm = ""
    e.emit(
        f"if len(index) < {s.l1d_assoc}:\n"
        "    tags = l1d_tags[set_idx]\n"
        "    way = tags.index(None)\n"
        "else:\n"
        "    ages = l1d_ages[set_idx]\n"
        "    way = ages.index(min(ages))\n"
        "    tags = l1d_tags[set_idx]\n"
        "    victim = tags[way]\n"
        "    del index[victim]\n"
        "    d_ev += 1\n"
        + d_evict_arm
        + "tags[way] = block\n"
        "index[block] = way\n"
        "hi = l1d_hi[set_idx] + 1\n"
        "l1d_hi[set_idx] = hi\n"
        "l1d_ages[set_idx][way] = hi",
        3,
    )
    if not s.has_nuca:
        e.emit(
            "if block in l2_seen:\n"
            "    in_l2 = True\n"
            "else:\n"
            "    l2_seen.add(block)\n"
            "    in_l2 = False",
            3,
        )
    else:
        e.emit(
            f"bank = block % {s.n_banks}\n"
            f"local = block // {s.n_banks}\n"
            "(\n"
            "    b_index,\n"
            "    b_tags,\n"
            "    b_ages,\n"
            "    b_hi,\n"
            "    b_mask,\n"
            "    b_assoc,\n"
            ") = nuca_hot[bank]\n"
            "nuca_acc[bank] += 1\n"
            "b_set = local & b_mask\n"
            "b_dict = b_index[b_set]\n"
            "b_way = b_dict.get(local)\n"
            "if b_way is not None:\n"
            "    h = b_hi[b_set] + 1\n"
            "    b_hi[b_set] = h\n"
            "    b_ages[b_set][b_way] = h\n"
            "    in_l2 = True\n"
            "else:\n"
            "    nuca_miss_ct[bank] += 1\n"
            "    if len(b_dict) < b_assoc:\n"
            "        b_t = b_tags[b_set]\n"
            "        b_way = b_t.index(None)\n"
            "    else:\n"
            "        b_a = b_ages[b_set]\n"
            "        b_way = b_a.index(min(b_a))\n"
            "        b_t = b_tags[b_set]\n"
            "        del b_dict[b_t[b_way]]\n"
            "        nuca_ev[bank] += 1\n"
            "    b_t[b_way] = local\n"
            "    b_dict[local] = b_way\n"
            "    h = b_hi[b_set] + 1\n"
            "    b_hi[b_set] = h\n"
            "    b_ages[b_set][b_way] = h\n"
            "    in_l2 = False",
            3,
        )
    e.emit(
        "if k == 2:\n"
        f"    d_stall_cycles += {s.d_store_l2} if in_l2 else {s.d_store_mem}\n"
        "    sharers = dir_sharers.get(block)\n"
        "    if sharers is None:\n"
        "        dir_sharers[block] = {core}\n"
        "    elif len(sharers) == 1 and core in sharers:\n"
        "        pass\n"
        "    else:\n"
        "        directory_on_write(core, block)\n"
        "else:\n"
        f"    d_stall_cycles += {s.d_load_l2} if in_l2 else {s.d_load_mem}\n"
        "    sharers = dir_sharers.get(block)\n"
        "    if sharers is None:\n"
        "        dir_sharers[block] = {core}\n"
        "    else:\n"
        "        sharers.add(core)",
        3,
    )

    # ---- quantum flush (level 2) ----
    e.emit("\n    state.pos = pos", 1)
    if s.has_slicc:
        e.emit("    engine._bypass_tick = bypass_tick", 1)
    if has_msv:
        e.emit("    msv._ones = msv_ones", 1)
    e.emit(
        "    l1i_stats.accesses += i_n\n"
        "    l1i_stats.misses += i_m\n"
        "    l1i_stats.evictions += i_ev",
        1,
    )
    if s.has_pf:
        e.emit(
            "    pf.issued += pf_issued\n"
            "    pf.useful += pf_useful\n"
            "    l1i_stats.prefetch_fills += i_pf",
            1,
        )
    if s.has_cls:
        e.emit(
            "    i_cls.accesses += i_n\n"
            "    counts = i_cls.counts\n"
            "    counts[_MC_COMPULSORY] += icls_comp\n"
            "    counts[_MC_CAPACITY] += icls_capc\n"
            "    counts[_MC_CONFLICT] += icls_conf",
            1,
        )
    e.emit(
        "    l1d_stats.accesses += d_n\n"
        "    l1d_stats.misses += d_m\n"
        "    l1d_stats.evictions += d_ev",
        1,
    )
    if s.has_cls:
        e.emit(
            "    d_cls.accesses += d_n\n"
            "    counts = d_cls.counts\n"
            "    counts[_MC_COMPULSORY] += dcls_comp\n"
            "    counts[_MC_CAPACITY] += dcls_capc\n"
            "    counts[_MC_CONFLICT] += dcls_conf",
            1,
        )
    if s.has_dp:
        e.emit(
            "    if dp_useful:\n"
            "        dp.useful += dp_useful",
            1,
        )
    e.emit(
        "    itlb.accesses += i_n\n"
        "    itlb.misses += itlb_m\n"
        "    dtlb.accesses += d_n\n"
        "    dtlb.misses += dtlb_m\n"
        f"    base_cycles = {s.ibase} * i_n + {s.dbase} * d_n\n"
        "    engine.cycles_base += base_cycles\n"
        "    cycles = base_cycles + tlb_cycles + i_stall_cycles + d_stall_cycles\n"
        "    engine.cycles_tlb += tlb_cycles\n"
        "    engine.cycles_i_stall += i_stall_cycles\n"
        "    engine.cycles_d_stall += d_stall_cycles\n"
        "    clocks[core] += cycles\n"
        "    engine.busy_cycles += cycles\n",
        1,
    )

    # ---- scheduling tail (level 2) ----
    first = "if"
    if has_mig:
        # SLICC's evaluate_migration always stages a real core target;
        # only the STEPS arm stages -1 — fold the dispatch per config.
        if s.has_steps:
            action = "steps_switch(core)"
        else:
            action = "migrate(core, engine._pending_target)"
        e.emit(f"    if migrated:\n        {action}", 1)
        first = "elif"
    e.emit(
        f"    {first} state.pos >= n_records:\n"
        "        complete(core, clocks[core])",
        1,
    )
    if s.policy_quantum:
        e.emit(
            "    else:\n"
            "        target = policy_quantum_end(core)\n"
            "        if target is not None:\n"
            "            migrate(core, target)",
            1,
        )
    e.emit(
        "\n"
        "    if running[core] is not None or not queues_is_empty(core):\n"
        "        activate(core, clocks[core])",
        1,
    )

    # ---- end of run: batched NUCA bank-stat flush (level 1) ----
    if s.has_nuca:
        e.emit(
            "\n"
            "for bank, cache in enumerate(machine.nuca._banks):\n"
            "    stats = cache.stats\n"
            "    stats.accesses += nuca_acc[bank]\n"
            "    stats.misses += nuca_miss_ct[bank]\n"
            "    stats.evictions += nuca_ev[bank]\n"
            "    nuca_acc[bank] = nuca_miss_ct[bank] = nuca_ev[bank] = 0",
            1,
        )
    return e.source()


# ----------------------------------------------------------------------
# Compilation, memoisation, dump and AOT
# ----------------------------------------------------------------------

#: Process-wide kernel memo. Populated pre-fork by the Runner so worker
#: processes inherit compiled kernels through the forked address space.
_KERNEL_CACHE: dict[KernelSpec, Callable] = {}


def clear_cache() -> None:
    """Drop all memoised kernels (tests only)."""
    _KERNEL_CACHE.clear()


def _exec_kernel(source: str, sig: str) -> Callable:
    namespace: dict = {"__name__": f"repro_specialized_{sig}"}
    code = compile(source, f"<specialized:{sig}>", "exec")
    exec(code, namespace)
    return namespace["kernel"]


def _aot_kernel(source: str, sig: str):
    """Best-effort ahead-of-time compilation of the generated module.

    Tries mypyc first, then Cython, building into a per-config cache
    directory; any failure (no toolchain, compiler error, import error)
    returns None and the caller falls back to the exec'd kernel. The
    cache is keyed by the source signature, so a rebuilt config reuses
    an existing extension without recompiling.
    """
    import importlib.machinery
    import importlib.util
    import subprocess
    import sys
    from pathlib import Path

    try:
        cache_root = os.environ.get("REPRO_SPECIALIZE_CACHE")
        cache = (
            Path(cache_root)
            if cache_root
            else Path.home() / ".cache" / "repro-specialize"
        )
        cache.mkdir(parents=True, exist_ok=True)
        mod_name = f"repro_specialized_{sig}"

        def _load_built():
            for suffix in importlib.machinery.EXTENSION_SUFFIXES:
                built = cache / f"{mod_name}{suffix}"
                if built.exists():
                    ext_spec = importlib.util.spec_from_file_location(
                        mod_name, built
                    )
                    module = importlib.util.module_from_spec(ext_spec)
                    ext_spec.loader.exec_module(module)
                    return module.kernel
            return None

        fn = _load_built()
        if fn is not None:
            return fn
        src_path = cache / f"{mod_name}.py"
        src_path.write_text(source)
        for backend in ("mypyc", "Cython"):
            if importlib.util.find_spec(backend) is None:
                continue
            if backend == "mypyc":
                setup_body = (
                    "from setuptools import setup\n"
                    "from mypyc.build import mypycify\n"
                    f"setup(ext_modules=mypycify([{str(src_path)!r}]))\n"
                )
            else:
                setup_body = (
                    "from setuptools import setup\n"
                    "from Cython.Build import cythonize\n"
                    f"setup(ext_modules=cythonize([{str(src_path)!r}], "
                    "language_level=3))\n"
                )
            setup_path = cache / f"setup_{sig}.py"
            setup_path.write_text(setup_body)
            result = subprocess.run(
                [
                    sys.executable,
                    str(setup_path),
                    "build_ext",
                    "--build-lib",
                    str(cache),
                ],
                cwd=str(cache),
                capture_output=True,
                timeout=600,
            )
            if result.returncode != 0:
                continue
            fn = _load_built()
            if fn is not None:
                return fn
        return None
    except Exception:
        return None


def kernel_for(spec: KernelSpec) -> Callable:
    """The compiled kernel for ``spec`` (memoised per process)."""
    fn = _KERNEL_CACHE.get(spec)
    dump_dir = os.environ.get("REPRO_SPECIALIZE_DUMP")
    if fn is not None and not dump_dir:
        return fn
    sig = signature(spec)
    source = generate_source(spec)
    if dump_dir:
        from pathlib import Path

        out = Path(dump_dir)
        out.mkdir(parents=True, exist_ok=True)
        path = out / f"{sig}.py"
        if not path.exists():
            path.write_text(source)
    if fn is None:
        if os.environ.get("REPRO_SPECIALIZE_AOT"):
            fn = _aot_kernel(source, sig)
        if fn is None:
            fn = _exec_kernel(source, sig)
        _KERNEL_CACHE[spec] = fn
    return fn


def kernel_for_engine(engine) -> Callable:
    """Extract the engine's run constants and return its kernel."""
    return kernel_for(spec_from_engine(engine))
