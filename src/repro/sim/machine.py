"""The simulated machine: cores, caches, signatures, directory, torus, L2.

``Machine`` assembles the Table 2 hardware for one simulation run and
wires the cross-component callbacks (L1-D evictions inform the coherence
directory; L1-I evictions update the bloom signature). The shared L2 is
modelled as effectively infinite: 16MB holds every instruction and data
footprint we generate, so a block's first-ever touch goes to memory and
every later L1 miss hits in the L2. This matches the paper's machine for
all reported metrics (the L2 never thrashes in their runs either).
"""

from __future__ import annotations

from functools import partial
from typing import Optional

from repro.cache.cache import SetAssociativeCache
from repro.cache.nuca import NucaL2
from repro.coherence.mesi import Directory
from repro.core.signature import BloomSignature, SignatureSet
from repro.interconnect.torus import Torus2D
from repro.params import CacheParams, SliccParams, SystemParams
from repro.sim.tlb import Tlb

#: TLB sizes: I-TLB covers typical OLTP code footprints (so migration does
#: not disturb it — Section 5.5 reports +/-0.5%); the D-TLB is half the
#: size over a much larger data footprint, hence its 8-11% sensitivity.
ITLB_ENTRIES = 128
DTLB_ENTRIES = 64


class Machine:
    """All hardware state for one simulation run."""

    def __init__(
        self,
        system: SystemParams,
        slicc: Optional[SliccParams] = None,
        l1i_params: Optional[CacheParams] = None,
        with_signatures: bool = False,
        model_l2_capacity: bool = False,
    ) -> None:
        self.system = system
        self.n_cores = system.n_cores
        self.torus = Torus2D(system.torus_width, system.migration_hop_cycles)

        i_params = l1i_params if l1i_params is not None else system.l1i
        self.l1i_params = i_params

        self.l1i: list[SetAssociativeCache] = []
        self.l1d: list[SetAssociativeCache] = []
        self.itlb: list[Tlb] = []
        self.dtlb: list[Tlb] = []
        for core in range(self.n_cores):
            self.l1i.append(SetAssociativeCache(i_params, name=f"core{core}.l1i"))
            self.l1d.append(SetAssociativeCache(system.l1d, name=f"core{core}.l1d"))
            self.itlb.append(Tlb(ITLB_ENTRIES))
            self.dtlb.append(Tlb(DTLB_ENTRIES))

        self.directory = Directory(self.l1d)
        for core in range(self.n_cores):
            # partial() rather than a lambda: the directory must know
            # which core dropped the block, and partial dispatches from C
            # without an intermediate Python frame per eviction.
            self.l1d[core].on_evict = partial(self.directory.on_evict, core)

        self.signatures: Optional[list[BloomSignature]] = None
        self.signature_set: Optional[SignatureSet] = None
        if with_signatures:
            if slicc is None:
                raise ValueError("signatures need SliccParams for bloom size")
            # One transposed store shared by every core's filter: the
            # remote segment search reads all cores in a single lookup.
            self.signature_set = SignatureSet(slicc.bloom_bits)
            self._sig_index_mask = slicc.bloom_bits - 1
            self.signatures = []
            for core in range(self.n_cores):
                sig = BloomSignature(
                    slicc.bloom_bits,
                    self.l1i[core],
                    shared=self.signature_set,
                    core=core,
                )
                self.l1i[core].on_evict = sig.on_evict
                self.signatures.append(sig)

        #: Blocks ever brought on chip: "in L2" for the timing model.
        self._l2_seen: set[int] = set()
        #: Optional banked NUCA L2 (Table 2 fidelity); None keeps the
        #: infinite-L2 approximation that DESIGN.md §3 justifies.
        self.nuca: Optional[NucaL2] = (
            NucaL2(self.torus) if model_l2_capacity else None
        )

    # ------------------------------------------------------------------

    def l2_touch(self, block: int) -> bool:
        """Record an L1 miss reaching the L2; True if the L2 already had
        the block (i.e. this is not its first on-chip fetch)."""
        if block in self._l2_seen:
            return True
        self._l2_seen.add(block)
        return False

    def presence_mask(self, block: int, exclude: int, cores_mask: int) -> int:
        """Which cores of ``cores_mask`` (bloom-)report caching ``block``.

        This is the remote cache segment search of Section 4.2.3: the
        answer comes from the approximate signatures, not the caches, so
        false positives are possible exactly as in hardware. Thanks to
        the transposed :class:`SignatureSet` the whole-chip search is one
        list lookup fused with the core restriction — not a probe loop.
        """
        assert self.signature_set is not None, "machine built without signatures"
        return (
            self.signature_set.masks[block & self._sig_index_mask]
            & cores_mask
            & ~(1 << exclude)
        )

    def signature_insert(self, core: int, block: int) -> None:
        """Mirror a fill into the core's signature (if signatures exist)."""
        if self.signatures is not None:
            self.signatures[core].insert(block)

    # ------------------------------------------------------------------
    # Aggregation helpers
    # ------------------------------------------------------------------

    def total_i_misses(self) -> int:
        """Demand L1-I misses summed over cores."""
        return sum(c.stats.misses for c in self.l1i)

    def total_d_misses(self) -> int:
        """Demand L1-D misses summed over cores."""
        return sum(c.stats.misses for c in self.l1d)

    def total_i_accesses(self) -> int:
        """L1-I references summed over cores."""
        return sum(c.stats.accesses for c in self.l1i)

    def total_d_accesses(self) -> int:
        """L1-D references summed over cores."""
        return sum(c.stats.accesses for c in self.l1d)
