"""Vectorised batch replay kernel (the structure-of-arrays fast path).

The inline loop in :mod:`repro.sim.engine` pays CPython interpretation
cost per *record*. This kernel pays it per *event* (miss, store,
same-page run boundary, tracker decision) and handles everything between
events with numpy array passes over the quantum window:

1. **Predict**: gather each record's cache row from the core's mirrored
   tag matrix and compare against the block id — one ``(m, ways)``
   equality pass yields the hit mask for the whole remaining window.
2. **Conflict walk**: the predictions are valid only until a row is
   touched after a miss filled it (hits never invalidate a prediction —
   they change recency, not membership), so a python walk cuts the
   window into *passes* with at most one fill per row. Every predicted
   miss conservatively counts as filling.
3. **Tracker scan** (SLICC/STEPS only): replays the miss-counter /
   shift-vector / missed-tag-queue bookkeeping over the pass's
   instruction misses, using prefix sums to extend the MSV with the hit
   runs between misses in O(1) per gap, and evaluates migration at
   exactly the records the inline loop would.
4. **Stamps and fills**: hit recency stamps scatter in one fancy
   assignment (strictly increasing per-core stamps reproduce the
   age-counter LRU order exactly — see the proof in
   ``cache/policies/lru.py``); victims for all of the pass's fills are
   then chosen in one batched ``argmin`` (sound because no record
   follows a fill on the same row within a pass).
5. **Event loop**: a python walk over the pass's misses and stores, in
   position order, applies the shared-state effects — L2/memory
   penalties, bloom signature insert/evict, and directory read / write /
   evict with the same dict-and-set operations (including
   ``Directory.on_write``'s documented orphaned-sharer-set quirk) as the
   inline loop, so coherence state stays byte-identical.
6. **TLB runs**: the SoA tables precompute where the page id changes
   within each record-kind subsequence; the TLB is only consulted at
   run starts (plus one forced access per dispatch, mirroring the
   inline loop's per-dispatch ``last page`` reset).

The kernel mirrors each core's two L1s as one stacked ``(i_sets +
d_sets, ways)`` int64 tag matrix plus a same-shape recency-stamp matrix;
the caches' python state is left untouched (only their stats objects are
flushed, which is all result collection reads). Numpy is an optional
accelerator: when it is missing the engine keeps the pure-python inline
loop, and ``REPRO_NO_BATCH=1`` forces the same for CI.

**Measured result (and why this is not the default kernel).** The
design premise — "the miss residue is typically <10% of records" — does
not hold for the paper's traces: SLICC studies the L1-I *thrash* regime,
and the standard workloads measure 35-99.9% instruction-miss rates at CI
scale (tpcc-10 52.5%, phased 52.5%, tpce 35.1%, webserve 99.9%). Misses
serially mutate the tag state the passes probe, so at the paper's
50-record quantum the conflict walk yields ~5 passes of ~10 records,
and numpy's fixed per-call cost never amortises: the batch kernel
measures ~0.27x of the inline loop on tpcc-10/slicc (see BENCH_6.json).
``kernel="auto"`` therefore resolves to the inline loop; the batch
kernel stays available via ``kernel="batch"`` as a bit-identical
alternative backend (it wins only when a quantum is nearly all hits,
which these traces never approach). All of this is quantified in
DESIGN.md's kernel-selection section.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from itertools import islice

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy is present in the image
    np = None

from repro.sim.tlb import PAGE_SHIFT
from repro.workloads.trace import KIND_INSTR

#: Recency sentinel for the padding ways of the narrower cache when the
#: two L1s have different associativity: never chosen by ``argmin``.
_PAD_AGE = 1 << 62

#: Merge sentinel beyond any record position.
_HUGE = 1 << 60

#: Zero-run template for MSV hit-gap extension (a quantum never extends
#: the MSV by more than ``quantum`` zeros at once).
_ZEROS = (0,) * 256


def numpy_available() -> bool:
    """True when the optional numpy accelerator can be used."""
    return np is not None


def _scatter_last_wins() -> bool:
    """Check that fancy assignment with duplicate indices keeps the last
    value (numpy's documented ``np.put``-style in-order semantics). The
    hit-stamp scatter relies on it; if a numpy build ever changed this,
    the engine falls back to the inline loop rather than risk drift.
    """
    probe = np.zeros(3, dtype=np.int64)
    probe[np.array([1, 1, 2])] = np.array([5, 7, 9], dtype=np.int64)
    return int(probe[1]) == 7


class BatchKernel:
    """Per-engine batch execution state: one dispatch() call per quantum.

    Built only for eligible configurations (see
    ``ReplayEngine._batch_blockers``): LRU L1s, no prefetchers, no miss
    classifiers, no banked NUCA, no migration data prefetcher, and a
    policy whose ``batch_kernel_safe`` flag is set.
    """

    def __init__(self, engine) -> None:
        if np is None:
            raise RuntimeError("BatchKernel requires numpy")
        if not _scatter_last_wins():  # pragma: no cover - defensive
            raise RuntimeError("numpy scatter is not last-wins")
        self.engine = engine
        machine = engine.machine
        system = engine.config.system
        n = system.n_cores

        i_params = machine.l1i_params
        d_params = system.l1d
        self.nis = i_params.n_sets
        self.nds = d_params.n_sets
        self.i_assoc = i_params.assoc
        self.d_assoc = d_params.assoc
        self.width = max(self.i_assoc, self.d_assoc)
        self.i_mask = self.nis - 1
        self.d_mask = self.nds - 1
        self.geometry = (PAGE_SHIFT, self.nis, self.nds, self.width)

        # Per-core mirrors: stacked L1-I + L1-D tag matrix (I rows
        # first), recency stamps, per-row occupancy, and the strictly
        # increasing per-core stamp counter. Initialised from the
        # caches' batch_export so a warm cache (not the engine's case,
        # but the entry point's contract) would mirror correctly.
        width = self.width
        self.tags: list[np.ndarray] = []
        self.tflat: list[np.ndarray] = []
        self.aflat: list[np.ndarray] = []
        self.occ: list[list[int]] = []
        self.stamp = [1] * n
        for core in range(n):
            ti, occ_i = machine.l1i[core].batch_export(width)
            td, occ_d = machine.l1d[core].batch_export(width)
            tags = np.vstack([ti, td])
            ages = np.zeros(tags.shape, dtype=np.int64)
            if self.i_assoc < width:
                ages[: self.nis, self.i_assoc:] = _PAD_AGE
            if self.d_assoc < width:
                ages[self.nis:, self.d_assoc:] = _PAD_AGE
            self.tags.append(tags)
            self.tflat.append(tags.reshape(-1))
            self.aflat.append(ages.reshape(-1))
            self.occ.append(occ_i + occ_d)
        self.ages = [a.reshape(self.nis + self.nds, width) for a in self.aflat]

        timing = engine.timing
        self._timing = (
            timing.ibase,
            timing.dbase,
            timing.itlb_miss,
            timing.dtlb_miss,
            timing.i_miss_l2,
            timing.i_miss_mem,
            timing.d_load_l2,
            timing.d_load_mem,
            timing.d_store_l2,
            timing.d_store_mem,
        )
        self.directory = machine.directory
        self.dir_sharers = machine.directory._sharers
        self.l2_seen = machine._l2_seen
        self.l1d_stats = [machine.l1d[core].stats for core in range(n)]
        self.quantum = engine.config.quantum
        self._queues_is_empty = engine.queues.is_empty
        # Resolved once: engine is fully imported by construction time
        # (dispatch used to re-import this per quantum).
        from repro.sim.engine import BYPASS_REPAIR_RATE

        self._bypass_rate = BYPASS_REPAIR_RATE

        # Compact per-core tuple of the shared-state references each
        # dispatch unpacks (subset of the engine's _CoreHot).
        self._hot = []
        for core in range(n):
            h = engine._core_hot[core]
            self._hot.append((
                h.l1i_stats, h.l1d_stats,
                h.itlb, h.itlb_entries, h.dtlb, h.dtlb_entries,
                h.sig_masks, h.sig_imask, h.sig_bit, h.presence_excl,
                h.slicc_agent, h.steps_agent,
                h.mc, h.mc_limit,
                h.msv, h.msv_bits, h.msv_window, h.msv_dilution,
                h.mtq_entries, h.mtq_matched,
            ))

    # ------------------------------------------------------------------
    # Directory mirrors (coherence effects without touching the python
    # cache state the batch mode bypasses)
    # ------------------------------------------------------------------

    def _invalidate(self, other: int, block: int) -> None:
        """Mirror of ``SetAssociativeCache.invalidate`` + its on_evict
        hook (``Directory.on_evict``) against core ``other``'s tag
        matrix. LRU keeps no invalidation state, so the stale recency
        stamp is left in place — exactly like the python cache (see the
        empty-way-first note in ``cache/policies/lru.py``)."""
        row = self.nis + (block & self.d_mask)
        base = row * self.width
        tflat = self.tflat[other]
        trow = tflat[base: base + self.d_assoc]
        eq = trow == block
        if not eq.any():
            return
        tflat[base + int(eq.argmax())] = -1
        self.occ[other][row] -= 1
        self.l1d_stats[other].invalidations += 1
        sharers = self.dir_sharers.get(block)
        if sharers is not None:
            sharers.discard(other)
            if not sharers:
                del self.dir_sharers[block]

    def _dir_write(self, core: int, block: int) -> None:
        """Mirror of ``Directory.on_write``: the engine's inline fast
        cases plus the invalidation slow path, byte-identical including
        the orphaned-sharer-set quirk documented in coherence/mesi.py
        (the dict/set operations run in the same order on the same
        objects)."""
        dir_sharers = self.dir_sharers
        sharers = dir_sharers.get(block)
        if sharers is None:
            dir_sharers[block] = {core}
            return
        if len(sharers) == 1 and core in sharers:
            return
        has_remote = False
        for other in sharers:
            if other != core:
                has_remote = True
                break
        if has_remote:
            invalidated = 0
            for other in list(sharers):
                if other == core:
                    continue
                self._invalidate(other, block)
                sharers.discard(other)
                invalidated += 1
            self.directory.invalidations_sent += invalidated
        sharers.add(core)

    # ------------------------------------------------------------------
    # The quantum
    # ------------------------------------------------------------------

    def dispatch(self, core: int, thread_id: int, state) -> bool:
        """Execute one quantum of ``thread_id`` on ``core``.

        Returns True when the quantum ended in a staged migration /
        context switch (``engine._pending_target`` is set), mirroring
        the inline loop's ``migrated`` flag. Flushes stats, cycle
        categories and the core clock exactly like the inline flush.
        """
        engine = self.engine
        BYPASS_REPAIR_RATE = self._bypass_rate
        (
            l1i_stats, l1d_stats,
            itlb, itlb_entries, dtlb, dtlb_entries,
            sig_masks, sig_imask, sig_bit, presence_excl,
            slicc_agent, steps_agent,
            mc, mc_limit,
            msv, msv_bits, msv_window, msv_dilution,
            mtq_entries, mtq_matched,
        ) = self._hot[core]
        (
            ibase, dbase, itlb_pen, dtlb_pen,
            i_miss_l2, i_miss_mem,
            d_load_l2, d_load_mem, d_store_l2, d_store_mem,
        ) = self._timing

        trace = state.trace
        (
            row_arr, flat_arr, nib, sposl, ipos, dpos,
            irun_pos, irun_page, drun_pos, drun_page,
        ) = trace.batch_tables(*self.geometry)
        addr_l = state.addr
        kind_l = state.kind
        s = state.pos
        e = s + self.quantum
        n_records = len(addr_l)
        if e > n_records:
            e = n_records
        win = e - s

        tags2 = self.tags[core]
        tflat = self.tflat[core]
        aflat = self.aflat[core]
        ages2 = self.ages[core]
        occ = self.occ[core]
        stamp0 = self.stamp[core]
        width = self.width
        nis = self.nis
        i_assoc = self.i_assoc
        d_assoc = self.d_assoc
        dir_sharers = self.dir_sharers
        l2_seen = self.l2_seen

        rowv = row_arr[s:e]
        fv = flat_arr[s:e]
        bv = trace.addr[s:e]

        bypass_tick = engine._bypass_tick
        if msv is not None:
            msv_n = len(msv_bits)
            msv_ones = msv._ones
        mc_count = mc._count if mc is not None else 0
        i_m = d_m = i_ev = d_ev = 0
        i_stall = d_stall = tlb_cycles = 0
        migrated = False

        # TLB dispatch state: first I/D record of the window (the
        # per-dispatch "last page" reset forces a full access there) and
        # the run cursors into the precomputed page-run lists.
        ii = int(np.searchsorted(ipos, s))
        i_first = int(ipos[ii]) if ii < len(ipos) else -1
        if i_first >= e:
            i_first = -1
        di = int(np.searchsorted(dpos, s))
        d_first = int(dpos[di]) if di < len(dpos) else -1
        if d_first >= e:
            d_first = -1
        i_forced = d_forced = False
        icur = dcur = 0
        n_irun = len(irun_pos)
        n_drun = len(drun_pos)

        sp = bisect_left(sposl, s)
        nsp = len(sposl)

        seg = 0
        while seg < win:
            m = win - seg
            gb = s + seg
            rv = rowv[seg:]
            cand = tags2[rv]
            eq = cand == bv[seg:, None]
            hitm = eq.any(1)
            hitl = hitm.tolist()
            rl = rv.tolist()

            # --- conflict walk: cut the pass at the first row touched
            # twice (conservatively treating every predicted miss as a
            # fill), collecting miss positions and kinds. ---
            touched = set()
            B = m
            mrel: list[int] = []
            mkind: list[bool] = []
            for j in range(m):
                r = rl[j]
                if r in touched:
                    B = j
                    break
                if not hitl[j]:
                    touched.add(r)
                    mrel.append(j)
                    mkind.append(kind_l[gb + j] == KIND_INSTR)
            Bc = B

            # --- tracker scan over the pass's instruction misses:
            # replays MC / bypass / MSV / MTQ / migration bookkeeping.
            # ``ifills`` is None when every miss fills (no agent, or
            # STEPS which never bypasses); otherwise one flag per
            # instruction miss in order. ---
            ifills: list | None = None
            if slicc_agent is not None:
                ifills = []
                prev_abs = gb
                for idx in range(len(mrel)):
                    if not mkind[idx]:
                        continue
                    p = mrel[idx]
                    pa = gb + p
                    gap = int(nib[pa]) - int(nib[prev_abs])
                    if gap and mc_count >= mc_limit:
                        # Hit run with the cache full: each hit bumps
                        # the bypass tick and shifts a 0 into the MSV.
                        bypass_tick += gap
                        if msv_n + gap > msv_window:
                            popped = msv_n + gap - msv_window
                            msv_ones -= sum(islice(msv_bits, popped))
                            msv_n = msv_window
                        else:
                            msv_n += gap
                        msv_bits.extend(_ZEROS[:gap])
                    prev_abs = pa + 1
                    if mc_count < mc_limit:
                        # Filling mode: the miss installs and counts.
                        ifills.append(True)
                        mc_count += 1
                        continue
                    # Segment-protection bypass + tracker (saturated).
                    bypass_tick += 1
                    ifills.append(bypass_tick % BYPASS_REPAIR_RATE == 0)
                    if msv_n == msv_window:
                        msv_ones -= msv_bits[0]
                    else:
                        msv_n += 1
                    msv_bits.append(1)
                    msv_ones += 1
                    mtq_entries.append(
                        sig_masks[addr_l[pa] & sig_imask] & presence_excl
                    )
                    if (
                        msv_ones >= msv_dilution
                        and len(mtq_entries) == mtq_matched
                    ):
                        mc._count = mc_count
                        if engine._evaluate_migration(core, slicc_agent):
                            migrated = True
                            Bc = p + 1
                            break
                        # STAY: the agent reset its trackers in place.
                        mc_count = mc._count
                        msv_n = len(msv_bits)
                        msv_ones = msv._ones
                if not migrated:
                    gap = int(nib[gb + Bc]) - int(nib[prev_abs])
                    if gap and mc_count >= mc_limit:
                        bypass_tick += gap
                        if msv_n + gap > msv_window:
                            popped = msv_n + gap - msv_window
                            msv_ones -= sum(islice(msv_bits, popped))
                            msv_n = msv_window
                        else:
                            msv_n += gap
                        msv_bits.extend(_ZEROS[:gap])
            elif steps_agent is not None:
                prev_abs = gb
                for idx in range(len(mrel)):
                    if not mkind[idx]:
                        continue
                    p = mrel[idx]
                    pa = gb + p
                    gap = int(nib[pa]) - int(nib[prev_abs])
                    if gap and mc_count >= mc_limit:
                        if msv_n + gap > msv_window:
                            popped = msv_n + gap - msv_window
                            msv_ones -= sum(islice(msv_bits, popped))
                            msv_n = msv_window
                        else:
                            msv_n += gap
                        msv_bits.extend(_ZEROS[:gap])
                    prev_abs = pa + 1
                    if mc_count < mc_limit:
                        mc_count += 1
                    else:
                        if msv_n == msv_window:
                            msv_ones -= msv_bits[0]
                        else:
                            msv_n += 1
                        msv_bits.append(1)
                        msv_ones += 1
                    if (
                        mc_count >= mc_limit
                        and msv_ones >= msv_dilution
                        and not self._queues_is_empty(core)
                    ):
                        engine._pending_target = -1
                        migrated = True
                        Bc = p + 1
                        break
                if not migrated:
                    gap = int(nib[gb + Bc]) - int(nib[prev_abs])
                    if gap and mc_count >= mc_limit:
                        if msv_n + gap > msv_window:
                            popped = msv_n + gap - msv_window
                            msv_ones -= sum(islice(msv_bits, popped))
                            msv_n = msv_window
                        else:
                            msv_n += gap
                        msv_bits.extend(_ZEROS[:gap])

            # --- hit recency stamps: one scatter for the whole pass
            # (stamps are the pass positions offset by the per-core
            # counter — strictly increasing, so within any set they
            # reproduce the age-counter LRU order exactly). Applied
            # before victim selection so fills see current recency. ---
            hslice = hitm if Bc == m else hitm[:Bc]
            hpos = np.nonzero(hslice)[0]
            fvp = fv[seg: seg + Bc]
            if hpos.size:
                ways_h = eq[hpos].argmax(1)
                aflat[fvp[hpos] + ways_h] = stamp0 + hpos

            # --- batched fills: one victim argmin over all filling
            # misses (rows are unique within a pass, and no record
            # follows a fill on its row, so the choices are
            # independent). ---
            frel: list[int] = []
            mfill: list[bool] = []
            fi = 0
            nm = 0
            for idx in range(len(mrel)):
                p = mrel[idx]
                if p >= Bc:
                    break
                nm += 1
                if mkind[idx]:
                    fill = True if ifills is None else ifills[fi]
                    fi += 1
                else:
                    fill = True
                mfill.append(fill)
                if fill:
                    frel.append(p)
            if frel:
                fr = np.array(frel, dtype=np.int64)
                vrows_l = [rl[p] for p in frel]
                vrows = np.array(vrows_l, dtype=np.int64)
                full_l = [
                    occ[r] >= (i_assoc if r < nis else d_assoc)
                    for r in vrows_l
                ]
                trows = tags2[vrows]
                empty_way = (trows == -1).argmax(1)
                victim_way = ages2[vrows].argmin(1)
                ways_f = np.where(
                    np.array(full_l), victim_way, empty_way
                )
                victims = trows[np.arange(len(frel)), ways_f]
                fidx = fvp[fr] + ways_f
                tflat[fidx] = bv[seg + fr]
                aflat[fidx] = stamp0 + fr
                victims_l = victims.tolist()
                ways_l = ways_f.tolist()
                for filled_full, r in zip(full_l, vrows_l):
                    if not filled_full:
                        occ[r] += 1
            else:
                full_l = victims_l = ways_l = vrows_l = []

            # --- event loop: position-ordered shared-state effects for
            # misses and stores (penalties, bloom signature, coherence
            # directory), mirroring the inline loop's per-record
            # order. ---
            mi = 0
            vi = 0
            pass_end = gb + Bc
            while True:
                pm = gb + mrel[mi] if mi < nm else _HUGE
                ps = sposl[sp] if sp < nsp and sposl[sp] < pass_end else _HUGE
                if pm >= _HUGE and ps >= _HUGE:
                    break
                if pm <= ps:
                    is_instr = mkind[mi]
                    fill = mfill[mi]
                    mi += 1
                    block = addr_l[pm]
                    if is_instr:
                        i_m += 1
                        if fill:
                            if full_l[vi]:
                                victim = victims_l[vi]
                                i_ev += 1
                                if sig_masks is not None:
                                    # BloomSignature.on_evict: clear the
                                    # victim's bit unless a same-set
                                    # survivor shares the filter index.
                                    vidx = victim & sig_imask
                                    row0 = vrows_l[vi] * width
                                    way = ways_l[vi]
                                    trow = tflat[
                                        row0: row0 + i_assoc
                                    ].tolist()
                                    for w2 in range(i_assoc):
                                        if w2 == way:
                                            continue
                                        t2 = trow[w2]
                                        if t2 != -1 and t2 & sig_imask == vidx:
                                            break
                                    else:
                                        sig_masks[vidx] &= ~sig_bit
                            vi += 1
                        if block in l2_seen:
                            i_stall += i_miss_l2
                        else:
                            l2_seen.add(block)
                            i_stall += i_miss_mem
                        if fill and sig_masks is not None:
                            sig_masks[block & sig_imask] |= sig_bit
                    else:
                        d_m += 1
                        is_store = pm == ps
                        if is_store:
                            sp += 1
                        if full_l[vi]:
                            victim = victims_l[vi]
                            d_ev += 1
                            # Directory.on_evict, inlined.
                            vs = dir_sharers.get(victim)
                            if vs is not None:
                                vs.discard(core)
                                if not vs:
                                    del dir_sharers[victim]
                        vi += 1
                        if block in l2_seen:
                            in_l2 = True
                        else:
                            l2_seen.add(block)
                            in_l2 = False
                        if is_store:
                            d_stall += d_store_l2 if in_l2 else d_store_mem
                            self._dir_write(core, block)
                        else:
                            d_stall += d_load_l2 if in_l2 else d_load_mem
                            # Directory.on_read, inlined.
                            sharers = dir_sharers.get(block)
                            if sharers is None:
                                dir_sharers[block] = {core}
                            else:
                                sharers.add(core)
                else:
                    # Store hit: directory write only.
                    sp += 1
                    self._dir_write(core, addr_l[ps])

            # --- TLB: run starts inside the pass, plus the forced
            # first access of each stream (the inline loop resets its
            # "last page" local every dispatch). ---
            ipages: list[int] = []
            if i_first != -1 and i_first < pass_end:
                if not i_forced:
                    i_forced = True
                    c = bisect_right(irun_pos, i_first) - 1
                    ipages.append(irun_page[c])
                    icur = c + 1
                while icur < n_irun and irun_pos[icur] < pass_end:
                    ipages.append(irun_page[icur])
                    icur += 1
                if ipages:
                    tlb_cycles += itlb.access_pages(ipages) * itlb_pen
            dpages: list[int] = []
            if d_first != -1 and d_first < pass_end:
                if not d_forced:
                    d_forced = True
                    c = bisect_right(drun_pos, d_first) - 1
                    dpages.append(drun_page[c])
                    dcur = c + 1
                while dcur < n_drun and drun_pos[dcur] < pass_end:
                    dpages.append(drun_page[dcur])
                    dcur += 1
                if dpages:
                    tlb_cycles += dtlb.access_pages(dpages) * dtlb_pen

            stamp0 += Bc
            seg += Bc
            if migrated:
                break

        # --- flush (mirrors the inline loop's quantum flush) ---
        state.pos = s + seg
        i_n = int(nib[s + seg]) - int(nib[s])
        d_n = seg - i_n
        engine._bypass_tick = bypass_tick
        if mc is not None:
            mc._count = mc_count
        if msv is not None:
            msv._ones = msv_ones
        l1i_stats.accesses += i_n
        l1i_stats.misses += i_m
        l1i_stats.evictions += i_ev
        l1d_stats.accesses += d_n
        l1d_stats.misses += d_m
        l1d_stats.evictions += d_ev
        base_cycles = ibase * i_n + dbase * d_n
        engine.cycles_base += base_cycles
        itlb.accesses += i_n
        dtlb.accesses += d_n
        cycles = base_cycles + tlb_cycles + i_stall + d_stall
        engine.cycles_tlb += tlb_cycles
        engine.cycles_i_stall += i_stall
        engine.cycles_d_stall += d_stall
        engine.clock[core] += cycles
        engine.busy_cycles += cycles
        self.stamp[core] = stamp0
        return migrated
