"""Simulation engine: machine model, timing, replay loop, results.

``VARIANTS``/``SLICC_VARIANTS`` are deprecated compatibility re-exports
(the paper's original seven); the authoritative, growing variant list is
the scheduling-policy registry — ``repro.sched.policy_names()``.
"""

from repro.sim.engine import (
    SLICC_VARIANTS,
    VARIANTS,
    ReplayEngine,
    SimConfig,
    simulate,
)
from repro.sim.machine import Machine
from repro.sim.results import SimulationResult
from repro.sim.timing import TimingModel
from repro.sim.tlb import Tlb

__all__ = [
    "Machine",
    "ReplayEngine",
    "SLICC_VARIANTS",
    "SimConfig",
    "SimulationResult",
    "Tlb",
    "TimingModel",
    "VARIANTS",
    "simulate",
]
