"""Tiny fully-associative LRU TLB model.

Only used for the Section 5.5 side statistics (D-TLB misses rise ~8-11%
under migration, I-TLB stays flat). Pages are 4KB = 64 cache blocks.
"""

from __future__ import annotations

from collections import OrderedDict

#: log2(blocks per 4KB page).
PAGE_SHIFT = 6


class Tlb:
    """Fully-associative LRU TLB with ``entries`` slots.

    ``__slots__`` keeps the per-access attribute traffic cheap — the
    replay engine's inlined fast path also reaches straight into
    :attr:`_map` for the hit case, so the OrderedDict is the whole model.
    """

    __slots__ = ("entries", "_map", "accesses", "misses")

    def __init__(self, entries: int) -> None:
        if entries <= 0:
            raise ValueError("TLB needs at least one entry")
        self.entries = entries
        self._map: OrderedDict[int, None] = OrderedDict()
        self.accesses = 0
        self.misses = 0

    def access(self, block: int) -> bool:
        """Translate the page of ``block``; returns True on a TLB hit."""
        page = block >> PAGE_SHIFT
        self.accesses += 1
        if page in self._map:
            self._map.move_to_end(page)
            return True
        self.misses += 1
        self._map[page] = None
        if len(self._map) > self.entries:
            self._map.popitem(last=False)
        return False

    def access_pages(self, pages) -> int:
        """Batch entry point: translate a sequence of *page ids* (not
        block ids), returning the number of misses.

        The batch replay kernel only touches the TLB at same-page run
        boundaries; each run start is one ordinary LRU access. Misses
        are counted into :attr:`misses`, but :attr:`accesses` is *not*
        advanced — the kernel bulk-adds the true per-record access count
        at quantum flush, exactly like the engine's inline loop.
        """
        misses = 0
        tlb_map = self._map
        entries = self.entries
        for page in pages:
            if page in tlb_map:
                tlb_map.move_to_end(page)
            else:
                misses += 1
                tlb_map[page] = None
                if len(tlb_map) > entries:
                    tlb_map.popitem(last=False)
        self.misses += misses
        return misses

    def mpki(self, instructions: int) -> float:
        """TLB misses per kilo-instruction."""
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.misses / instructions
