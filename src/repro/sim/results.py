"""Simulation result container and derived metrics.

Every experiment in the paper reports some combination of I-MPKI, D-MPKI,
speedup over the baseline, migration/broadcast counts, and TLB deltas.
``SimulationResult`` carries the raw counts; all rates are derived
properties so they can never drift out of sync with the counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SimulationResult:
    """Aggregated outcome of one simulation run."""

    variant: str
    workload: str
    cycles: int
    instructions: int
    i_accesses: int
    i_misses: int
    d_accesses: int
    d_misses: int
    migrations: int = 0
    context_switches: int = 0
    broadcasts: int = 0
    invalidations: int = 0
    itlb_misses: int = 0
    dtlb_misses: int = 0
    threads_completed: int = 0
    segment_match_migrations: int = 0
    idle_core_migrations: int = 0
    stay_decisions: int = 0
    teams_completed: int = 0
    miss_class_mpki: dict = field(default_factory=dict)
    #: Cycle accounting: where the busy cycles went, plus core utilisation
    #: (busy cycles / (n_cores * makespan)). Diagnostic for calibration
    #: and the ablation benchmarks.
    cycles_base: int = 0
    cycles_i_stall: int = 0
    cycles_d_stall: int = 0
    cycles_migration: int = 0
    cycles_tlb: int = 0
    utilization: float = 0.0

    @property
    def instruction_stall_share(self) -> float:
        """Instruction stalls as a fraction of all stall cycles (the paper
        reports 70-85% for OLTP)."""
        stalls = self.cycles_i_stall + self.cycles_d_stall
        return self.cycles_i_stall / stalls if stalls else 0.0

    @property
    def i_mpki(self) -> float:
        """L1-I misses per kilo-instruction."""
        return 1000.0 * self.i_misses / self.instructions if self.instructions else 0.0

    @property
    def d_mpki(self) -> float:
        """L1-D misses per kilo-instruction."""
        return 1000.0 * self.d_misses / self.instructions if self.instructions else 0.0

    @property
    def total_mpki(self) -> float:
        """Combined L1 MPKI."""
        return self.i_mpki + self.d_mpki

    @property
    def bpki(self) -> float:
        """Remote-search broadcasts per kilo-instruction (Section 5.8)."""
        return 1000.0 * self.broadcasts / self.instructions if self.instructions else 0.0

    @property
    def itlb_mpki(self) -> float:
        """I-TLB misses per kilo-instruction."""
        return 1000.0 * self.itlb_misses / self.instructions if self.instructions else 0.0

    @property
    def dtlb_mpki(self) -> float:
        """D-TLB misses per kilo-instruction."""
        return 1000.0 * self.dtlb_misses / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        """Aggregate instructions per cycle (makespan-based)."""
        return self.instructions / self.cycles if self.cycles else 0.0

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Relative performance vs a baseline run of the same workload.

        The paper measures performance as the cycles to execute all
        transactions, so speedup is the baseline's makespan over ours.
        """
        if self.workload != baseline.workload:
            raise ValueError(
                f"speedup across different workloads: {self.workload} vs "
                f"{baseline.workload}"
            )
        if self.cycles == 0:
            return 0.0
        return baseline.cycles / self.cycles

    def instructions_per_migration(self) -> float:
        """Mean retired instructions between migrations (paper: ~3.2K)."""
        if self.migrations == 0:
            return float("inf")
        return self.instructions / self.migrations

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.workload}/{self.variant}: I-MPKI={self.i_mpki:.2f} "
            f"D-MPKI={self.d_mpki:.2f} cycles={self.cycles} "
            f"migrations={self.migrations} bpki={self.bpki:.3f}"
        )
