"""Stall-cycle timing model (the Zesto substitution — DESIGN.md section 6).

The engine charges cycles per trace record instead of simulating a
pipeline. The model keeps the paper's first-order structure:

* an instruction-block record costs its base cycles plus, on an L1-I
  miss, the full downstream latency plus a front-end refill — instruction
  misses starve the pipeline and cannot be hidden (Section 3.3);
* a data record costs one cycle plus, on an L1-D miss, the downstream
  latency *scaled by an overlap factor* — out-of-order execution absorbs
  most data-miss latency, stores more than loads;
* larger caches pay their extra hit latency on every access (the CACTI
  effect that caps Figure 1's speedups);
* a migration costs context save/restore through the L2, per-hop transfer
  on the torus, and a pipeline refill at the destination (Section 4.4).
"""

from __future__ import annotations

from repro.params import SystemParams


class TimingModel:
    """Precomputed cycle costs for one system configuration."""

    def __init__(self, system: SystemParams, l1i_hit_latency: int | None = None) -> None:
        self.system = system
        l1i_lat = l1i_hit_latency if l1i_hit_latency is not None else system.l1i.hit_latency
        # Base cost of an instruction record grows if the L1-I is slower
        # than the 3-cycle anchor (Figure 1's size/latency trade-off).
        self.ibase = system.base_cycles_per_iblock + max(0, l1i_lat - 3)
        self.dbase = 1 + max(0, system.l1d.hit_latency - 3)
        self.i_miss_l2 = system.l2_hit_latency + system.frontend_refill_cycles
        self.i_miss_mem = system.memory_latency + system.frontend_refill_cycles
        self.d_load_l2 = int(round(system.l2_hit_latency * system.load_overlap))
        self.d_load_mem = int(round(system.memory_latency * system.load_overlap))
        self.d_store_l2 = int(round(system.l2_hit_latency * system.store_overlap))
        self.d_store_mem = int(round(system.memory_latency * system.store_overlap))
        self.itlb_miss = system.tlb_miss_cycles
        # D-TLB walks overlap with execution like data misses do.
        self.dtlb_miss = int(round(system.tlb_miss_cycles * system.load_overlap))

    def i_miss(self, in_l2: bool) -> int:
        """Penalty for one L1-I miss."""
        return self.i_miss_l2 if in_l2 else self.i_miss_mem

    def d_miss(self, in_l2: bool, is_store: bool) -> int:
        """Overlap-adjusted penalty for one L1-D miss."""
        if is_store:
            return self.d_store_l2 if in_l2 else self.d_store_mem
        return self.d_load_l2 if in_l2 else self.d_load_mem

    def migration(self, hops: int) -> int:
        """Cycles a migrating thread pays before resuming remotely."""
        s = self.system
        return (
            s.migration_context_cycles
            + hops * s.migration_hop_cycles
            + s.migration_refill_cycles
        )

    def prefetch_late(self, in_l2: bool) -> int:
        """Residual penalty when using a block whose prefetch is in flight."""
        full = self.system.l2_hit_latency if in_l2 else self.system.memory_latency
        return int(round(full * self.system.prefetch_late_fraction))
