"""Plain-text table formatting for benchmark reports.

Every benchmark prints the rows/series the corresponding paper figure or
table reports; these helpers keep the output format uniform so
EXPERIMENTS.md can quote it directly.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned monospace table.

    Floats are shown with 3 decimals; everything else via ``str``.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def paper_vs_measured(
    metric: str, paper_value: float, measured: float
) -> str:
    """One-line paper-vs-measured comparison used across benches."""
    return (
        f"{metric}: paper={paper_value:.3f} measured={measured:.3f} "
        f"(ratio {measured / paper_value:.2f})"
        if paper_value
        else f"{metric}: paper=n/a measured={measured:.3f}"
    )
