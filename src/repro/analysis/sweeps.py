"""Parameter-sweep helpers for the Section 5.2 threshold studies.

Each sweep expands the same trace into a family of
:class:`~repro.exp.spec.ExperimentSpec` grid points and executes it
through a :class:`~repro.exp.runner.Runner`, returning one row per point
with the metrics the paper plots: I-MPKI, D-MPKI and speedup relative to
a shared baseline run.

All sweeps in a process share one in-memory
:class:`~repro.exp.store.ResultStore` by default, so back-to-back sweeps
over the same trace simulate the ``base`` reference exactly once and
repeated sweeps only compute grid points they have not seen. Pass an
explicit ``runner`` for parallel fan-out (``Runner(jobs=N)``) or a
persistent on-disk store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.exp.runner import Runner
from repro.exp.spec import ExperimentSpec, spec_for
from repro.exp.store import ResultStore
from repro.params import SliccParams
from repro.sim.engine import SimConfig
from repro.sim.results import SimulationResult
from repro.workloads.trace import Trace

#: Process-wide default store: sweeps called back-to-back on the same
#: trace share baseline and grid runs (results are deterministic, so
#: serving repeats from memory is always sound).
_SHARED_STORE = ResultStore()


@dataclass(frozen=True)
class SweepPoint:
    """One configuration point of a sweep with its measured metrics."""

    label: str
    fill_up_t: int
    matched_t: int
    dilution_t: int
    i_mpki: float
    d_mpki: float
    speedup: float
    migrations: int


def _default_runner() -> Runner:
    return Runner(store=_SHARED_STORE)


def _run_grid(
    trace: Trace,
    specs: list[ExperimentSpec],
    baseline: Optional[SimulationResult],
    runner: Optional[Runner],
) -> tuple[list[SimulationResult], SimulationResult]:
    """Execute grid specs (plus the baseline unless given) in one call."""
    if runner is None:
        runner = _default_runner()
    if baseline is None:
        base_spec = spec_for(trace, SimConfig(variant="base"), label="base")
        results = runner.run([base_spec] + specs, trace=trace)
        return results[1:], results[0]
    return runner.run(specs, trace=trace), baseline


def _to_points(
    specs: list[ExperimentSpec],
    results: list[SimulationResult],
    baseline: SimulationResult,
) -> list[SweepPoint]:
    points = []
    for spec, result in zip(specs, results):
        slicc = spec.config.slicc
        points.append(
            SweepPoint(
                label=spec.display_label(),
                fill_up_t=slicc.fill_up_t,
                matched_t=slicc.matched_t,
                dilution_t=slicc.dilution_t,
                i_mpki=result.i_mpki,
                d_mpki=result.d_mpki,
                speedup=result.speedup_over(baseline),
                migrations=result.migrations,
            )
        )
    return points


def sweep_fillup_matched(
    trace: Trace,
    fill_up_values: Iterable[int] = (128, 256, 384, 512),
    matched_values: Iterable[int] = (2, 4, 6, 8, 10),
    variant: str = "slicc-sw",
    baseline: Optional[SimulationResult] = None,
    runner: Optional[Runner] = None,
) -> list[SweepPoint]:
    """The Figure 7 grid: fill-up_t x matched_t with dilution_t = 0.

    The paper explores this plane with dilution disabled (Section 5.2).
    """
    specs = [
        spec_for(
            trace,
            SimConfig(
                variant=variant,
                slicc=SliccParams(
                    fill_up_t=fill_up, matched_t=matched, dilution_t=0
                ),
            ),
            label=f"fill={fill_up},match={matched}",
        )
        for fill_up in fill_up_values
        for matched in matched_values
    ]
    results, baseline = _run_grid(trace, specs, baseline, runner)
    return _to_points(specs, results, baseline)


def sweep_dilution(
    trace: Trace,
    dilution_values: Iterable[int] = tuple(range(2, 31, 2)),
    fill_up_t: int = 256,
    matched_t: int = 4,
    variant: str = "slicc-sw",
    baseline: Optional[SimulationResult] = None,
    runner: Optional[Runner] = None,
) -> list[SweepPoint]:
    """The Figure 8 line: dilution_t sweep at the Figure 7 optimum."""
    specs = [
        spec_for(
            trace,
            SimConfig(
                variant=variant,
                slicc=SliccParams(
                    fill_up_t=fill_up_t,
                    matched_t=matched_t,
                    dilution_t=dilution,
                ),
            ),
            label=f"dilution={dilution}",
        )
        for dilution in dilution_values
    ]
    results, baseline = _run_grid(trace, specs, baseline, runner)
    return _to_points(specs, results, baseline)
