"""Parameter-sweep helpers for the Section 5.2 threshold studies.

Each sweep runs the same trace under a family of SLICC configurations and
returns one row per point with the metrics the paper plots: I-MPKI,
D-MPKI and speedup relative to a shared baseline run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Iterable, Optional

from repro.params import SliccParams
from repro.sim.engine import SimConfig, simulate
from repro.sim.results import SimulationResult
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class SweepPoint:
    """One configuration point of a sweep with its measured metrics."""

    label: str
    fill_up_t: int
    matched_t: int
    dilution_t: int
    i_mpki: float
    d_mpki: float
    speedup: float
    migrations: int


def _run_point(
    trace: Trace,
    baseline: SimulationResult,
    slicc: SliccParams,
    variant: str,
    label: str,
) -> SweepPoint:
    result = simulate(trace, config=SimConfig(variant=variant, slicc=slicc))
    return SweepPoint(
        label=label,
        fill_up_t=slicc.fill_up_t,
        matched_t=slicc.matched_t,
        dilution_t=slicc.dilution_t,
        i_mpki=result.i_mpki,
        d_mpki=result.d_mpki,
        speedup=result.speedup_over(baseline),
        migrations=result.migrations,
    )


def sweep_fillup_matched(
    trace: Trace,
    fill_up_values: Iterable[int] = (128, 256, 384, 512),
    matched_values: Iterable[int] = (2, 4, 6, 8, 10),
    variant: str = "slicc-sw",
    baseline: Optional[SimulationResult] = None,
) -> list[SweepPoint]:
    """The Figure 7 grid: fill-up_t x matched_t with dilution_t = 0.

    The paper explores this plane with dilution disabled (Section 5.2).
    """
    if baseline is None:
        baseline = simulate(trace, variant="base")
    points = []
    for fill_up in fill_up_values:
        for matched in matched_values:
            slicc = SliccParams(
                fill_up_t=fill_up, matched_t=matched, dilution_t=0
            )
            points.append(
                _run_point(
                    trace,
                    baseline,
                    slicc,
                    variant,
                    label=f"fill={fill_up},match={matched}",
                )
            )
    return points


def sweep_dilution(
    trace: Trace,
    dilution_values: Iterable[int] = tuple(range(2, 31, 2)),
    fill_up_t: int = 256,
    matched_t: int = 4,
    variant: str = "slicc-sw",
    baseline: Optional[SimulationResult] = None,
) -> list[SweepPoint]:
    """The Figure 8 line: dilution_t sweep at the Figure 7 optimum."""
    if baseline is None:
        baseline = simulate(trace, variant="base")
    points = []
    for dilution in dilution_values:
        slicc = SliccParams(
            fill_up_t=fill_up_t, matched_t=matched_t, dilution_t=dilution
        )
        points.append(
            _run_point(
                trace, baseline, slicc, variant, label=f"dilution={dilution}"
            )
        )
    return points
