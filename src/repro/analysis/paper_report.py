"""Report generation for the paper-figure registry.

Renders each :class:`~repro.exp.figures.Figure` as a metric table in two
formats — GitHub-flavoured markdown (human diffing, nightly artifacts)
and CSV (plotting, regression tooling) — from results already present in
a :class:`~repro.exp.store.ResultStore`. Rows carry baseline-relative
columns (``speedup`` and a delta per metric) whenever the figure pairs a
spec with its baseline run, so a nightly diff of the report surfaces any
drift in the reproduced numbers directly.

The generator never simulates: ``repro paper`` runs the specs first and
then calls :func:`write_report`; a missing result is therefore a bug and
raises instead of silently emitting a hole.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.exp.figures import Figure, FigureRow
from repro.exp.metrics import METRICS
from repro.exp.store import ResultStore
from repro.sched import policy_descriptions
from repro.sim.results import SimulationResult

#: Metrics whose baseline-relative delta column is meaningful (counters
#: like ``migrations`` are zero on the baseline by construction, so a
#: delta would just repeat the value).
_DELTA_METRICS = frozenset({"I-MPKI", "D-MPKI", "bpki", "IPC", "util"})


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return "" if value is None else str(value)


def _result_for(
    store: ResultStore, row_spec, what: str
) -> SimulationResult:
    result = store.get(row_spec.key())
    if result is None:
        raise ConfigurationError(
            f"store has no result for {what} {row_spec.display_label()!r} "
            f"(key {row_spec.key()[:12]}...); run the figure before "
            "rendering its report"
        )
    return result


def figure_table(
    figure: Figure, rows: Sequence[FigureRow], store: ResultStore
) -> tuple[list[str], list[list[object]]]:
    """Build the figure's (headers, rows) table from stored results.

    Columns: identity (label/workload/variant), one column per figure
    metric plus a ``Δ`` column versus the row's baseline for ratio-like
    metrics, and ``speedup`` when any row has a baseline.

    Raises:
        ConfigurationError: if a row's result (or its baseline's) is not
            in the store.
    """
    with_baseline = any(row.baseline is not None for row in rows)
    headers = ["label", "workload", "variant"]
    for metric in figure.metrics:
        headers.append(metric)
        if with_baseline and metric in _DELTA_METRICS:
            headers.append(f"Δ{metric}")
    if with_baseline:
        headers.append("speedup")

    table: list[list[object]] = []
    for row in rows:
        result = _result_for(store, row.spec, "spec")
        base = (
            _result_for(store, row.baseline, "baseline")
            if row.baseline is not None
            else None
        )
        cells: list[object] = [
            row.spec.display_label(),
            row.spec.workload,
            row.spec.variant,
        ]
        for metric in figure.metrics:
            value = METRICS[metric](result)
            cells.append(value)
            if with_baseline and metric in _DELTA_METRICS:
                cells.append(
                    float(value) - float(METRICS[metric](base))
                    if base is not None
                    else None
                )
        if with_baseline:
            cells.append(
                result.speedup_over(base) if base is not None else None
            )
        table.append(cells)
    return headers, table


def render_markdown(
    figure: Figure, headers: Sequence[str], table: Sequence[Sequence[object]]
) -> str:
    """The figure as a markdown section with a pipe table."""
    lines = [f"## {figure.title}", "", figure.description, ""]
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join(" --- " for _ in headers) + "|")
    for row in table:
        lines.append("| " + " | ".join(_fmt(cell) for cell in row) + " |")
    lines.append("")
    return "\n".join(lines)


def write_figure_report(
    figure: Figure,
    rows: Sequence[FigureRow],
    store: ResultStore,
    out_dir: Path,
) -> dict[str, Path]:
    """Write ``<name>.md`` and ``<name>.csv`` for one figure.

    Returns the written paths keyed by format.
    """
    headers, table = figure_table(figure, rows, store)
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    md_path = out_dir / f"{figure.name}.md"
    md_path.write_text(
        render_markdown(figure, headers, table), encoding="utf-8"
    )

    csv_path = out_dir / f"{figure.name}.csv"
    with csv_path.open("w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for row in table:
            writer.writerow([_fmt(cell) for cell in row])
    return {"markdown": md_path, "csv": csv_path}


def write_index(
    out_dir: Path,
    entries: Sequence[tuple[Figure, int]],
    scale: str,
    store_path: Optional[Path] = None,
) -> Path:
    """Write ``index.md`` linking every figure written in this run."""
    out_dir = Path(out_dir)
    lines = [
        "# Paper reproduction report",
        "",
        f"Scale preset: `{scale}`"
        + (f" — result store: `{store_path.name}`" if store_path else ""),
        "",
        "| figure | title | rows |",
        "| --- | --- | --- |",
    ]
    for figure, n_rows in entries:
        lines.append(
            f"| [{figure.name}]({figure.name}.md) | {figure.title} "
            f"| {n_rows} |"
        )
    # The variant column of every table refers to a registered
    # scheduling policy; render the registry so the report is
    # self-describing (and so a report generated against a newer
    # registry documents exactly what it swept).
    lines += [
        "",
        "## Scheduling policies",
        "",
        "| variant | model |",
        "| --- | --- |",
    ]
    for name, description in policy_descriptions().items():
        lines.append(f"| `{name}` | {description} |")
    lines.append("")
    path = out_dir / "index.md"
    path.write_text("\n".join(lines), encoding="utf-8")
    return path
