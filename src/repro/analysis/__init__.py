"""Analysis helpers: reuse breakdowns, parameter sweeps, report tables."""

from repro.analysis.report import format_table, paper_vs_measured
from repro.analysis.reuse import (
    ReuseBreakdown,
    global_reuse,
    per_transaction_reuse,
)
from repro.analysis.sweeps import (
    SweepPoint,
    sweep_dilution,
    sweep_fillup_matched,
)

__all__ = [
    "ReuseBreakdown",
    "SweepPoint",
    "format_table",
    "global_reuse",
    "paper_vs_measured",
    "per_transaction_reuse",
    "sweep_dilution",
    "sweep_fillup_matched",
]
