"""Analysis helpers: reuse breakdowns, sweeps, report/figure tables."""

from repro.analysis.paper_report import (
    figure_table,
    render_markdown,
    write_figure_report,
    write_index,
)
from repro.analysis.report import format_table, paper_vs_measured
from repro.analysis.reuse import (
    ReuseBreakdown,
    global_reuse,
    per_transaction_reuse,
)
from repro.analysis.sweeps import (
    SweepPoint,
    sweep_dilution,
    sweep_fillup_matched,
)

__all__ = [
    "ReuseBreakdown",
    "SweepPoint",
    "figure_table",
    "format_table",
    "global_reuse",
    "paper_vs_measured",
    "per_transaction_reuse",
    "render_markdown",
    "sweep_dilution",
    "sweep_fillup_matched",
    "write_figure_report",
    "write_index",
]
