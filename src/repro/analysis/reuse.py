"""Instruction-block reuse analysis (Figure 3, Section 2.1.3).

Classifies every instruction access by how many threads touch the
accessed block over the whole trace:

* **single** — the block is only ever touched by one thread;
* **few** — touched by more than one but at most 60% of the threads;
* **most** — touched by more than 60% of the threads.

The *global* analysis counts sharing across all threads; the
*per-transaction* analysis restricts both the sharer count and the
denominator to threads of the same type, which is where the paper finds
~98% of accesses hitting "most"-shared blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.trace import KIND_INSTR, Trace, ThreadTrace

#: Blocks shared by more than this fraction of threads count as "most".
MOST_THRESHOLD = 0.60


@dataclass(frozen=True)
class ReuseBreakdown:
    """Fractions of instruction accesses by block-sharing category.

    The three fields sum to 1.0 (within float error) for a non-empty
    trace.
    """

    single: float
    few: float
    most: float

    def as_row(self) -> dict[str, float]:
        """Dict form used by the Figure 3 bench report."""
        return {"single": self.single, "few": self.few, "most": self.most}


def _breakdown(threads: list[ThreadTrace]) -> ReuseBreakdown:
    """Access-weighted sharing breakdown over a set of threads."""
    n_threads = len(threads)
    if n_threads == 0:
        return ReuseBreakdown(0.0, 0.0, 0.0)
    sharers: dict[int, int] = {}
    for thread in threads:
        for block in thread.instruction_blocks():
            sharers[int(block)] = sharers.get(int(block), 0) + 1

    threshold = MOST_THRESHOLD * n_threads
    counts = {"single": 0, "few": 0, "most": 0}
    for thread in threads:
        instr = thread.addr[thread.kind == KIND_INSTR]
        blocks, per_block = np.unique(instr, return_counts=True)
        for block, n_accesses in zip(blocks, per_block):
            s = sharers[int(block)]
            if s <= 1:
                counts["single"] += int(n_accesses)
            elif s > threshold:
                counts["most"] += int(n_accesses)
            else:
                counts["few"] += int(n_accesses)
    total = sum(counts.values())
    if total == 0:
        return ReuseBreakdown(0.0, 0.0, 0.0)
    return ReuseBreakdown(
        single=counts["single"] / total,
        few=counts["few"] / total,
        most=counts["most"] / total,
    )


def global_reuse(trace: Trace) -> ReuseBreakdown:
    """Sharing breakdown across *all* threads (Figure 3 "Global")."""
    return _breakdown(trace.threads)


def per_transaction_reuse(trace: Trace) -> ReuseBreakdown:
    """Access-weighted sharing within same-type thread groups
    (Figure 3 "Per Transaction")."""
    groups = [
        trace.threads_of_type(type_id) for type_id in trace.types_present()
    ]
    # Weight each group's breakdown by its access count.
    total_accesses = 0
    acc = {"single": 0.0, "few": 0.0, "most": 0.0}
    for group in groups:
        breakdown = _breakdown(group)
        accesses = sum(t.n_instruction_records for t in group)
        total_accesses += accesses
        acc["single"] += breakdown.single * accesses
        acc["few"] += breakdown.few * accesses
        acc["most"] += breakdown.most * accesses
    if total_accesses == 0:
        return ReuseBreakdown(0.0, 0.0, 0.0)
    return ReuseBreakdown(
        single=acc["single"] / total_accesses,
        few=acc["few"] / total_accesses,
        most=acc["most"] / total_accesses,
    )
