"""Data-cache coherence substrate (MESI-style invalidation directory)."""

from repro.coherence.mesi import Directory

__all__ = ["Directory"]
