"""Invalidation-based coherence directory for the private L1-D caches.

The paper's machine keeps the L1-Ds coherent with MESI (Table 2). For the
experiments that matter here, the observable effects of coherence are:

* a store by core A invalidates the block in every other L1-D, producing
  the "extra misses on core-B and invalidations on core-A" of Section 5.5
  when threads migrate mid-stream;
* invalidation counts that feed the D-MPKI accounting.

We therefore model a full-map directory: ``block -> set of caching cores``.
States collapse to "shared by these cores" / "not cached"; there is no
writeback traffic because the simulator charges no cycles for it.

Instruction blocks are read-only and never enter the directory.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.cache.cache import SetAssociativeCache


class Directory:
    """Full-map invalidation directory over the per-core L1-D caches."""

    def __init__(self, l1d_caches: list["SetAssociativeCache"]) -> None:
        self._caches = l1d_caches
        self._sharers: dict[int, set[int]] = {}
        #: Total invalidation messages sent (for reporting).
        self.invalidations_sent = 0

    def on_read(self, core: int, block: int) -> None:
        """Core ``core`` filled ``block`` for a load."""
        sharers = self._sharers.get(block)
        if sharers is None:
            self._sharers[block] = {core}
        else:
            sharers.add(core)

    def on_write(self, core: int, block: int) -> int:
        """Core ``core`` wrote ``block``; invalidate all other sharers.

        Returns the number of remote copies invalidated.

        The common cases — first write to a block, or a write by its sole
        sharer — allocate nothing; this runs once per store record.
        """
        sharers = self._sharers.get(block)
        if sharers is None:
            self._sharers[block] = {core}
            return 0
        has_remote = False
        for other in sharers:
            if other != core:
                has_remote = True
                break
        invalidated = 0
        if has_remote:
            for other in list(sharers):
                if other == core:
                    continue
                self._caches[other].invalidate(block)
                sharers.discard(other)
                invalidated += 1
            self.invalidations_sent += invalidated
        # Known quirk, kept deliberately: invalidating the last remote
        # sharer fires that cache's on_evict back into on_evict() below,
        # which can delete the dict entry; the add() then lands on an
        # orphaned set and the writer is not re-registered. The golden
        # suite pins this behaviour — fixing it changes simulated
        # invalidation counts and belongs in its own change.
        sharers.add(core)
        return invalidated

    def on_evict(self, core: int, block: int) -> None:
        """Core ``core`` dropped ``block`` (eviction or invalidation)."""
        sharers = self._sharers.get(block)
        if sharers is not None:
            sharers.discard(core)
            if not sharers:
                del self._sharers[block]

    def sharers_of(self, block: int) -> frozenset[int]:
        """Current sharer set of a block (diagnostics and tests)."""
        return frozenset(self._sharers.get(block, frozenset()))
