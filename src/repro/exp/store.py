"""Content-addressed result persistence.

A :class:`ResultStore` maps :meth:`ExperimentSpec.key` hashes to
:class:`~repro.sim.results.SimulationResult` rows. It always keeps an
in-memory index; given a path it additionally appends one JSON line per
new result, so repeated sweeps over overlapping grids only simulate the
points they have not seen (the store makes campaigns *incremental*).

The JSONL format is append-only — a rerun never rewrites history, and on
load later lines win, so a row can be superseded simply by appending.
Durability guarantees (the groundwork for multi-writer campaign stores):

* **Atomic appends.** Each row is one ``os.write`` of a complete line
  followed by ``fsync``, under an advisory ``flock`` on a ``.lock``
  sidecar, so concurrent writers never interleave bytes and a crash
  can lose at most the row being written.
* **Self-healing tail.** If a previous writer died mid-append (torn
  trailing line with no newline), the next append writes a newline
  first, so the torn fragment is isolated on its own line instead of
  corrupting the next good row.
* **Quarantine, not refusal.** ``_load`` skips malformed/truncated
  lines, copies them to a ``.quarantine`` sidecar, and warns — a
  corrupt row is re-derivable by rerunning its spec, so it must never
  brick the whole store. ``repro store verify`` reports corruption and
  superseded rows; ``repro store compact`` rewrites the file
  (write-to-temp + ``os.replace``) keeping only live rows.

Besides results, the store records *structured failure rows* (specs that
exhausted their retries or timed out — see
:class:`~repro.exp.runner.Runner`). Failures are provenance, not cache
entries: ``get`` never serves them, so a resumed campaign retries the
failed specs.
"""

from __future__ import annotations

import json
import os
import warnings
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterator, Optional, Union

try:  # Advisory locking is POSIX-only; the store degrades gracefully.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.errors import ConfigurationError
from repro.exp import faults
from repro.sim.results import SimulationResult


def result_to_dict(result: SimulationResult) -> dict:
    """Plain-dict rendering of a result (inverse of
    :func:`result_from_dict`)."""
    return asdict(result)


def result_from_dict(payload: dict) -> SimulationResult:
    """Rebuild a result from :func:`result_to_dict` output."""
    return SimulationResult(**payload)


def result_to_json(result: SimulationResult) -> str:
    """Canonical JSON rendering — byte-identical for equal results, used
    by the determinism guard in the test suite."""
    return json.dumps(
        result_to_dict(result), sort_keys=True, separators=(",", ":")
    )


def _resolve_jsonl(path: Union[str, Path], default_name: str) -> Path:
    """Normalise a JSONL-file argument to its backing ``*.jsonl`` file.

    A directory (existing or not) maps to ``<dir>/<default_name>``; an
    explicit ``*.jsonl`` path is taken as-is; other file-looking paths
    are rejected — a near-miss like ``results.json`` would otherwise
    silently become a *directory* of that name (dotted names that
    already exist as directories are fine). Shared by the result store
    (``results.jsonl``) and the work queue (``queue.jsonl``), so one
    campaign directory can hold both side by side.
    """
    path = Path(path)
    if path.is_dir():
        return path / default_name
    if path.suffix and path.suffix != ".jsonl":
        raise ConfigurationError(
            f"store path {path} looks like a file but is not "
            "*.jsonl; pass a directory or a .jsonl file"
        )
    if path.suffix != ".jsonl":
        return path / default_name
    return path


def resolve_store_path(path: Union[str, Path]) -> Path:
    """Normalise a store argument to its backing ``results.jsonl`` file."""
    return _resolve_jsonl(path, "results.jsonl")


@dataclass
class LoadReport:
    """What :meth:`ResultStore._load` found in the backing file."""

    lines: int = 0
    #: Blank lines (skipped silently; an editor artefact, not corruption).
    blank: int = 0
    #: Rows that parsed and loaded (results + failures).
    rows: int = 0
    #: Malformed/truncated lines, copied to the ``.quarantine`` sidecar.
    corrupt: int = 0
    #: Parsed rows whose key a later line superseded.
    superseded: int = 0
    #: Structured failure rows currently live (no later result row).
    failures: int = 0


class ResultStore:
    """Keyed store of simulation results, optionally backed by JSONL.

    Args:
        path: ``None`` for a purely in-memory store; otherwise a
            directory (a ``results.jsonl`` file is created inside) or a
            ``*.jsonl`` file path.
    """

    def __init__(self, path: Union[str, Path, None] = None) -> None:
        self._results: dict[str, SimulationResult] = {}
        self._specs: dict[str, dict] = {}
        self._failures: dict[str, dict] = {}
        self._path: Optional[Path] = None
        #: Populated by the initial load of a persistent store.
        self.load_report = LoadReport()
        if path is not None:
            path = resolve_store_path(path)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._path = path
            self._load()

    @property
    def path(self) -> Optional[Path]:
        """Backing JSONL file (``None`` for in-memory stores)."""
        return self._path

    @property
    def quarantine_path(self) -> Optional[Path]:
        """Sidecar file corrupt lines are quarantined to."""
        if self._path is None:
            return None
        return self._path.with_name(self._path.name + ".quarantine")

    @property
    def lock_path(self) -> Optional[Path]:
        """Sidecar lockfile serialising appends and compaction."""
        if self._path is None:
            return None
        return self._path.with_name(self._path.name + ".lock")

    @contextmanager
    def _locked(self):
        """Hold the advisory writer lock (no-op without fcntl/a path)."""
        if fcntl is None or self._path is None:
            yield
            return
        fd = os.open(self.lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            os.close(fd)  # closing the descriptor releases the flock

    def _load(self) -> None:
        report = LoadReport()
        self.load_report = report
        if self._path is None or not self._path.exists():
            return
        corrupt_lines: list[str] = []
        with self._path.open("r", encoding="utf-8") as fh:
            for raw in fh:
                report.lines += 1
                line = raw.strip()
                if not line:
                    report.blank += 1
                    continue
                row = _parse_row(line)
                if row is None:
                    # Truncated trailing line from a crash, a torn
                    # mid-file append, or a row from an incompatible
                    # older schema: re-derivable by rerunning the spec,
                    # so quarantine rather than refuse to open the store.
                    report.corrupt += 1
                    corrupt_lines.append(line)
                    continue
                report.rows += 1
                key = row["key"]
                if "result" in row:
                    if key in self._results:
                        report.superseded += 1
                    self._results[key] = result_from_dict(row["result"])
                    self._specs[key] = row.get("spec") or {}
                    # A fresh result supersedes any earlier failure.
                    self._failures.pop(key, None)
                else:
                    if key in self._failures:
                        report.superseded += 1
                    self._failures[key] = row["failure"]
        report.failures = len(self._failures)
        if corrupt_lines:
            self._quarantine(corrupt_lines)

    def _quarantine(self, lines: list[str]) -> None:
        """Copy corrupt lines to the sidecar (deduplicated) and warn.

        The main file is left untouched — load is read-only; ``repro
        store compact`` is the explicit operation that removes the
        corruption from the main file.
        """
        sidecar = self.quarantine_path
        seen: set[str] = set()
        if sidecar.exists():
            seen = set(sidecar.read_text(encoding="utf-8").splitlines())
        fresh = [line for line in lines if line not in seen]
        if fresh:
            with sidecar.open("a", encoding="utf-8") as fh:
                for line in fresh:
                    fh.write(line + "\n")
        warnings.warn(
            f"{self._path}: skipped {len(lines)} corrupt line(s) "
            f"(quarantined to {sidecar.name}); run `repro store compact "
            f"{self._path}` to rewrite the store",
            stacklevel=2,
        )

    def get(self, key: str) -> Optional[SimulationResult]:
        """The stored result for a spec key, or ``None``."""
        return self._results.get(key)

    def spec_info(self, key: str) -> Optional[dict]:
        """The spec dict recorded with a result (provenance), if any."""
        return self._specs.get(key)

    def failure_info(self, key: str) -> Optional[dict]:
        """The live failure record for a spec key, if any.

        Cleared by a later successful ``put`` for the same key. Never
        served as a cache hit — a resumed campaign retries failed specs.
        """
        return self._failures.get(key)

    def failures(self) -> dict[str, dict]:
        """All live failure records, keyed by spec key."""
        return dict(self._failures)

    def put(self, key: str, result: SimulationResult, spec=None) -> None:
        """Record a result; appends to the JSONL file when persistent.

        ``spec`` (an :class:`~repro.exp.spec.ExperimentSpec` or a plain
        dict) is stored alongside purely for human inspection of the
        file — lookups only ever use ``key``.
        """
        self._results[key] = result
        spec_payload = spec.to_dict() if hasattr(spec, "to_dict") else spec
        self._specs[key] = spec_payload or {}
        self._failures.pop(key, None)
        self._append(
            key,
            {
                "key": key,
                "spec": spec_payload,
                "result": result_to_dict(result),
            },
        )

    def put_failure(self, key: str, failure: dict, spec=None) -> None:
        """Record a structured failure row (spec exhausted its retries).

        ``failure`` should carry at least ``kind`` (``error`` /
        ``worker-death`` / ``timeout``), ``error`` and ``attempts`` —
        the :class:`~repro.exp.runner.Runner` builds these.
        """
        self._failures[key] = failure
        spec_payload = spec.to_dict() if hasattr(spec, "to_dict") else spec
        self._append(
            key,
            {"key": key, "spec": spec_payload, "failure": failure},
        )

    def _append(self, key: str, row: dict) -> None:
        """Crash-safe single-line append (no-op for in-memory stores).

        One locked ``os.write`` of the whole line plus ``fsync``: a
        concurrent writer can never interleave, and a crash loses at
        most this row. If the existing tail is torn (no trailing
        newline), a newline is written first so the fragment stays
        isolated on its own line.
        """
        if self._path is None:
            return
        line = (json.dumps(row, sort_keys=True) + "\n").encode("utf-8")
        plan = faults.active_plan()
        torn = plan is not None and plan.should_tear(key)
        with self._locked():
            fd = os.open(
                self._path, os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644
            )
            try:
                if self._tail_torn(fd):
                    os.write(fd, b"\n")
                if torn:
                    # Injected torn write: half the line, no newline, no
                    # fsync — what a power loss mid-append leaves behind.
                    os.write(fd, line[: max(1, len(line) // 2)])
                    return
                os.write(fd, line)
                os.fsync(fd)
            finally:
                os.close(fd)

    @staticmethod
    def _tail_torn(fd: int) -> bool:
        """Does the file end in a partial line (crashed writer)?

        Reading moves the shared offset, which is harmless: the fd is
        ``O_APPEND``, so writes go to end-of-file regardless.
        """
        size = os.fstat(fd).st_size
        if size == 0:
            return False
        os.lseek(fd, size - 1, os.SEEK_SET)
        return os.read(fd, 1) != b"\n"

    def __contains__(self, key: str) -> bool:
        return key in self._results

    def __len__(self) -> int:
        return len(self._results)

    def keys(self) -> Iterator[str]:
        """All stored spec keys."""
        return iter(self._results)

    def results(self) -> Iterator[SimulationResult]:
        """All stored results."""
        return iter(self._results.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self._path) if self._path else "memory"
        return f"ResultStore({len(self)} results, {where})"


def _parse_row(line: str) -> Optional[dict]:
    """Parse one JSONL line into a validated row dict, or ``None``.

    A valid row has a string ``key`` and either a loadable ``result``
    payload or a ``failure`` dict.
    """
    try:
        row = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(row, dict) or not isinstance(row.get("key"), str):
        return None
    if "result" in row:
        try:
            result_from_dict(row["result"])
        except TypeError:
            return None
        return row
    if isinstance(row.get("failure"), dict):
        return row
    return None


# ----------------------------------------------------------------------
# Store maintenance: verify and compact (the `repro store` CLI)
# ----------------------------------------------------------------------


@dataclass
class StoreAudit:
    """Line-level health report of a JSONL store file."""

    path: Path
    lines: int = 0
    blank: int = 0
    corrupt: int = 0
    result_rows: int = 0
    failure_rows: int = 0
    #: Distinct keys with a live result.
    keys: int = 0
    #: Live failure rows (keys with a failure and no later result).
    live_failures: int = 0
    #: Rows (result or failure) a later line supersedes — reclaimable
    #: by compaction, together with corrupt and blank lines.
    superseded: int = 0

    @property
    def clean(self) -> bool:
        """No corruption (superseded rows are legal append-only history)."""
        return self.corrupt == 0

    @property
    def reclaimable(self) -> int:
        """Lines a compaction would drop."""
        return self.blank + self.corrupt + self.superseded


def audit_store(path: Union[str, Path]) -> StoreAudit:
    """Scan a store file line by line and report its health.

    Unlike :class:`ResultStore`, this never loads results into memory
    objects and never writes anything — it is the read-only half of
    ``repro store verify``.
    """
    path = resolve_store_path(path)
    audit = StoreAudit(path=path)
    last_kind: dict[str, str] = {}  # key -> "result" | "failure"
    counts: dict[str, int] = {}
    if not path.exists():
        return audit
    with path.open("r", encoding="utf-8") as fh:
        for raw in fh:
            audit.lines += 1
            line = raw.strip()
            if not line:
                audit.blank += 1
                continue
            row = _parse_row(line)
            if row is None:
                audit.corrupt += 1
                continue
            key = row["key"]
            counts[key] = counts.get(key, 0) + 1
            last_kind[key] = "result" if "result" in row else "failure"
            if "result" in row:
                audit.result_rows += 1
            else:
                audit.failure_rows += 1
    audit.keys = sum(1 for kind in last_kind.values() if kind == "result")
    audit.live_failures = sum(
        1 for kind in last_kind.values() if kind == "failure"
    )
    audit.superseded = sum(n - 1 for n in counts.values())
    return audit


def compact_store(path: Union[str, Path]) -> tuple[StoreAudit, int]:
    """Rewrite a store file keeping only live rows.

    Keeps the last result row per key, plus the last failure row for
    keys that never succeeded; drops superseded history, blank lines,
    and corrupt lines (corrupt lines are first copied to the
    ``.quarantine`` sidecar, so compaction never destroys evidence).
    The rewrite goes to a temp file in the same directory, is fsync'd,
    and replaces the original atomically under the writer lock.

    Returns ``(audit of the file before compaction, rows written)``.
    """
    path = resolve_store_path(path)
    audit = audit_store(path)
    if not path.exists():
        return audit, 0
    # Reuse the store's lock + quarantine machinery; its own load pass
    # quarantines corrupt lines and resolves last-wins per key.
    store = ResultStore.__new__(ResultStore)
    store._results, store._specs, store._failures = {}, {}, {}
    store._path = path
    store._load()
    live: list[dict] = []
    for key, result in store._results.items():
        live.append(
            {
                "key": key,
                "spec": store._specs.get(key) or None,
                "result": result_to_dict(result),
            }
        )
    for key, failure in store._failures.items():
        live.append({"key": key, "spec": None, "failure": failure})
    tmp = path.with_name(path.name + ".compact.tmp")
    with store._locked():
        with tmp.open("w", encoding="utf-8") as fh:
            for row in live:
                fh.write(json.dumps(row, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    return audit, len(live)
