"""Content-addressed result persistence.

A :class:`ResultStore` maps :meth:`ExperimentSpec.key` hashes to
:class:`~repro.sim.results.SimulationResult` rows. It always keeps an
in-memory index; given a path it additionally appends one JSON line per
new result, so repeated sweeps over overlapping grids only simulate the
points they have not seen (the store makes campaigns *incremental*).

The JSONL format is append-only — a rerun never rewrites history, and a
crashed run leaves at worst one truncated trailing line, which loading
skips. On load, later lines win, so a row can be superseded simply by
appending.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.errors import ConfigurationError
from repro.sim.results import SimulationResult


def result_to_dict(result: SimulationResult) -> dict:
    """Plain-dict rendering of a result (inverse of
    :func:`result_from_dict`)."""
    return asdict(result)


def result_from_dict(payload: dict) -> SimulationResult:
    """Rebuild a result from :func:`result_to_dict` output."""
    return SimulationResult(**payload)


def result_to_json(result: SimulationResult) -> str:
    """Canonical JSON rendering — byte-identical for equal results, used
    by the determinism guard in the test suite."""
    return json.dumps(
        result_to_dict(result), sort_keys=True, separators=(",", ":")
    )


class ResultStore:
    """Keyed store of simulation results, optionally backed by JSONL.

    Args:
        path: ``None`` for a purely in-memory store; otherwise a
            directory (a ``results.jsonl`` file is created inside) or a
            ``*.jsonl`` file path.
    """

    def __init__(self, path: Union[str, Path, None] = None) -> None:
        self._results: dict[str, SimulationResult] = {}
        self._specs: dict[str, dict] = {}
        self._path: Optional[Path] = None
        if path is not None:
            path = Path(path)
            if path.is_dir():
                path = path / "results.jsonl"
            elif path.suffix and path.suffix != ".jsonl":
                # A near-miss like --store results.json would otherwise
                # silently become a *directory* of that name (dotted
                # names that already exist as directories are fine).
                raise ConfigurationError(
                    f"store path {path} looks like a file but is not "
                    "*.jsonl; pass a directory or a .jsonl file"
                )
            elif path.suffix != ".jsonl":
                path = path / "results.jsonl"
            path.parent.mkdir(parents=True, exist_ok=True)
            self._path = path
            self._load()

    @property
    def path(self) -> Optional[Path]:
        """Backing JSONL file (``None`` for in-memory stores)."""
        return self._path

    def _load(self) -> None:
        if self._path is None or not self._path.exists():
            return
        with self._path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                    result = result_from_dict(row["result"])
                    key = row["key"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    # Truncated trailing line from a crash, or a row from
                    # an incompatible older schema: rows are re-derivable
                    # by rerunning the spec, so skip rather than refuse
                    # to open the whole store.
                    continue
                self._results[key] = result
                self._specs[key] = row.get("spec") or {}

    def get(self, key: str) -> Optional[SimulationResult]:
        """The stored result for a spec key, or ``None``."""
        return self._results.get(key)

    def spec_info(self, key: str) -> Optional[dict]:
        """The spec dict recorded with a result (provenance), if any."""
        return self._specs.get(key)

    def put(self, key: str, result: SimulationResult, spec=None) -> None:
        """Record a result; appends to the JSONL file when persistent.

        ``spec`` (an :class:`~repro.exp.spec.ExperimentSpec` or a plain
        dict) is stored alongside purely for human inspection of the
        file — lookups only ever use ``key``.
        """
        self._results[key] = result
        spec_payload = spec.to_dict() if hasattr(spec, "to_dict") else spec
        self._specs[key] = spec_payload or {}
        if self._path is not None:
            row = {
                "key": key,
                "spec": spec_payload,
                "result": result_to_dict(result),
            }
            with self._path.open("a", encoding="utf-8") as fh:
                fh.write(json.dumps(row, sort_keys=True) + "\n")

    def __contains__(self, key: str) -> bool:
        return key in self._results

    def __len__(self) -> int:
        return len(self._results)

    def keys(self) -> Iterator[str]:
        """All stored spec keys."""
        return iter(self._results)

    def results(self) -> Iterator[SimulationResult]:
        """All stored results."""
        return iter(self._results.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self._path) if self._path else "memory"
        return f"ResultStore({len(self)} results, {where})"
