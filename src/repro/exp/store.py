"""Content-addressed result persistence with pluggable backends.

A :class:`ResultStore` maps :meth:`ExperimentSpec.key` hashes to
:class:`~repro.sim.results.SimulationResult` rows. Persistence is
delegated to a :class:`StoreBackend`; two are built in:

``jsonl``
    The original append-only JSONL file. One locked fsync'd ``os.write``
    per row (``O_APPEND`` + ``flock`` on a ``.lock`` sidecar), a
    self-healing torn tail, corruption quarantined to a ``.quarantine``
    sidecar on load, last-wins per key. Loading reads the whole file —
    right for hundreds of rows, linear for millions.
``sqlite``
    A WAL-mode SQLite database with a ``results`` table and a UNIQUE
    index on the canonical key, so the last-result-per-key invariant is
    structural and dedup/resume lookups are O(log n) point queries
    instead of whole-file folds. Failure rows keep their ``kind`` /
    ``error`` / ``attempts`` as real columns. Torn-write faults do not
    apply: SQLite's WAL makes every commit atomic (see
    :mod:`repro.exp.store_sqlite`).

**Backend selection** (first match wins):

1. an explicit ``backend=`` argument / ``--backend`` flag;
2. the path suffix (``*.jsonl`` vs ``*.sqlite`` / ``*.db`` /
   ``*.sqlite3``);
3. for directory paths, a store file already present in the directory
   (an existing campaign keeps its format regardless of environment);
4. the ``REPRO_STORE_BACKEND`` environment variable;
5. the default, ``jsonl``.

:func:`migrate_store` converts a store either way with byte-identical
result rows (the canonical JSON of every row survives a round trip),
including quarantined lines. Both backends share the store's contract:

* **Results outrank failures.** ``get`` never serves a failure row, and
  a successful ``put`` clears the key's failure record — failures are
  provenance, not cache entries, so a resumed campaign retries them.
* **A corrupt row never bricks the store.** It is quarantined (sidecar
  file or ``quarantine`` table) and the row is re-derivable by rerunning
  its spec. ``repro store verify`` reports health, ``repro store
  compact`` rewrites/garbage-collects.
"""

from __future__ import annotations

import json
import os
import warnings
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Iterator, Optional, Union

try:  # Advisory locking is POSIX-only; the store degrades gracefully.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.errors import ConfigurationError
from repro.exp import faults
from repro.sim.results import SimulationResult

#: Environment variable naming the default backend for paths that do not
#: pin one themselves (directories without an existing store file).
BACKEND_ENV = "REPRO_STORE_BACKEND"

#: Known backend kinds, in documentation order.
STORE_BACKENDS = ("jsonl", "sqlite")

DEFAULT_BACKEND = "jsonl"

#: Store filename created inside a directory path, per backend.
DEFAULT_BASENAMES = {"jsonl": "results.jsonl", "sqlite": "results.sqlite"}

#: Path suffixes that pin a backend.
SUFFIX_BACKENDS = {
    ".jsonl": "jsonl",
    ".sqlite": "sqlite",
    ".sqlite3": "sqlite",
    ".db": "sqlite",
}

#: Schema version of the JSONL row format (one JSON object per line with
#: a ``key`` and either a ``result`` or a ``failure`` payload).
JSONL_SCHEMA_VERSION = 1


def result_to_dict(result: SimulationResult) -> dict:
    """Plain-dict rendering of a result (inverse of
    :func:`result_from_dict`)."""
    return asdict(result)


def result_from_dict(payload: dict) -> SimulationResult:
    """Rebuild a result from :func:`result_to_dict` output."""
    return SimulationResult(**payload)


def result_to_json(result: SimulationResult) -> str:
    """Canonical JSON rendering — byte-identical for equal results, used
    by the determinism guard in the test suite."""
    return json.dumps(
        result_to_dict(result), sort_keys=True, separators=(",", ":")
    )


# ----------------------------------------------------------------------
# Backend + path resolution
# ----------------------------------------------------------------------


def _env_backend() -> Optional[str]:
    value = os.environ.get(BACKEND_ENV, "").strip().lower()
    if not value:
        return None
    if value not in STORE_BACKENDS:
        raise ConfigurationError(
            f"{BACKEND_ENV}={value!r} is not a known store backend; "
            f"known: {list(STORE_BACKENDS)}"
        )
    return value


def _detect_existing(directory: Path) -> Optional[str]:
    """Backend of the store file already present in a directory.

    ``None`` when the directory holds no store — or, ambiguously, one
    per backend (a half-migrated campaign); selection then falls
    through to the environment/default so the caller's intent decides.
    """
    present = [
        kind
        for kind, name in DEFAULT_BASENAMES.items()
        if (directory / name).exists()
    ]
    if len(present) == 1:
        return present[0]
    return None


def resolve_backend(
    path: Union[str, Path, None] = None, backend: Optional[str] = None
) -> str:
    """Resolve the backend kind for a store path.

    Precedence: explicit ``backend`` argument > path suffix > existing
    store file in a directory path > ``REPRO_STORE_BACKEND`` > jsonl.
    An explicit argument that contradicts the path suffix is a
    configuration error, not a silent override.
    """
    if backend is not None and backend not in STORE_BACKENDS:
        raise ConfigurationError(
            f"unknown store backend {backend!r}; known: "
            f"{list(STORE_BACKENDS)}"
        )
    suffix_kind = detected = None
    if path is not None:
        p = Path(path)
        if p.is_dir():
            detected = _detect_existing(p)
        elif p.suffix:
            suffix_kind = SUFFIX_BACKENDS.get(p.suffix)
        else:
            detected = _detect_existing(p)
    if backend is not None:
        if suffix_kind is not None and suffix_kind != backend:
            raise ConfigurationError(
                f"backend {backend!r} contradicts the {Path(path).suffix} "
                f"suffix of {path}; drop one of the two"
            )
        return backend
    if suffix_kind is not None:
        return suffix_kind
    if detected is not None:
        return detected
    return _env_backend() or DEFAULT_BACKEND


def _resolve_jsonl(path: Union[str, Path], default_name: str) -> Path:
    """Normalise a JSONL-file argument to its backing ``*.jsonl`` file.

    A directory (existing or not) maps to ``<dir>/<default_name>``; an
    explicit ``*.jsonl`` path is taken as-is; other file-looking paths
    are rejected — a near-miss like ``results.json`` would otherwise
    silently become a *directory* of that name (dotted names that
    already exist as directories are fine). Shared by the result store
    (``results.jsonl``) and the work queue (``queue.jsonl``), so one
    campaign directory can hold both side by side.
    """
    path = Path(path)
    if path.is_dir():
        return path / default_name
    if path.suffix and path.suffix != ".jsonl":
        raise ConfigurationError(
            f"store path {path} looks like a file but is not "
            "*.jsonl; pass a directory or a .jsonl file"
        )
    if path.suffix != ".jsonl":
        return path / default_name
    return path


def _resolve_sqlite(path: Union[str, Path]) -> Path:
    """Normalise a SQLite-store argument to its backing database file."""
    path = Path(path)
    if path.is_dir():
        return path / DEFAULT_BASENAMES["sqlite"]
    if path.suffix and SUFFIX_BACKENDS.get(path.suffix) != "sqlite":
        raise ConfigurationError(
            f"store path {path} looks like a file but is not a SQLite "
            "database (*.sqlite / *.sqlite3 / *.db); pass a directory "
            "or a database file"
        )
    if not path.suffix:
        return path / DEFAULT_BASENAMES["sqlite"]
    return path


def resolve_store_path(
    path: Union[str, Path], backend: Optional[str] = None
) -> Path:
    """Normalise a store argument to its backing file for its backend."""
    kind = resolve_backend(path, backend)
    if kind == "sqlite":
        return _resolve_sqlite(path)
    return _resolve_jsonl(path, DEFAULT_BASENAMES["jsonl"])


def describe_store(
    path: Union[str, Path], backend: Optional[str] = None
) -> Optional[dict]:
    """Backend/schema facts about the store at ``path``, or ``None``
    when no store file exists there yet. Powers the backend fields of
    ``repro queue status --json``."""
    kind = resolve_backend(path, backend)
    file = resolve_store_path(path, kind)
    if not file.exists():
        return None
    if kind == "sqlite":
        from repro.exp.store_sqlite import SQLITE_SCHEMA_VERSION

        version = SQLITE_SCHEMA_VERSION
    else:
        version = JSONL_SCHEMA_VERSION
    return {
        "backend": kind,
        "schema_version": version,
        "path": str(file),
    }


@dataclass
class LoadReport:
    """What opening a persistent store found in its backing file."""

    lines: int = 0
    #: Blank lines (skipped silently; an editor artefact, not corruption).
    blank: int = 0
    #: Rows that parsed and loaded (results + failures).
    rows: int = 0
    #: Malformed/truncated lines, copied to the ``.quarantine`` sidecar.
    corrupt: int = 0
    #: Parsed rows whose key a later line superseded.
    superseded: int = 0
    #: Structured failure rows currently live (no later result row).
    failures: int = 0


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------


def tail_torn(fd: int) -> bool:
    """Does the file end in a partial line (crashed writer)?

    Reading moves the shared offset, which is harmless: callers open
    the fd ``O_APPEND``, so writes go to end-of-file regardless. Shared
    with the work queue's event log, which uses the same torn-tail
    healing rule.
    """
    size = os.fstat(fd).st_size
    if size == 0:
        return False
    os.lseek(fd, size - 1, os.SEEK_SET)
    return os.read(fd, 1) != b"\n"


class StoreBackend:
    """Persistence strategy behind a :class:`ResultStore`.

    A backend owns one store file and implements keyed access plus the
    bulk import/export surface migration and benchmarks use. Rows cross
    the boundary in the canonical JSONL row shape — ``{"key", "spec",
    "result"}`` for results, ``{"key", "spec", "failure"}`` for
    failures — so every backend round-trips through the same dicts and
    migrated rows stay byte-identical under canonical JSON.
    """

    #: Backend kind string (``jsonl`` / ``sqlite``).
    kind: str = "?"
    #: Version of the on-disk schema this implementation writes.
    schema_version: int = 0

    path: Optional[Path] = None

    # Keyed access ----------------------------------------------------
    def load(self) -> LoadReport:  # pragma: no cover - interface
        raise NotImplementedError

    def get(self, key: str) -> Optional[SimulationResult]:
        raise NotImplementedError  # pragma: no cover - interface

    def spec_info(self, key: str) -> Optional[dict]:
        raise NotImplementedError  # pragma: no cover - interface

    def failure_info(self, key: str) -> Optional[dict]:
        raise NotImplementedError  # pragma: no cover - interface

    def failures(self) -> dict[str, dict]:
        raise NotImplementedError  # pragma: no cover - interface

    def put(self, key, result, spec_payload) -> None:
        raise NotImplementedError  # pragma: no cover - interface

    def put_failure(self, key, failure, spec_payload) -> None:
        raise NotImplementedError  # pragma: no cover - interface

    def contains(self, key: str) -> bool:
        raise NotImplementedError  # pragma: no cover - interface

    def count(self) -> int:
        raise NotImplementedError  # pragma: no cover - interface

    def keys(self) -> Iterator[str]:
        raise NotImplementedError  # pragma: no cover - interface

    def results(self) -> Iterator[SimulationResult]:
        raise NotImplementedError  # pragma: no cover - interface

    # Bulk import/export (migration, benchmarks) ----------------------
    def export_rows(self) -> Iterator[dict]:
        """Live rows in first-insertion order, canonical row shape.

        Results outrank failure provenance: a failure row whose key
        also holds a result is not exported (mirroring the queue's
        ``done``-supersedes-``failed`` fold rule).
        """
        raise NotImplementedError  # pragma: no cover - interface

    def bulk_load(self, rows: Iterable[dict]) -> tuple[int, int]:
        """Apply rows in order with normal fold semantics, batched for
        throughput. Returns ``(result rows, failure rows)`` applied."""
        raise NotImplementedError  # pragma: no cover - interface

    def quarantine_lines(self) -> list[str]:
        raise NotImplementedError  # pragma: no cover - interface

    def add_quarantine(self, lines: Iterable[str]) -> int:
        raise NotImplementedError  # pragma: no cover - interface

    def close(self) -> None:
        """Release file handles (no-op for file-per-write backends)."""


class JsonlBackend(StoreBackend):
    """The original append-only JSONL store file, behavior-identical.

    Keeps the whole store in memory (loaded once at open); durability
    comes from atomic locked fsync'd appends with a self-healing torn
    tail, and corruption is quarantined to a sidecar on load. With
    ``path=None`` this is the purely in-memory store (no file I/O at
    all).
    """

    kind = "jsonl"
    schema_version = JSONL_SCHEMA_VERSION

    def __init__(self, path: Optional[Path]) -> None:
        self._results: dict[str, SimulationResult] = {}
        self._specs: dict[str, dict] = {}
        self._failures: dict[str, dict] = {}
        self.path = path
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)

    @property
    def quarantine_path(self) -> Optional[Path]:
        """Sidecar file corrupt lines are quarantined to."""
        if self.path is None:
            return None
        return self.path.with_name(self.path.name + ".quarantine")

    @property
    def lock_path(self) -> Optional[Path]:
        """Sidecar lockfile serialising appends and compaction."""
        if self.path is None:
            return None
        return self.path.with_name(self.path.name + ".lock")

    @contextmanager
    def _locked(self):
        """Hold the advisory writer lock (no-op without fcntl/a path)."""
        if fcntl is None or self.path is None:
            yield
            return
        fd = os.open(self.lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            os.close(fd)  # closing the descriptor releases the flock

    def load(self) -> LoadReport:
        report = LoadReport()
        if self.path is None or not self.path.exists():
            return report
        corrupt_lines: list[str] = []
        with self.path.open("r", encoding="utf-8") as fh:
            for raw in fh:
                report.lines += 1
                line = raw.strip()
                if not line:
                    report.blank += 1
                    continue
                row = _parse_row(line)
                if row is None:
                    # Truncated trailing line from a crash, a torn
                    # mid-file append, or a row from an incompatible
                    # older schema: re-derivable by rerunning the spec,
                    # so quarantine rather than refuse to open the store.
                    report.corrupt += 1
                    corrupt_lines.append(line)
                    continue
                report.rows += 1
                key = row["key"]
                if "result" in row:
                    if key in self._results:
                        report.superseded += 1
                    self._results[key] = result_from_dict(row["result"])
                    self._specs[key] = row.get("spec") or {}
                    # A fresh result supersedes any earlier failure.
                    self._failures.pop(key, None)
                else:
                    if key in self._failures:
                        report.superseded += 1
                    self._failures[key] = row["failure"]
        report.failures = len(self._failures)
        if corrupt_lines:
            self._quarantine(corrupt_lines)
        return report

    def _quarantine(self, lines: list[str]) -> None:
        """Copy corrupt lines to the sidecar (deduplicated) and warn.

        The main file is left untouched — load is read-only; ``repro
        store compact`` is the explicit operation that removes the
        corruption from the main file.
        """
        self.add_quarantine(lines)
        warnings.warn(
            f"{self.path}: skipped {len(lines)} corrupt line(s) "
            f"(quarantined to {self.quarantine_path.name}); run `repro "
            f"store compact {self.path}` to rewrite the store",
            stacklevel=2,
        )

    def add_quarantine(self, lines: Iterable[str]) -> int:
        sidecar = self.quarantine_path
        seen: set[str] = set()
        if sidecar.exists():
            seen = set(sidecar.read_text(encoding="utf-8").splitlines())
        fresh = [line for line in lines if line not in seen]
        if fresh:
            with sidecar.open("a", encoding="utf-8") as fh:
                for line in fresh:
                    fh.write(line + "\n")
        return len(fresh)

    def quarantine_lines(self) -> list[str]:
        sidecar = self.quarantine_path
        if sidecar is None or not sidecar.exists():
            return []
        return sidecar.read_text(encoding="utf-8").splitlines()

    def get(self, key: str) -> Optional[SimulationResult]:
        return self._results.get(key)

    def spec_info(self, key: str) -> Optional[dict]:
        return self._specs.get(key)

    def failure_info(self, key: str) -> Optional[dict]:
        return self._failures.get(key)

    def failures(self) -> dict[str, dict]:
        return dict(self._failures)

    def put(self, key, result, spec_payload) -> None:
        self._results[key] = result
        self._specs[key] = spec_payload or {}
        self._failures.pop(key, None)
        self._append(
            key,
            {
                "key": key,
                "spec": spec_payload,
                "result": result_to_dict(result),
            },
        )

    def put_failure(self, key, failure, spec_payload) -> None:
        self._failures[key] = failure
        self._append(
            key,
            {"key": key, "spec": spec_payload, "failure": failure},
        )

    def _append(self, key: str, row: dict) -> None:
        """Crash-safe single-line append (no-op for in-memory stores).

        One locked ``os.write`` of the whole line plus ``fsync``: a
        concurrent writer can never interleave, and a crash loses at
        most this row. If the existing tail is torn (no trailing
        newline), a newline is written first so the fragment stays
        isolated on its own line.
        """
        if self.path is None:
            return
        line = (json.dumps(row, sort_keys=True) + "\n").encode("utf-8")
        plan = faults.active_plan()
        torn = plan is not None and plan.should_tear(key)
        with self._locked():
            fd = os.open(
                self.path, os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644
            )
            try:
                if tail_torn(fd):
                    os.write(fd, b"\n")
                if torn:
                    # Injected torn write: half the line, no newline, no
                    # fsync — what a power loss mid-append leaves behind.
                    os.write(fd, line[: max(1, len(line) // 2)])
                    return
                os.write(fd, line)
                os.fsync(fd)
            finally:
                os.close(fd)

    def contains(self, key: str) -> bool:
        return key in self._results

    def count(self) -> int:
        return len(self._results)

    def keys(self) -> Iterator[str]:
        return iter(self._results)

    def results(self) -> Iterator[SimulationResult]:
        return iter(self._results.values())

    def export_rows(self, shadowed_failures: bool = False) -> Iterator[dict]:
        for key, result in self._results.items():
            yield {
                "key": key,
                "spec": self._specs.get(key) or None,
                "result": result_to_dict(result),
            }
        for key, failure in self._failures.items():
            if not shadowed_failures and key in self._results:
                continue
            yield {"key": key, "spec": None, "failure": failure}

    def bulk_load(self, rows: Iterable[dict]) -> tuple[int, int]:
        """Batched append: every row in one locked write pass with a
        single trailing fsync — the per-row fsync of :meth:`put` priced
        once for imports that land thousands of rows at a time."""
        n_results = n_failures = 0
        lines: list[bytes] = []
        for row in rows:
            key = row["key"]
            if "result" in row:
                self._results[key] = result_from_dict(row["result"])
                self._specs[key] = row.get("spec") or {}
                self._failures.pop(key, None)
                n_results += 1
            else:
                self._failures[key] = row["failure"]
                n_failures += 1
            lines.append(
                (json.dumps(row, sort_keys=True) + "\n").encode("utf-8")
            )
        if self.path is None or not lines:
            return n_results, n_failures
        with self._locked():
            fd = os.open(
                self.path, os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644
            )
            try:
                if tail_torn(fd):
                    os.write(fd, b"\n")
                os.write(fd, b"".join(lines))
                os.fsync(fd)
            finally:
                os.close(fd)
        return n_results, n_failures


# ----------------------------------------------------------------------
# The facade
# ----------------------------------------------------------------------


class ResultStore:
    """Keyed store of simulation results, optionally backed by a file.

    Args:
        path: ``None`` for a purely in-memory store; otherwise a
            directory (a store file is created inside, named for the
            backend) or an explicit store-file path.
        backend: force a backend kind (``jsonl`` / ``sqlite``); by
            default the path suffix, an existing store file in the
            directory, or ``REPRO_STORE_BACKEND`` decides (see
            :func:`resolve_backend`).
    """

    def __init__(
        self,
        path: Union[str, Path, None] = None,
        backend: Optional[str] = None,
    ) -> None:
        if path is None:
            if backend not in (None, "jsonl"):
                raise ConfigurationError(
                    "an in-memory store (path=None) is dict-backed; "
                    "backend selection needs a persistent path"
                )
            self._impl: StoreBackend = JsonlBackend(None)
        else:
            kind = resolve_backend(path, backend)
            file = resolve_store_path(path, kind)
            if kind == "sqlite":
                from repro.exp.store_sqlite import SqliteBackend

                self._impl = SqliteBackend(file)
            else:
                self._impl = JsonlBackend(file)
        #: Populated by the initial load of a persistent store.
        self.load_report = self._impl.load()

    @property
    def path(self) -> Optional[Path]:
        """Backing store file (``None`` for in-memory stores)."""
        return self._impl.path

    @property
    def backend(self) -> str:
        """Backend kind (``jsonl`` / ``sqlite``; ``memory`` if no path)."""
        if self._impl.path is None:
            return "memory"
        return self._impl.kind

    @property
    def schema_version(self) -> int:
        """On-disk schema version of the active backend."""
        return self._impl.schema_version

    @property
    def quarantine_path(self) -> Optional[Path]:
        """Sidecar file corrupt lines are quarantined to (JSONL only;
        the SQLite backend quarantines into its own table)."""
        return getattr(self._impl, "quarantine_path", None)

    @property
    def lock_path(self) -> Optional[Path]:
        """Sidecar lockfile serialising appends (JSONL only; SQLite
        uses the database's own locking)."""
        return getattr(self._impl, "lock_path", None)

    def get(self, key: str) -> Optional[SimulationResult]:
        """The stored result for a spec key, or ``None``."""
        return self._impl.get(key)

    def spec_info(self, key: str) -> Optional[dict]:
        """The spec dict recorded with a result (provenance), if any."""
        return self._impl.spec_info(key)

    def failure_info(self, key: str) -> Optional[dict]:
        """The live failure record for a spec key, if any.

        Cleared by a later successful ``put`` for the same key. Never
        served as a cache hit — a resumed campaign retries failed specs.
        """
        return self._impl.failure_info(key)

    def failures(self) -> dict[str, dict]:
        """All live failure records, keyed by spec key."""
        return self._impl.failures()

    def put(self, key: str, result: SimulationResult, spec=None) -> None:
        """Record a result; persists immediately when backed by a file.

        ``spec`` (an :class:`~repro.exp.spec.ExperimentSpec` or a plain
        dict) is stored alongside purely for human inspection of the
        store — lookups only ever use ``key``.
        """
        spec_payload = spec.to_dict() if hasattr(spec, "to_dict") else spec
        self._impl.put(key, result, spec_payload)

    def put_failure(self, key: str, failure: dict, spec=None) -> None:
        """Record a structured failure row (spec exhausted its retries).

        ``failure`` should carry at least ``kind`` (``error`` /
        ``worker-death`` / ``timeout``), ``error`` and ``attempts`` —
        the :class:`~repro.exp.runner.Runner` builds these.
        """
        spec_payload = spec.to_dict() if hasattr(spec, "to_dict") else spec
        self._impl.put_failure(key, failure, spec_payload)

    def export_rows(self) -> Iterator[dict]:
        """Live rows in first-insertion order (canonical row dicts)."""
        return self._impl.export_rows()

    def bulk_load(self, rows: Iterable[dict]) -> tuple[int, int]:
        """Batched import of canonical row dicts; the write path behind
        :func:`migrate_store` and the store benchmark harness."""
        return self._impl.bulk_load(rows)

    def quarantine_lines(self) -> list[str]:
        """Quarantined raw lines (sidecar file or ``quarantine`` table)."""
        return self._impl.quarantine_lines()

    def add_quarantine(self, lines: Iterable[str]) -> int:
        """Record quarantined lines (deduplicated); returns new count."""
        return self._impl.add_quarantine(lines)

    def close(self) -> None:
        """Release backend handles (needed for SQLite on Windows; a
        no-op for JSONL)."""
        self._impl.close()

    def __contains__(self, key: str) -> bool:
        return self._impl.contains(key)

    def __len__(self) -> int:
        return self._impl.count()

    def keys(self) -> Iterator[str]:
        """All stored spec keys."""
        return self._impl.keys()

    def results(self) -> Iterator[SimulationResult]:
        """All stored results."""
        return self._impl.results()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self.path) if self.path else "memory"
        return f"ResultStore({len(self)} results, {self.backend}, {where})"


def _parse_row(line: str) -> Optional[dict]:
    """Parse one JSONL line into a validated row dict, or ``None``.

    A valid row has a string ``key`` and either a loadable ``result``
    payload or a ``failure`` dict.
    """
    try:
        row = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(row, dict) or not isinstance(row.get("key"), str):
        return None
    if "result" in row:
        try:
            result_from_dict(row["result"])
        except TypeError:
            return None
        return row
    if isinstance(row.get("failure"), dict):
        return row
    return None


# ----------------------------------------------------------------------
# Store maintenance: verify and compact (the `repro store` CLI)
# ----------------------------------------------------------------------


@dataclass
class StoreAudit:
    """Health report of a store file (line-level for JSONL, row-level
    plus ``PRAGMA integrity_check`` for SQLite)."""

    path: Path
    lines: int = 0
    blank: int = 0
    corrupt: int = 0
    result_rows: int = 0
    failure_rows: int = 0
    #: Distinct keys with a live result.
    keys: int = 0
    #: Live failure rows (keys with a failure and no later result).
    live_failures: int = 0
    #: Rows (result or failure) a later line supersedes — reclaimable
    #: by compaction, together with corrupt and blank lines. Always 0
    #: for SQLite (the UNIQUE key index upserts in place).
    superseded: int = 0
    #: Backend that produced this audit.
    backend: str = "jsonl"
    #: On-disk schema version of the audited store.
    schema_version: int = JSONL_SCHEMA_VERSION
    #: ``PRAGMA integrity_check`` verdict for SQLite ("ok" for JSONL,
    #: whose integrity is the line scan itself).
    integrity: str = "ok"

    @property
    def clean(self) -> bool:
        """No corruption (superseded rows are legal append-only history)."""
        return self.corrupt == 0

    @property
    def reclaimable(self) -> int:
        """Lines a compaction would drop."""
        return self.blank + self.corrupt + self.superseded


def audit_store(
    path: Union[str, Path], backend: Optional[str] = None
) -> StoreAudit:
    """Scan a store and report its health without modifying anything.

    For JSONL this never loads results into memory objects — it is the
    read-only half of ``repro store verify``. For SQLite it validates
    every row payload and runs ``PRAGMA integrity_check``.
    """
    kind = resolve_backend(path, backend)
    if kind == "sqlite":
        from repro.exp.store_sqlite import audit_sqlite

        return audit_sqlite(_resolve_sqlite(path))
    path = _resolve_jsonl(path, DEFAULT_BASENAMES["jsonl"])
    audit = StoreAudit(path=path)
    last_kind: dict[str, str] = {}  # key -> "result" | "failure"
    counts: dict[str, int] = {}
    if not path.exists():
        return audit
    with path.open("r", encoding="utf-8") as fh:
        for raw in fh:
            audit.lines += 1
            line = raw.strip()
            if not line:
                audit.blank += 1
                continue
            row = _parse_row(line)
            if row is None:
                audit.corrupt += 1
                continue
            key = row["key"]
            counts[key] = counts.get(key, 0) + 1
            last_kind[key] = "result" if "result" in row else "failure"
            if "result" in row:
                audit.result_rows += 1
            else:
                audit.failure_rows += 1
    audit.keys = sum(1 for kind in last_kind.values() if kind == "result")
    audit.live_failures = sum(
        1 for kind in last_kind.values() if kind == "failure"
    )
    audit.superseded = sum(n - 1 for n in counts.values())
    return audit


def compact_store(
    path: Union[str, Path], backend: Optional[str] = None
) -> tuple[StoreAudit, int]:
    """Garbage-collect a store, keeping only live rows.

    JSONL: keeps the last result row per key, plus the last failure row
    for keys that never succeeded; drops superseded history, blank
    lines, and corrupt lines (corrupt lines are first copied to the
    ``.quarantine`` sidecar, so compaction never destroys evidence).
    The rewrite goes to a temp file in the same directory, is fsync'd,
    and replaces the original atomically under the writer lock.

    SQLite: re-upserts every valid row (proving idempotence of the
    UNIQUE-key upsert), quarantines rows whose payload no longer
    parses, checkpoints the WAL and vacuums.

    Returns ``(audit of the store before compaction, rows kept)``.
    """
    kind = resolve_backend(path, backend)
    if kind == "sqlite":
        from repro.exp.store_sqlite import compact_sqlite

        return compact_sqlite(_resolve_sqlite(path))
    path = _resolve_jsonl(path, DEFAULT_BASENAMES["jsonl"])
    audit = audit_store(path)
    if not path.exists():
        return audit, 0
    # The backend's own load pass quarantines corrupt lines and
    # resolves last-wins per key; shadowed failure rows (a failure whose
    # key also has a result) are legal history and are kept.
    impl = JsonlBackend(path)
    impl.load()
    live = list(impl.export_rows(shadowed_failures=True))
    tmp = path.with_name(path.name + ".compact.tmp")
    with impl._locked():
        with tmp.open("w", encoding="utf-8") as fh:
            for row in live:
                fh.write(json.dumps(row, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    return audit, len(live)


# ----------------------------------------------------------------------
# Migration: `repro store migrate <src> <dst>`
# ----------------------------------------------------------------------


@dataclass
class MigrationReport:
    """What :func:`migrate_store` moved."""

    src: Path
    dst: Path
    src_backend: str
    dst_backend: str
    results: int = 0
    failures: int = 0
    quarantined: int = 0


def migrate_store(
    src: Union[str, Path],
    dst: Union[str, Path],
    *,
    src_backend: Optional[str] = None,
    dst_backend: Optional[str] = None,
) -> MigrationReport:
    """Copy a store between backends (either direction, or same-kind).

    Result rows survive byte-identically: every row crosses as its
    canonical dict, so re-exporting the destination yields the same
    canonical JSON lines the source held. Quarantined lines migrate
    too (sidecar file <-> ``quarantine`` table), so corruption evidence
    is never lost in a format change. The destination may already
    exist; rows upsert with the store's normal last-wins semantics, so
    re-running a migration is idempotent.

    Raises:
        ConfigurationError: when the source store does not exist, or
            source and destination resolve to the same file.
    """
    src_kind = resolve_backend(src, src_backend)
    dst_kind = resolve_backend(dst, dst_backend)
    src_file = resolve_store_path(src, src_kind)
    dst_file = resolve_store_path(dst, dst_kind)
    if not src_file.exists():
        raise ConfigurationError(f"no store to migrate at {src_file}")
    if src_file.resolve() == dst_file.resolve():
        raise ConfigurationError(
            f"migration source and destination are the same file "
            f"({src_file}); pick a different destination"
        )
    source = ResultStore(src_file, backend=src_kind)
    dest = ResultStore(dst_file, backend=dst_kind)
    try:
        n_results, n_failures = dest.bulk_load(source.export_rows())
        quarantined = dest.add_quarantine(source.quarantine_lines())
    finally:
        dest.close()
        source.close()
    return MigrationReport(
        src=src_file,
        dst=dst_file,
        src_backend=src_kind,
        dst_backend=dst_kind,
        results=n_results,
        failures=n_failures,
        quarantined=quarantined,
    )
