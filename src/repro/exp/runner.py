"""Parallel experiment execution.

The :class:`Runner` takes a list of :class:`ExperimentSpec` and returns
one :class:`SimulationResult` per spec, in order. Specs whose key is
already in the :class:`ResultStore` are served from it; the rest are
deduplicated and fanned out over ``multiprocessing`` workers (or run
inline for ``jobs=1`` / single-spec calls, where a pool would only add
overhead).

Each worker process builds every distinct trace at most once: declarative
specs regenerate it from ``(workload, scale, n_threads, seed)`` via the
deterministic generators, while explicit traces (specs built with
:func:`~repro.exp.spec.spec_for`) are shipped to the workers once at pool
start. Simulation itself is deterministic given the trace and config, so
results are identical whatever the job count — the test suite pins that
with a byte-identical-JSON guard.
"""

from __future__ import annotations

import multiprocessing
import sys
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.errors import ConfigurationError
from repro.exp.spec import ExperimentSpec, trace_fingerprint
from repro.exp.store import ResultStore, result_from_dict, result_to_dict
from repro.params import ScalePreset
from repro.sim.engine import simulate
from repro.sim.results import SimulationResult
from repro.workloads import standard_trace
from repro.workloads.trace import Trace

# Per-process trace state. ``_EXPLICIT`` holds traces shipped by the
# parent (fingerprint -> Trace); ``_TRACE_CACHE`` memoises declaratively
# rebuilt traces so a worker generates each one once however many specs
# share it.
_EXPLICIT: dict[str, Trace] = {}
_TRACE_CACHE: dict[str, Trace] = {}


def _init_worker(explicit: dict[str, Trace]) -> None:
    global _EXPLICIT
    _EXPLICIT = explicit


def _build_trace(spec: ExperimentSpec) -> Trace:
    return standard_trace(
        spec.workload,
        ScalePreset(spec.scale),
        n_threads=spec.n_threads,
        seed=spec.seed,
    )


def _trace_for(spec: ExperimentSpec) -> Trace:
    key = spec.trace_key()
    trace = _EXPLICIT.get(key)
    if trace is not None:
        return trace
    if spec.trace_id is not None:
        raise ConfigurationError(
            f"spec {spec.display_label()!r} references an explicit "
            "trace that was not passed to Runner.run(..., trace=...)"
        )
    # Fallback for a worker handed a declarative spec whose trace was
    # not shipped; memoised so one worker builds each trace at most once.
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        trace = _build_trace(spec)
        _TRACE_CACHE[key] = trace
    return trace


def _run_spec(spec: ExperimentSpec) -> tuple[str, dict]:
    """Worker entry point: simulate one spec, return (key, result dict).

    Results cross the process boundary as plain dicts so fresh and
    store-loaded rows take the identical deserialisation path.
    """
    result = simulate(_trace_for(spec), config=spec.config)
    return spec.key(), result_to_dict(result)


@dataclass
class RunnerStats:
    """How a ``run()`` call was served.

    ``cached`` counts input specs answered without simulating (store hits
    plus intra-call duplicates); ``simulated`` counts actual engine runs.
    """

    simulated: int = 0
    cached: int = 0

    def add(self, other: "RunnerStats") -> None:
        self.simulated += other.simulated
        self.cached += other.cached


class Runner:
    """Executes spec families against a result store.

    Args:
        store: result cache; defaults to a fresh in-memory store.
        jobs: worker processes for fan-out (1 = run inline).
    """

    def __init__(
        self, store: Optional[ResultStore] = None, jobs: int = 1
    ) -> None:
        self.store = store if store is not None else ResultStore()
        self.jobs = max(1, int(jobs))
        #: Cumulative counts across all ``run()`` calls.
        self.stats = RunnerStats()
        #: Counts for the most recent ``run()`` call.
        self.last_stats = RunnerStats()

    def run(
        self,
        specs: Sequence[ExperimentSpec],
        trace: Optional[Trace] = None,
        traces: Optional[Sequence[Trace]] = None,
    ) -> list[SimulationResult]:
        """Run every spec, returning results aligned with the input.

        Duplicate keys within one call are simulated once. Explicit
        traces referenced by any spec's ``trace_id`` must be passed via
        ``trace`` (one) or ``traces`` (several).
        """
        specs = list(specs)
        explicit: dict[str, Trace] = {}
        for t in ([trace] if trace is not None else []) + list(traces or []):
            explicit[trace_fingerprint(t)] = t

        keys = [spec.key() for spec in specs]
        served: dict[str, SimulationResult] = {}
        pending: dict[str, ExperimentSpec] = {}
        stats = RunnerStats()
        for spec, key in zip(specs, keys):
            if key in served or key in pending:
                stats.cached += 1
                continue
            hit = self.store.get(key)
            if hit is not None:
                served[key] = hit
                stats.cached += 1
            else:
                if spec.trace_id is not None and spec.trace_id not in explicit:
                    raise ConfigurationError(
                        f"spec {spec.display_label()!r} needs its explicit "
                        "trace: pass it via run(..., trace=...)"
                    )
                pending[key] = spec

        # Resolve each distinct declarative trace once, run-locally, and
        # ship it through the explicit-trace channel (inherited for free
        # under fork, pickled once per worker under spawn). Keeping the
        # resolution in this per-run dict — not the module cache — lets
        # the parent release the arrays when the run ends, so long
        # campaigns do not accumulate every trace they ever touched.
        for spec in pending.values():
            if spec.trace_id is None and spec.trace_key() not in explicit:
                explicit[spec.trace_key()] = _build_trace(spec)

        # Results persist as they arrive (not after the whole batch), so
        # an interrupted campaign keeps every simulation it finished.
        for key, payload in self._execute(list(pending.values()), explicit):
            result = result_from_dict(payload)
            served[key] = result
            self.store.put(key, result, spec=pending[key])
            stats.simulated += 1

        self.last_stats = stats
        self.stats.add(stats)
        return [served[key] for key in keys]

    def _execute(
        self, pending: list[ExperimentSpec], explicit: dict[str, Trace]
    ) -> Iterator[tuple[str, dict]]:
        """Yield (key, result dict) as simulations complete, in arbitrary
        order — the caller realigns by key and persists incrementally."""
        if not pending:
            return
        if self.jobs == 1 or len(pending) == 1:
            global _EXPLICIT
            previous = _EXPLICIT
            _EXPLICIT = explicit
            try:
                for spec in pending:
                    yield _run_spec(spec)
            finally:
                _EXPLICIT = previous
            return
        # Prefer fork on Linux: workers inherit explicit traces for free
        # instead of re-pickling them. Elsewhere (macOS/Windows) fork is
        # unsafe or absent, so keep the platform's default start method.
        if sys.platform == "linux":
            ctx = multiprocessing.get_context("fork")
        else:
            ctx = multiprocessing.get_context()
        n_workers = min(self.jobs, len(pending))
        with ctx.Pool(
            n_workers, initializer=_init_worker, initargs=(explicit,)
        ) as pool:
            yield from pool.imap_unordered(_run_spec, pending, chunksize=1)
