"""Parallel experiment execution.

The :class:`Runner` takes a list of :class:`ExperimentSpec` and returns
one :class:`SimulationResult` per spec, in order. Specs whose key is
already in the :class:`ResultStore` are served from it; the rest are
deduplicated and fanned out over worker processes (or run inline for
``jobs=1`` / single-spec calls, where a pool would only add overhead).

Execution is *fault-tolerant* (see :mod:`repro.exp.pool`): a worker
death or an exception inside the engine costs one bounded-backoff retry
of that spec, a per-spec wall-clock ``timeout`` kills hung simulations,
and a poison spec that exhausts its retries fails only its own row —
recorded as a structured failure in the store and in
:class:`RunnerStats` — while the rest of the sweep completes, after
which :class:`~repro.errors.SweepFailure` reports what was lost.
``SIGINT``/``SIGTERM`` drain gracefully: in-flight simulations finish
and persist before the run stops.

Each worker process builds every distinct trace at most once: declarative
specs regenerate it from ``(workload, scale, n_threads, seed)`` via the
deterministic generators, while explicit traces (specs built with
:func:`~repro.exp.spec.spec_for`) are shipped to the workers once at pool
start. On Linux the pool forks, so the parent materialises every trace's
replay tables first and workers inherit them zero-copy. Simulation
itself is deterministic given the trace and config, so results are
identical whatever the job count — the test suite pins that with a
byte-identical-JSON guard.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.errors import ConfigurationError, SweepFailure
from repro.exp import faults
from repro.exp.pool import FaultTolerantPool, SpecOutcome, _backoff_delay
from repro.exp.spec import ExperimentSpec, trace_fingerprint
from repro.exp.store import ResultStore, result_from_dict, result_to_dict
from repro.params import ScalePreset
from repro.sched import get_policy
from repro.sim.engine import simulate
from repro.sim.results import SimulationResult
from repro.workloads import standard_trace
from repro.workloads.trace import Trace

# Per-process trace state. ``_EXPLICIT`` holds traces shipped by the
# parent (fingerprint -> Trace); ``_TRACE_CACHE`` memoises declaratively
# rebuilt traces so a worker generates each one once however many specs
# share it.
_EXPLICIT: dict[str, Trace] = {}
_TRACE_CACHE: dict[str, Trace] = {}


def _init_worker(explicit: dict[str, Trace]) -> None:
    global _EXPLICIT
    _EXPLICIT = explicit


def _build_trace(spec: ExperimentSpec) -> Trace:
    return standard_trace(
        spec.workload,
        ScalePreset(spec.scale),
        n_threads=spec.n_threads,
        seed=spec.seed,
    )


def _trace_for(spec: ExperimentSpec) -> Trace:
    key = spec.trace_key()
    trace = _EXPLICIT.get(key)
    if trace is not None:
        return trace
    if spec.trace_id is not None:
        raise ConfigurationError(
            f"spec {spec.display_label()!r} references an explicit "
            "trace that was not passed to Runner.run(..., trace=...)"
        )
    # Fallback for a worker handed a declarative spec whose trace was
    # not shipped; memoised so one worker builds each trace at most once.
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        trace = _build_trace(spec)
        _TRACE_CACHE[key] = trace
    return trace


def _run_spec(spec: ExperimentSpec, attempt: int = 0) -> tuple[str, dict, float]:
    """Worker entry point: simulate one spec, return
    ``(key, result dict, seconds)``.

    Results cross the process boundary as plain dicts so fresh and
    store-loaded rows take the identical deserialisation path; the
    per-spec wall time feeds :class:`RunnerStats` timing. ``attempt``
    only feeds the fault-injection harness — chaos runs key their
    deterministic crash/hang schedule on (spec key, attempt) so a retry
    can be scheduled to succeed where the first attempt was killed.
    """
    key = spec.key()
    faults.inject_worker_faults(key, attempt)
    t0 = time.perf_counter()
    result = simulate(_trace_for(spec), config=spec.config)
    return key, result_to_dict(result), time.perf_counter() - t0


@dataclass
class RunnerStats:
    """How a ``run()`` call was served.

    ``cached`` counts input specs answered without simulating (store hits
    plus intra-call duplicates); ``simulated`` counts actual engine runs.
    ``failed`` counts specs with no result after all retries (of which
    ``timed_out`` were killed by the per-spec timeout); ``retried``
    counts extra attempts spent recovering from transient failures.
    ``reclaimed`` counts work-queue leases this runner's process took
    over from expired (dead) workers — the queue drain loop increments
    it, a plain ``run()`` never does. ``wall_seconds`` is the
    end-to-end duration of the ``run()`` call,
    ``sim_seconds`` the summed per-spec simulation time (under parallel
    workers ``sim_seconds`` exceeds ``wall_seconds``; their ratio is the
    effective sweep speed-up), and ``spec_seconds`` maps each simulated
    spec's key to its individual simulation time.
    """

    simulated: int = 0
    cached: int = 0
    failed: int = 0
    retried: int = 0
    timed_out: int = 0
    reclaimed: int = 0
    wall_seconds: float = 0.0
    sim_seconds: float = 0.0
    spec_seconds: dict[str, float] = field(default_factory=dict)

    def add(self, other: "RunnerStats") -> None:
        self.simulated += other.simulated
        self.cached += other.cached
        self.failed += other.failed
        self.retried += other.retried
        self.timed_out += other.timed_out
        self.reclaimed += other.reclaimed
        self.wall_seconds += other.wall_seconds
        self.sim_seconds += other.sim_seconds
        self.spec_seconds.update(other.spec_seconds)


class Runner:
    """Executes spec families against a result store.

    Args:
        store: result cache; defaults to a fresh in-memory store.
        jobs: worker processes for fan-out (1 = run inline).
        retries: bounded retries per spec for transient failures
            (worker death, an exception inside the engine); retry
            delays grow exponentially from ``backoff`` seconds with
            deterministic jitter.
        timeout: per-spec wall-clock seconds before a hung simulation's
            worker is killed and the spec marked ``timed_out``
            (``None`` = no limit). Enforcement needs a killable worker
            process, so a timeout routes even ``jobs=1`` runs through
            the pool.
        backoff: base seconds of the exponential retry backoff.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        jobs: int = 1,
        retries: int = 2,
        timeout: Optional[float] = None,
        backoff: float = 0.25,
    ) -> None:
        self.store = store if store is not None else ResultStore()
        self.jobs = max(1, int(jobs))
        self.retries = max(0, int(retries))
        self.timeout = timeout
        self.backoff = backoff
        #: Cumulative counts across all ``run()`` calls.
        self.stats = RunnerStats()
        #: Counts for the most recent ``run()`` call.
        self.last_stats = RunnerStats()
        #: Terminal failures of the most recent ``run()`` call.
        self.last_failures: list[SpecOutcome] = []

    def run(
        self,
        specs: Sequence[ExperimentSpec],
        trace: Optional[Trace] = None,
        traces: Optional[Sequence[Trace]] = None,
    ) -> list[SimulationResult]:
        """Run every spec, returning results aligned with the input.

        Duplicate keys within one call are simulated once. Explicit
        traces referenced by any spec's ``trace_id`` must be passed via
        ``trace`` (one) or ``traces`` (several).

        Raises:
            SweepFailure: after the whole sweep has been driven to
                completion, if any spec still has no result — every
                completed row is already persisted, so a rerun retries
                only the failed specs.
            KeyboardInterrupt: after a graceful SIGINT/SIGTERM drain;
                results completed before the drain are persisted.
        """
        t_start = time.perf_counter()
        specs = list(specs)
        explicit: dict[str, Trace] = {}
        for t in ([trace] if trace is not None else []) + list(traces or []):
            explicit[trace_fingerprint(t)] = t

        keys = [spec.key() for spec in specs]
        served: dict[str, SimulationResult] = {}
        pending: dict[str, ExperimentSpec] = {}
        stats = RunnerStats()
        for spec, key in zip(specs, keys):
            if key in served or key in pending:
                stats.cached += 1
                continue
            hit = self.store.get(key)
            if hit is not None:
                served[key] = hit
                stats.cached += 1
            else:
                if spec.trace_id is not None and spec.trace_id not in explicit:
                    raise ConfigurationError(
                        f"spec {spec.display_label()!r} needs its explicit "
                        "trace: pass it via run(..., trace=...)"
                    )
                pending[key] = spec

        # Resolve each distinct declarative trace once, run-locally, and
        # ship it through the explicit-trace channel (inherited for free
        # under fork, pickled once per worker under spawn). Keeping the
        # resolution in this per-run dict — not the module cache — lets
        # the parent release the arrays when the run ends, so long
        # campaigns do not accumulate every trace they ever touched.
        for spec in pending.values():
            if spec.trace_id is None and spec.trace_key() not in explicit:
                explicit[spec.trace_key()] = _build_trace(spec)

        # Results persist as they arrive (not after the whole batch), so
        # an interrupted campaign keeps every simulation it finished.
        failures: list[SpecOutcome] = []
        self.last_failures = failures
        try:
            for outcome in self._execute(list(pending.values()), explicit):
                stats.retried += outcome.attempts - 1
                if outcome.ok:
                    result = result_from_dict(outcome.payload)
                    served[outcome.key] = result
                    self.store.put(
                        outcome.key, result, spec=pending[outcome.key]
                    )
                    stats.simulated += 1
                    stats.sim_seconds += outcome.seconds
                    stats.spec_seconds[outcome.key] = outcome.seconds
                else:
                    stats.failed += 1
                    if outcome.kind == "timeout":
                        stats.timed_out += 1
                    self.store.put_failure(
                        outcome.key,
                        outcome.failure_record(),
                        spec=pending[outcome.key],
                    )
                    failures.append(outcome)
        finally:
            stats.wall_seconds = time.perf_counter() - t_start
            self.last_stats = stats
            self.stats.add(stats)
        if failures:
            names = ", ".join(
                f"{o.spec.display_label()} ({o.kind})" for o in failures[:5]
            )
            more = "" if len(failures) <= 5 else f", +{len(failures) - 5} more"
            raise SweepFailure(
                f"{len(failures)} of {len(pending)} spec(s) failed after "
                f"retries: {names}{more}",
                failures=failures,
                results=[served.get(key) for key in keys],
            )
        return [served[key] for key in keys]

    def _execute(
        self, pending: list[ExperimentSpec], explicit: dict[str, Trace]
    ) -> Iterator[SpecOutcome]:
        """Yield a terminal :class:`SpecOutcome` per pending spec as
        simulations complete, in arbitrary order — the caller realigns
        by key and persists incrementally."""
        if not pending:
            return
        # Inline fast path: no pool process when nothing needs one. A
        # timeout needs a killable worker, and an active fault plan
        # needs a worker whose death is survivable, so both route
        # through the pool even at jobs=1.
        inline = (
            (self.jobs == 1 or len(pending) == 1)
            and self.timeout is None
            and faults.active_plan() is None
        )
        if inline:
            yield from self._execute_inline(pending, explicit)
            return
        # Prefer fork on Linux: workers inherit explicit traces for free
        # instead of re-pickling them. Elsewhere (macOS/Windows) fork is
        # unsafe or absent, so keep the platform's default start method.
        use_fork = sys.platform == "linux"
        if use_fork:
            ctx = multiprocessing.get_context("fork")
            # Zero-copy trace sharing: materialise each trace's replay
            # tables (numpy -> plain-list conversion, page ids) once in
            # the parent, *before* forking, so every worker inherits the
            # ready-to-replay tables through the forked address space
            # instead of rebuilding them per process. The engine treats
            # the tables as read-only, so sharing is safe. Under spawn
            # the tables are deliberately not materialised (they are
            # excluded from pickling; shipping list renderings of the
            # arrays would only bloat the transfer).
            from repro.sim.tlb import PAGE_SHIFT

            for trace in explicit.values():
                for thread in trace.threads:
                    thread.replay_tables(PAGE_SHIFT)
            # Same zero-copy treatment for the batch kernel's SoA
            # arrays: any spec that opts into kernel="batch" gets its
            # trace's arrays built once in the parent, for each distinct
            # cache geometry the pending specs imply (PIF overrides the
            # L1-I), instead of once per worker. Geometry mirrors
            # BatchKernel.__init__; ThreadTrace.batch_tables memoises
            # per geometry and drops the arrays from pickles.
            self._materialise_batch_tables(pending, explicit)
            # And for the specialized kernel: generate + compile each
            # distinct per-config kernel once in the parent so workers
            # inherit the populated memo (specialize._KERNEL_CACHE)
            # through the forked address space instead of regenerating
            # it per process.
            self._materialise_specialized_kernels(pending, explicit)
        else:
            ctx = multiprocessing.get_context()
        pool = FaultTolerantPool(
            ctx,
            min(self.jobs, len(pending)),
            explicit,
            retries=self.retries,
            timeout=self.timeout,
            backoff=self.backoff,
        )
        try:
            yield from pool.run([(spec.key(), spec) for spec in pending])
        finally:
            pool.close()
        if pool.interrupted is not None:
            # Completed outcomes were already yielded (and persisted by
            # the caller); surface the drain as the interrupt it was.
            raise KeyboardInterrupt

    def _execute_inline(
        self, pending: list[ExperimentSpec], explicit: dict[str, Trace]
    ) -> Iterator[SpecOutcome]:
        """Single-process execution with the same retry semantics.

        Worker death cannot happen inline (there is no worker), so the
        retry loop only sees engine exceptions; timeouts are pool-only.
        """
        global _EXPLICIT
        previous = _EXPLICIT
        _EXPLICIT = explicit
        try:
            for spec in pending:
                key = spec.key()
                attempt = 0
                while True:
                    try:
                        _, payload, seconds = _run_spec(spec, attempt)
                    except Exception as exc:
                        attempt += 1
                        if attempt > self.retries:
                            yield SpecOutcome(
                                key=key,
                                spec=spec,
                                ok=False,
                                attempts=attempt,
                                kind="error",
                                error=f"{type(exc).__name__}: {exc}",
                            )
                            break
                        time.sleep(_backoff_delay(self.backoff, key, attempt))
                        continue
                    yield SpecOutcome(
                        key=key,
                        spec=spec,
                        ok=True,
                        payload=payload,
                        seconds=seconds,
                        attempts=attempt + 1,
                    )
                    break
        finally:
            _EXPLICIT = previous

    @staticmethod
    def _materialise_batch_tables(
        pending: list[ExperimentSpec], explicit: dict[str, Trace]
    ) -> None:
        """Pre-fork build of the batch kernel's SoA arrays.

        For every pending spec that opts into ``kernel="batch"``, build
        its trace's structure-of-arrays tables in the parent for the
        cache geometry that spec implies, so forked workers inherit the
        arrays zero-copy instead of rebuilding them per process.
        ``ThreadTrace.batch_tables`` memoises one geometry per thread
        (the overwhelmingly common case — geometry only varies across
        specs when PIF's L1-I override is mixed with standard ones), so
        specs are visited in order and the last geometry per trace wins;
        workers rebuild any other geometry on first use, exactly as they
        would have without this pre-pass.
        """
        import os

        batch_specs = [s for s in pending if s.config.kernel == "batch"]
        if not batch_specs:
            return
        from repro.sim.batch import numpy_available

        if not numpy_available() or os.environ.get("REPRO_NO_BATCH"):
            # The runs themselves will raise; nothing useful to share.
            return
        from repro.sim.tlb import PAGE_SHIFT

        for spec in batch_specs:
            trace = explicit.get(spec.trace_key())
            if trace is None:
                continue
            system = spec.config.system
            i_params = get_policy(spec.variant).l1i_params(system)
            if i_params is None:
                i_params = system.l1i
            d_params = system.l1d
            geometry = (
                PAGE_SHIFT,
                i_params.n_sets,
                d_params.n_sets,
                max(i_params.assoc, d_params.assoc),
            )
            for thread in trace.threads:
                thread.batch_tables(*geometry)

    @staticmethod
    def _materialise_specialized_kernels(
        pending: list[ExperimentSpec], explicit: dict[str, Trace]
    ) -> None:
        """Pre-fork generation of the specialized kernels.

        For every pending spec that resolves to ``kernel="specialized"``
        (explicitly, or via ``REPRO_KERNEL=specialized`` re-resolving
        ``auto``), build a throwaway engine in the parent: construction
        generates, compiles and memoises the per-config kernel in
        ``repro.sim.specialize._KERNEL_CACHE``, which forked workers
        then inherit zero-copy. Ineligible or vetoed configs are left
        for the runs themselves to report (explicit requests raise
        there; fleet overrides fall back silently), so this pre-pass
        never fails a sweep.
        """
        import os

        wants_specialized = [
            s for s in pending if s.config.kernel == "specialized"
        ]
        if os.environ.get(
            "REPRO_KERNEL", ""
        ).strip() == "specialized" and not os.environ.get(
            "REPRO_NO_SPECIALIZE"
        ):
            wants_specialized += [
                s for s in pending if s.config.kernel == "auto"
            ]
        if not wants_specialized:
            return
        from repro.sim.engine import ReplayEngine

        seen: set = set()
        for spec in wants_specialized:
            if spec.key() in seen:
                continue
            seen.add(spec.key())
            trace = explicit.get(spec.trace_key())
            if trace is None:
                continue
            try:
                # Construction alone generates, compiles and memoises
                # the kernel (ReplayEngine.__init__ -> kernel_for_engine).
                ReplayEngine(trace, spec.config)
            except ConfigurationError:
                continue
