"""JSON spec files for the ``repro exp`` CLI subcommand.

A spec file declares a whole experiment grid::

    {
      "workload": "tpcc-1",
      "scale": "ci",
      "n_threads": 32,
      "seed": 7,
      "variant": "slicc-sw",
      "overrides": {"quantum": 50},
      "axes": {"slicc.dilution_t": [2, 6, 10, 16, 24, 30]},
      "baseline": true
    }

``overrides`` applies dotted-path edits to every point; ``axes`` expands
into the cartesian grid; ``baseline: true`` adds the matching ``base``
run so the table gains a speedup column.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.exp.spec import ExperimentSpec, _auto_label, grid, with_overrides

_TOP_KEYS = {
    "workload",
    "scale",
    "n_threads",
    "seed",
    "variant",
    "overrides",
    "axes",
    "baseline",
    "label",
}


def load_spec_file(
    path: Union[str, Path],
) -> Tuple[list[ExperimentSpec], Optional[ExperimentSpec]]:
    """Parse a spec file into (grid specs, optional baseline spec).

    Raises:
        ConfigurationError: on unknown keys or a missing workload.
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict):
        raise ConfigurationError(f"{path}: spec file must be a JSON object")
    unknown = set(payload) - _TOP_KEYS
    if unknown:
        raise ConfigurationError(
            f"{path}: unknown spec keys {sorted(unknown)}; "
            f"known: {sorted(_TOP_KEYS)}"
        )
    if "workload" not in payload:
        raise ConfigurationError(f"{path}: spec file needs a 'workload'")

    base = ExperimentSpec(
        workload=payload["workload"],
        scale=payload.get("scale", "ci"),
        n_threads=payload.get("n_threads"),
        seed=payload.get("seed", 1),
        label=payload.get("label", ""),
    )
    overrides = dict(payload.get("overrides") or {})
    if "variant" in payload:
        if overrides.get("variant", payload["variant"]) != payload["variant"]:
            raise ConfigurationError(
                f"{path}: top-level 'variant' conflicts with "
                "overrides['variant']"
            )
        overrides["variant"] = payload["variant"]
    base = with_overrides(base, overrides)

    axes = payload.get("axes") or {}
    if payload.get("baseline"):
        # One shared baseline only makes sense when every grid point
        # replays the same trace on the same machine: speedup is
        # undefined across traces, and misleading across the config
        # fields baseline() inherits (quantum, system geometry, ...).
        fixed_paths = {
            "workload",
            "scale",
            "n_threads",
            "seed",
            "quantum",
            "arrival_spacing",
            "model_l2_capacity",
            "system",
        }
        clashes = {
            axis
            for axis in axes
            if axis in fixed_paths or axis.startswith("system.")
        }
        if clashes:
            raise ConfigurationError(
                f"{path}: 'baseline: true' cannot be combined with axes "
                f"the baseline run shares ({sorted(clashes)}); drop the "
                "baseline or split the spec file per configuration"
            )
    if axes:
        # A top-level label becomes a prefix of each point's auto label
        # so it still reaches the output tables.
        prefix = f"{base.label}:" if base.label else ""
        specs = grid(
            base, axes, label=lambda point: prefix + _auto_label(point)
        )
    else:
        specs = [base]
    baseline = base.baseline() if payload.get("baseline") else None
    return specs, baseline
