"""Fault-tolerant worker pool for experiment execution.

``multiprocessing.Pool`` assumes workers never die: a SIGKILL'd worker
hangs ``imap_unordered`` forever, and a hung simulation cannot be killed
at all because the pool does not know which worker holds which task.
This pool keeps that mapping explicit — one dedicated process per
worker, one duplex pipe each, tasks dispatched one at a time — which is
what makes the recovery matrix implementable:

* **worker death** (crash, OOM kill) → the pipe closes, the parent sees
  EOF, respawns a fresh worker, and retries the task with exponential
  backoff + deterministic jitter, up to ``retries`` times;
* **hang** → the parent tracks a per-task deadline; on expiry it kills
  exactly the offending worker, respawns it, and reports the task as
  ``timed_out`` (terminal — a deterministic hang would only hang
  again);
* **poison spec** (exception inside the engine) → the worker reports
  the error over the pipe; after retries the task is reported failed
  while every other spec proceeds;
* **SIGINT/SIGTERM** → two explicit stages. The *first* signal drains:
  no new dispatches, in-flight tasks finish and their results are
  yielded (the caller persists them), then the run stops and the caller
  exits 130. A *second* signal (either of the two) during the drain
  escalates to immediate abort: the scheduler loop breaks on the next
  tick (bounded by ``_TICK_SECONDS``), busy workers are killed without
  being waited on, nothing further is yielded or persisted, and the
  exit code is still 130. Workers ignore SIGINT so a terminal Ctrl-C
  (which signals the whole process group) still drains instead of
  killing workers mid-task.

Outcomes are yielded as they complete, in arbitrary order, so the
caller can persist incrementally — an interrupted campaign keeps every
simulation it finished.
"""

from __future__ import annotations

import hashlib
import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Iterator, Optional, Sequence

from repro.exp.spec import ExperimentSpec

#: Upper bound on one scheduler wait, so deadline checks and drain
#: signals are honoured promptly even while every worker is busy.
_TICK_SECONDS = 0.2

#: Grace given to a SIGTERM'd worker before escalating to SIGKILL.
_TERM_GRACE_SECONDS = 0.5


@dataclass
class SpecOutcome:
    """Terminal fate of one spec: a result payload or a failure."""

    key: str
    spec: ExperimentSpec
    ok: bool
    #: ``result_to_dict`` payload (successes only).
    payload: Optional[dict] = None
    #: Simulation seconds of the successful attempt.
    seconds: float = 0.0
    #: Total attempts executed (1 = no retries needed).
    attempts: int = 1
    #: Failure classification: ``error`` (exception inside the engine),
    #: ``worker-death`` (process died mid-task), ``timeout``.
    kind: Optional[str] = None
    error: Optional[str] = None

    def failure_record(self) -> dict:
        """The structured row :meth:`ResultStore.put_failure` persists."""
        return {
            "kind": self.kind,
            "error": self.error,
            "attempts": self.attempts,
            "label": self.spec.display_label(),
            "variant": self.spec.variant,
            "workload": self.spec.workload,
        }


@dataclass
class _Task:
    key: str
    spec: ExperimentSpec
    attempts: int = 0
    not_before: float = 0.0


def _worker_main(conn, explicit, parent_pid) -> None:
    """Worker loop: receive ``(key, spec, attempt)``, simulate, reply.

    SIGINT is ignored (the parent coordinates draining); SIGTERM keeps
    its default fatal disposition so the parent's timeout kill works.
    Exceptions are reported over the pipe, never raised — a poison spec
    must cost one task, not one worker.

    The idle wait is a bounded ``poll`` plus an orphan check rather
    than a bare ``recv``: sibling workers forked later inherit a copy
    of the parent's end of this pipe, so if the parent is SIGKILL'd the
    pipe never reaches EOF — two idle siblings would keep each other
    (and every inherited fd, including a captured stdout) alive
    forever. Re-parenting to init is the unambiguous death signal.
    ``parent_pid`` is captured on the parent side *before* the fork —
    a child that asked ``os.getppid()`` itself could record the
    reaper's pid if the parent died in the fork window, disabling the
    check.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    # Imported here, not at module top: under fork the worker inherits
    # the parent's loaded modules anyway, and under spawn this keeps the
    # import cost in the child.
    from repro.exp import runner as runner_mod

    runner_mod._init_worker(explicit)
    while True:
        try:
            while not conn.poll(1.0):
                if os.getppid() != parent_pid:  # orphaned by a kill
                    conn.close()
                    return
            task = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if task is None:
            break
        key, spec, attempt = task
        try:
            _, payload, seconds = runner_mod._run_spec(spec, attempt)
            reply = ("done", key, payload, seconds)
        except Exception as exc:
            reply = ("error", key, f"{type(exc).__name__}: {exc}", 0.0)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break  # parent gave up on us (timeout kill / shutdown)
    conn.close()


class _Worker:
    """One dedicated worker process plus its command pipe."""

    def __init__(self, ctx, explicit, wid: int) -> None:
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn, explicit, os.getpid()),
            name=f"repro-exp-worker-{wid}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.task: Optional[_Task] = None
        self.deadline: Optional[float] = None

    def kill(self) -> None:
        """Terminate (then kill) the process and release the pipe."""
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(_TERM_GRACE_SECONDS)
            if self.process.is_alive():  # pragma: no cover - stubborn child
                self.process.kill()
                self.process.join(_TERM_GRACE_SECONDS)
        self.conn.close()

    def join_or_kill(self) -> None:
        self.process.join(_TERM_GRACE_SECONDS)
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.kill()
            self.process.join(_TERM_GRACE_SECONDS)


def _backoff_delay(base: float, key: str, attempt: int) -> float:
    """Exponential backoff with deterministic jitter in [1.0, 1.5)x.

    The jitter decorrelates retry storms across specs (every task that
    died with one worker would otherwise retry in lockstep) while
    staying a pure function of (key, attempt) so scheduling is
    reproducible.
    """
    digest = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).digest()
    jitter = 1.0 + (digest[0] / 256.0) * 0.5
    return base * (2.0 ** (attempt - 1)) * jitter


class FaultTolerantPool:
    """Run specs across dedicated worker processes, surviving faults.

    Args:
        ctx: multiprocessing context (fork on Linux — workers inherit
            the explicit-trace dict zero-copy).
        n_workers: dedicated worker processes.
        explicit: trace fingerprint -> Trace, shipped to every worker.
        retries: re-dispatches allowed per task after a transient
            failure (worker death or in-task exception).
        timeout: per-spec wall-clock seconds before the worker is
            killed and the task reported ``timed_out`` (None = never).
        backoff: base seconds for the exponential retry backoff.
    """

    def __init__(
        self,
        ctx,
        n_workers: int,
        explicit: dict,
        *,
        retries: int = 2,
        timeout: Optional[float] = None,
        backoff: float = 0.25,
    ) -> None:
        self._ctx = ctx
        self._explicit = explicit
        self.retries = max(0, int(retries))
        self.timeout = timeout
        self.backoff = backoff
        #: Retry dispatches performed (for RunnerStats.retried).
        self.retried = 0
        #: Drain requested (first SIGINT/SIGTERM): finish in-flight
        #: tasks, drop undispatched ones, then stop.
        self.draining = False
        #: Hard abort (second signal): stop without waiting.
        self.aborted = False
        #: Which signal triggered the drain, for the caller's re-raise.
        self.interrupted: Optional[int] = None
        self._queue: deque[_Task] = deque()
        self._waiting: list[_Task] = []  # backing off until not_before
        self._next_wid = 0
        self._workers: list[_Worker] = [
            self._spawn() for _ in range(max(1, n_workers))
        ]
        self._idle: list[_Worker] = list(self._workers)

    def _spawn(self) -> _Worker:
        self._next_wid += 1
        return _Worker(self._ctx, self._explicit, self._next_wid)

    # -- signal handling ------------------------------------------------

    def _install_signals(self):
        """Route SIGINT/SIGTERM to the drain flag (main thread only)."""
        if threading.current_thread() is not threading.main_thread():
            return {}

        def _on_signal(signum, frame):
            if self.draining:
                self.aborted = True
            self.draining = True
            self.interrupted = signum

        previous = {}
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous[signum] = signal.signal(signum, _on_signal)
        return previous

    @staticmethod
    def _restore_signals(previous) -> None:
        for signum, handler in previous.items():
            signal.signal(signum, handler)

    # -- the scheduler loop ---------------------------------------------

    def run(
        self, tasks: Sequence[tuple[str, ExperimentSpec]]
    ) -> Iterator[SpecOutcome]:
        """Yield a terminal :class:`SpecOutcome` per task as they finish."""
        self._queue = deque(_Task(key, spec) for key, spec in tasks)
        self._waiting = []
        previous = self._install_signals()
        try:
            while self._queue or self._waiting or self._busy():
                if self.aborted:
                    # Second signal: stop yielding immediately. close()
                    # in the finally kills the still-busy workers, so
                    # their in-flight results are never persisted.
                    break
                if self.draining:
                    self._queue.clear()
                    self._waiting.clear()
                    if not self._busy():
                        break
                now = time.monotonic()
                self._waiting.sort(key=lambda t: t.not_before)
                while self._waiting and self._waiting[0].not_before <= now:
                    self._queue.append(self._waiting.pop(0))
                while self._queue and self._idle and not self.draining:
                    self._dispatch(self._queue.popleft(), now)
                yield from self._collect(self._wait_budget(now))
                yield from self._expire_deadlines()
        finally:
            self._restore_signals(previous)
            self.close()

    def _busy(self) -> list[_Worker]:
        return [w for w in self._workers if w.task is not None]

    def _wait_budget(self, now: float) -> float:
        """How long the next pipe wait may block."""
        budget = _TICK_SECONDS
        for worker in self._busy():
            if worker.deadline is not None:
                budget = min(budget, worker.deadline - now)
        if self._waiting:
            budget = min(budget, self._waiting[0].not_before - now)
        return max(0.0, budget)

    def _dispatch(self, task: _Task, now: float) -> None:
        worker = self._idle.pop()
        try:
            worker.conn.send((task.key, task.spec, task.attempts))
        except (BrokenPipeError, OSError):
            # The idle worker died behind our back (e.g. OOM killer):
            # replace it and put the task back; the next loop iteration
            # re-dispatches. Does not count as one of the task's
            # attempts — the spec never started running.
            self._replace(worker)
            self._queue.appendleft(task)
            return
        worker.task = task
        worker.deadline = (
            now + self.timeout if self.timeout is not None else None
        )

    def _collect(self, budget: float) -> Iterator[SpecOutcome]:
        """Wait up to ``budget`` for worker messages; yield outcomes."""
        busy = self._busy()
        if not busy:
            if budget > 0 and (self._waiting or self.draining):
                time.sleep(min(budget, _TICK_SECONDS))
            return
        conn_to_worker = {w.conn: w for w in busy}
        try:
            ready = mp_connection.wait(list(conn_to_worker), timeout=budget)
        except OSError:  # pragma: no cover - race with a dying pipe
            ready = []
        for conn in ready:
            worker = conn_to_worker[conn]
            try:
                message = conn.recv()
            except (EOFError, OSError):
                yield from self._on_worker_death(worker)
                continue
            yield from self._on_message(worker, message)

    def _on_message(self, worker: _Worker, message) -> Iterator[SpecOutcome]:
        status, _key, payload, seconds = message
        task = worker.task
        worker.task, worker.deadline = None, None
        self._idle.append(worker)
        if task is None:  # pragma: no cover - stale reply after respawn
            return
        if status == "done":
            yield SpecOutcome(
                key=task.key,
                spec=task.spec,
                ok=True,
                payload=payload,
                seconds=seconds,
                attempts=task.attempts + 1,
            )
        else:
            yield from self._retry_or_fail(task, "error", payload)

    def _on_worker_death(self, worker: _Worker) -> Iterator[SpecOutcome]:
        """The pipe closed mid-task: respawn and retry the task."""
        task = worker.task
        worker.task = None
        # Reap the corpse before reading its exit status — at pipe-EOF
        # time the process may not have been waited on yet.
        worker.process.join(_TERM_GRACE_SECONDS)
        exitcode = worker.process.exitcode
        self._replace(worker)
        if task is None:  # pragma: no cover - death while idle
            return
        yield from self._retry_or_fail(
            task,
            "worker-death",
            f"worker process died mid-task (exit code {exitcode})",
        )

    def _retry_or_fail(
        self, task: _Task, kind: str, error: str
    ) -> Iterator[SpecOutcome]:
        task.attempts += 1
        if task.attempts > self.retries:
            yield SpecOutcome(
                key=task.key,
                spec=task.spec,
                ok=False,
                attempts=task.attempts,
                kind=kind,
                error=error,
            )
            return
        self.retried += 1
        task.not_before = time.monotonic() + _backoff_delay(
            self.backoff, task.key, task.attempts
        )
        self._waiting.append(task)

    def _expire_deadlines(self) -> Iterator[SpecOutcome]:
        """Kill workers whose task blew its wall-clock budget.

        Timeouts are terminal, not retried: hangs are overwhelmingly
        deterministic (a poisoned spec hangs again), and retrying one
        would stall the sweep for another full timeout per retry.
        """
        now = time.monotonic()
        for worker in self._busy():
            if worker.deadline is None or now < worker.deadline:
                continue
            task = worker.task
            worker.task = None
            self._replace(worker, kill=True)
            yield SpecOutcome(
                key=task.key,
                spec=task.spec,
                ok=False,
                attempts=task.attempts + 1,
                kind="timeout",
                error=(
                    f"spec exceeded the {self.timeout:g}s wall-clock "
                    "timeout; worker killed"
                ),
            )

    def _replace(self, worker: _Worker, kill: bool = False) -> None:
        if kill:
            worker.kill()
        else:
            worker.conn.close()
            worker.join_or_kill()
        self._workers.remove(worker)
        if worker in self._idle:
            self._idle.remove(worker)
        fresh = self._spawn()
        self._workers.append(fresh)
        self._idle.append(fresh)

    def close(self) -> None:
        """Shut every worker down; in-flight work is terminated."""
        for worker in self._workers:
            if worker.task is not None:
                worker.kill()
                continue
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            worker.conn.close()
            worker.join_or_kill()
        self._workers.clear()
        self._idle.clear()
