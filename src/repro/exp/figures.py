"""Declarative registry of the paper's reproducible figures.

Every figure/table of the paper that this reproduction can regenerate is
declared here as a :class:`Figure`: a named builder that expands into an
:class:`~repro.exp.spec.ExperimentSpec` family (one spec per plotted
point, each optionally paired with its baseline run) at any
:class:`~repro.params.ScalePreset`. The registry is what makes the
result set a single artifact: ``repro paper`` iterates it, the nightly
CI reruns it, and the report generator renders one table per entry.

Because specs are content-hashed, figures share work automatically — the
``base`` run of ``fig10-mpki`` and the baseline of ``fig11-speedup`` are
the same key, so a campaign over the whole registry simulates each
distinct (trace, config) exactly once and reruns are served from the
:class:`~repro.exp.store.ResultStore`.

>>> from repro.exp.figures import get_figure
>>> rows = get_figure("fig8-dilution").build("smoke")
>>> rows[0].spec.workload
'tpcc-1'
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.errors import ConfigurationError
from repro.exp.spec import ExperimentSpec, grid
from repro.params import ScalePreset, SliccParams
from repro.sched import policy_names
from repro.sim.engine import SimConfig

#: Seed every registry figure runs at (matches the golden-pin seed so
#: smoke-scale figure runs and the golden fixtures describe the same
#: traces).
FIGURE_SEED = 7

#: Workloads the cross-workload figures span: the Table 1 four plus the
#: scenario extensions, in registry order.
FIGURE_WORKLOADS = (
    "tpcc-1",
    "tpcc-10",
    "tpce",
    "mapreduce",
    "webserve",
    "phased",
)


@dataclass(frozen=True)
class FigureRow:
    """One plotted point: its spec and (optionally) its baseline run."""

    spec: ExperimentSpec
    baseline: Optional[ExperimentSpec] = None


@dataclass(frozen=True)
class Figure:
    """A reproducible figure/table of the paper.

    Attributes:
        name: registry key (``fig8-dilution``); also the report filename
            stem.
        title: human title quoted in the report.
        description: what the figure shows and what to look for.
        builder: scale preset -> row list.
        metrics: metric columns (names from
            :data:`repro.exp.summarize.METRICS`) the report renders.
    """

    name: str
    title: str
    description: str
    builder: Callable[[ScalePreset], list[FigureRow]]
    metrics: tuple[str, ...] = ("I-MPKI", "D-MPKI", "migrations", "util")

    def build(self, scale: str | ScalePreset) -> list[FigureRow]:
        """Expand into spec rows at a scale preset (value or enum)."""
        return self.builder(ScalePreset(scale) if isinstance(scale, str) else scale)

    def specs(self, scale: str | ScalePreset) -> list[ExperimentSpec]:
        """All distinct specs the figure needs (rows plus baselines)."""
        specs: dict[str, ExperimentSpec] = {}
        for row in self.build(scale):
            for spec in (row.spec, row.baseline):
                if spec is not None:
                    specs.setdefault(spec.key(), spec)
        return list(specs.values())


_REGISTRY: dict[str, Figure] = {}


def register_figure(figure: Figure) -> Figure:
    """Add a figure to the registry (name must be unused)."""
    if figure.name in _REGISTRY:
        raise ConfigurationError(f"figure {figure.name!r} already registered")
    _REGISTRY[figure.name] = figure
    return figure


def figure_names() -> list[str]:
    """Registered figure names, in registration order."""
    return list(_REGISTRY)


def get_figure(name: str) -> Figure:
    """Look up a figure by name.

    Raises:
        ConfigurationError: for an unknown name.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown figure {name!r}; known: {figure_names()}"
        ) from None


def select_figures(names: Optional[Sequence[str]] = None) -> list[Figure]:
    """The named figures (validated), or the whole registry."""
    if not names:
        return list(_REGISTRY.values())
    return [get_figure(name) for name in names]


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------


def _spec(workload: str, scale: ScalePreset, variant: str, **config_kwargs):
    return ExperimentSpec(
        workload,
        config=SimConfig(variant=variant, **config_kwargs),
        scale=scale.value,
        seed=FIGURE_SEED,
        label=f"{workload}/{variant}",
    )


def _per_workload_rows(
    scale: ScalePreset, variants: Sequence[str], workloads=FIGURE_WORKLOADS
) -> list[FigureRow]:
    rows = []
    for workload in workloads:
        baseline = _spec(workload, scale, "base")
        for variant in variants:
            rows.append(FigureRow(_spec(workload, scale, variant), baseline))
    return rows


def _fig7_thresholds(scale: ScalePreset) -> list[FigureRow]:
    base = ExperimentSpec(
        "tpcc-1",
        config=SimConfig(
            variant="slicc-sw", slicc=SliccParams(dilution_t=0)
        ),
        scale=scale.value,
        seed=FIGURE_SEED,
    )
    specs = grid(
        base,
        {"slicc.fill_up_t": [128, 256, 384, 512], "slicc.matched_t": [2, 4, 8]},
    )
    baseline = base.baseline()
    return [FigureRow(spec, baseline) for spec in specs]


def _fig8_dilution(scale: ScalePreset) -> list[FigureRow]:
    base = ExperimentSpec(
        "tpcc-1",
        config=SimConfig(variant="slicc-sw"),
        scale=scale.value,
        seed=FIGURE_SEED,
    )
    specs = grid(base, {"slicc.dilution_t": [2, 6, 10, 16, 24, 30]})
    baseline = base.baseline()
    return [FigureRow(spec, baseline) for spec in specs]


register_figure(
    Figure(
        name="fig7-thresholds",
        title="Figure 7: fill-up_t x matched_t threshold plane",
        description=(
            "SLICC-SW on TPC-C-1 across the fill-up/matched threshold "
            "grid with dilution disabled; the paper picks fill_up_t=256, "
            "matched_t=4 from this plane."
        ),
        builder=_fig7_thresholds,
        metrics=("I-MPKI", "D-MPKI", "migrations"),
    )
)

register_figure(
    Figure(
        name="fig8-dilution",
        title="Figure 8: dilution_t sweep",
        description=(
            "SLICC-SW on TPC-C-1 sweeping dilution_t at the Figure 7 "
            "optimum; low values migrate too eagerly, high values stop "
            "responding to signature dilution."
        ),
        builder=_fig8_dilution,
        metrics=("I-MPKI", "D-MPKI", "migrations"),
    )
)

register_figure(
    Figure(
        name="fig10-mpki",
        title="Figure 10: L1 MPKI by workload and variant",
        description=(
            "Instruction and data MPKI for every workload under the "
            "baseline, the prefetcher/upper-bound references, and SLICC; "
            "deltas are relative to the per-workload base run."
        ),
        builder=lambda scale: _per_workload_rows(
            scale, ("base", "nextline", "pif", "slicc", "slicc-sw")
        ),
        metrics=("I-MPKI", "D-MPKI", "bpki"),
    )
)

register_figure(
    Figure(
        name="fig11-speedup",
        title="Figure 11: performance relative to the OS baseline",
        description=(
            "Makespan speedup of the migrating variants (and STEPS) over "
            "the per-workload base run."
        ),
        builder=lambda scale: _per_workload_rows(
            scale, ("slicc", "slicc-sw", "slicc-pp", "steps")
        ),
        metrics=("IPC", "migrations", "util"),
    )
)

register_figure(
    Figure(
        name="webserve-churn",
        title="Extension: web-serving churn",
        description=(
            "The webserve workload (many short handler threads, high "
            "instruction churn) under every reference and SLICC variant; "
            "inter-thread reuse is all that is available to harvest."
        ),
        builder=lambda scale: _per_workload_rows(
            scale,
            ("nextline", "pif", "slicc", "slicc-sw", "steps"),
            workloads=("webserve",),
        ),
        metrics=("I-MPKI", "D-MPKI", "migrations", "util"),
    )
)

register_figure(
    Figure(
        name="phase-robustness",
        title="Extension: mid-trace mix shift",
        description=(
            "TPC-C-1 against its phase-shifting variant: SLICC teams "
            "keyed to the phase-1 mix must re-form when the mix inverts "
            "mid-trace."
        ),
        builder=lambda scale: _per_workload_rows(
            scale,
            ("slicc", "slicc-sw", "slicc-pp"),
            workloads=("tpcc-1", "phased"),
        ),
        metrics=("I-MPKI", "D-MPKI", "migrations", "util"),
    )
)

#: Workloads the policy-comparison figure spans: the canonical OLTP
#: trace plus the two adversarial extensions, which is where alternative
#: scheduling policies differentiate (churn defeats slow assembly, mix
#: shift defeats static placement).
POLICY_COMPARISON_WORKLOADS = ("tpcc-1", "webserve", "phased")

register_figure(
    Figure(
        name="policy-comparison",
        title="Extension: scheduling-policy comparison",
        description=(
            "Every policy in the scheduling registry — the paper's seven "
            "variants plus the ablation extensions (tmi: fill-up-only "
            "migration; affinity: static type placement; random-migrate: "
            "SLICC-rate migration to random targets) — on tpcc-1, "
            "webserve and phased, each against the per-workload base "
            "run. The sweep is registry-driven: registering a policy "
            "adds its rows."
        ),
        # The row list queries the registry at build time, so policies
        # registered after this module's import are still swept.
        builder=lambda scale: _per_workload_rows(
            scale, policy_names(), workloads=POLICY_COMPARISON_WORKLOADS
        ),
        metrics=("I-MPKI", "D-MPKI", "migrations", "util"),
    )
)
