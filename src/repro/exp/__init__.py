"""Experiment orchestration: declarative specs, parallel runs, caching.

The layer every campaign goes through::

    from repro.exp import ExperimentSpec, Runner, ResultStore, grid, summarize

    base = ExperimentSpec("tpcc-1", scale="ci", n_threads=32, seed=7)
    specs = grid(base, {"variant": ["slicc-sw"],
                        "slicc.dilution_t": [2, 6, 10]})
    runner = Runner(store=ResultStore("results/"), jobs=4)
    results = runner.run(specs)
    print(summarize(zip(specs, results)))

Specs are frozen and content-hashed; the runner fans out over processes
and the store makes repeated sweeps incremental.
"""

from repro.exp.faults import FaultPlan, active_plan, parse_fault_spec
from repro.exp.figures import (
    Figure,
    FigureRow,
    figure_names,
    get_figure,
    register_figure,
    select_figures,
)
from repro.exp.pool import FaultTolerantPool, SpecOutcome
from repro.exp.queue import (
    ClaimedSpec,
    DrainReport,
    LeaseHeartbeat,
    QueueStatus,
    StaleLease,
    WorkQueue,
    drain,
    resolve_queue_path,
)
from repro.exp.runner import Runner, RunnerStats
from repro.exp.spec import (
    ExperimentSpec,
    grid,
    product,
    spec_for,
    spec_from_dict,
    trace_fingerprint,
    with_overrides,
)
from repro.exp.specfile import load_spec_file
from repro.exp.store import (
    STORE_BACKENDS,
    LoadReport,
    MigrationReport,
    ResultStore,
    StoreAudit,
    audit_store,
    compact_store,
    describe_store,
    migrate_store,
    resolve_backend,
    resolve_store_path,
    result_from_dict,
    result_to_dict,
    result_to_json,
)
from repro.exp.summarize import summarize

__all__ = [
    "ClaimedSpec",
    "DrainReport",
    "ExperimentSpec",
    "FaultPlan",
    "FaultTolerantPool",
    "Figure",
    "FigureRow",
    "LeaseHeartbeat",
    "LoadReport",
    "MigrationReport",
    "QueueStatus",
    "ResultStore",
    "STORE_BACKENDS",
    "Runner",
    "RunnerStats",
    "SpecOutcome",
    "StaleLease",
    "StoreAudit",
    "WorkQueue",
    "active_plan",
    "audit_store",
    "compact_store",
    "describe_store",
    "drain",
    "migrate_store",
    "resolve_backend",
    "figure_names",
    "get_figure",
    "grid",
    "load_spec_file",
    "parse_fault_spec",
    "register_figure",
    "select_figures",
    "product",
    "resolve_queue_path",
    "resolve_store_path",
    "result_from_dict",
    "result_to_dict",
    "result_to_json",
    "spec_for",
    "spec_from_dict",
    "summarize",
    "trace_fingerprint",
    "with_overrides",
]
