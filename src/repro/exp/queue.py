"""Durable, lease-based work queue for multi-process sweep execution.

PR 7 made one ``Runner`` process crash-safe; this module removes the
remaining single point of failure — the coordinating process itself. A
sweep is *enqueued* once, and any number of independent ``repro queue
work`` processes (started at different times, on any machine sharing the
filesystem) drain it against one :class:`~repro.exp.store.ResultStore`.
There is no coordinator: every fact lives in an append-only queue file
built from the same primitives as the store.

**Queue file.** ``queue.jsonl`` next to the store, one fsync'd JSON
event per line, appended under an advisory ``flock`` on a ``.lock``
sidecar with the store's self-healing torn-tail rule. Queue *state* is
the fold of the events, last-wins per spec key:

========== ==========================================================
event      meaning / fold rule
========== ==========================================================
enqueued   create a ``pending`` entry carrying the spec payload
           (duplicate keys are ignored — enqueue is idempotent)
claimed    entry becomes ``leased`` by ``worker`` until ``deadline``;
           the per-key claim count increments (ignored on terminal
           entries)
renewed    heartbeat — extends ``deadline`` iff still leased by the
           same worker
abandoned  lease given up (voluntarily on interrupt, or by whichever
           worker reclaimed it after expiry) — entry back to
           ``pending``
done       terminal success; a second ``done`` is a no-op, and
           ``done`` supersedes an earlier ``failed`` (store parity)
failed     terminal failure (unless already ``done``) with the error
           recorded
========== ==========================================================

**Leases.** A claim is an appended ``claimed`` event with the worker id
and a wall-clock deadline; a heartbeat thread renews held leases at a
quarter of the lease period. If a worker is SIGKILL'd (or its machine
drops off the filesystem), its heartbeats stop, the deadline passes, and
*any* worker may reclaim the entry — staggered by the PR-7 deterministic
backoff/jitter keyed on ``(spec key, claiming worker)`` so a fleet
noticing the same orphan does not thundering-herd the lock — up to a
per-key claim budget, after which the entry fails terminally.

**Why at-least-once is safe.** A lost ``done`` (torn write, worker dying
after persisting the result but before the event) means a spec may run
twice. Spec keys are content hashes and the engine is deterministic, so
the second run appends a byte-identical result row; the store's
last-wins load collapses it and the late ``mark_done`` is a no-op. Every
transition is validated against a fresh fold *under the file lock* (a
claim that did not survive the append is simply not held), so torn queue
events degrade to lost work, never to wrong results.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

try:  # Advisory locking is POSIX-only; the queue degrades gracefully.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.errors import ConfigurationError, ReproError, SweepFailure
from repro.exp import faults
from repro.exp.pool import _backoff_delay
from repro.exp.spec import ExperimentSpec, spec_from_dict
from repro.exp.store import _resolve_jsonl, tail_torn

__all__ = [
    "ClaimedSpec",
    "DrainReport",
    "LeaseHeartbeat",
    "QueueStatus",
    "StaleLease",
    "WorkQueue",
    "drain",
    "resolve_queue_path",
]

#: Entry states produced by folding the event log.
PENDING, LEASED, DONE, FAILED = "pending", "leased", "done", "failed"

_EVENTS = frozenset(
    ("enqueued", "claimed", "renewed", "done", "failed", "abandoned")
)

#: Queue events whose torn loss is recoverable by design and may
#: therefore be torn by the ``torn_queue`` fault kind. Tearing terminal
#: events would be modelled wrong: a worker that appended ``done``
#: without crashing still believes (correctly) that the result is in
#: the store.
_TEARABLE_EVENTS = frozenset(("claimed", "renewed"))


def resolve_queue_path(path: Union[str, Path]) -> Path:
    """Normalise a queue argument to its backing ``queue.jsonl`` file.

    Same rules as the store's: a directory maps to ``<dir>/queue.jsonl``
    (so queue and store naturally share a campaign directory), an
    explicit ``*.jsonl`` path is taken as-is.
    """
    return _resolve_jsonl(path, "queue.jsonl")


def default_worker_id() -> str:
    """A worker id unique across hosts and process lifetimes."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


@dataclass
class _Entry:
    """Folded state of one spec key."""

    key: str
    payload: dict
    seq: int
    status: str = PENDING
    worker: Optional[str] = None
    deadline: float = 0.0
    #: Total ``claimed`` events folded for this key (the claim budget).
    claims: int = 0
    error: Optional[str] = None


@dataclass(frozen=True)
class ClaimedSpec:
    """One lease handed out by :meth:`WorkQueue.claim`."""

    key: str
    #: The ``enqueued`` spec payload (``ExperimentSpec.to_dict`` shape).
    payload: dict
    #: 1-based claim number for this key (>1 means it was reclaimed or
    #: released at least once before).
    attempt: int
    #: True when this claim took over an expired lease from another
    #: worker rather than picking up fresh pending work.
    reclaimed: bool = False


@dataclass(frozen=True)
class StaleLease:
    """Diagnostic for a lease whose deadline has passed."""

    key: str
    worker: Optional[str]
    #: Seconds past the deadline.
    overdue: float
    claims: int


@dataclass
class QueueStatus:
    """Snapshot of a queue's folded state (``repro queue status``)."""

    path: Path
    total: int = 0
    pending: int = 0
    leased: int = 0
    done: int = 0
    failed: int = 0
    #: Event lines that failed to parse (torn claims/renewals, manual
    #: edits); harmless — a torn event is a transition that never took.
    corrupt_events: int = 0
    stale: list[StaleLease] = field(default_factory=list)
    #: Live lease counts per worker id.
    workers: dict[str, int] = field(default_factory=dict)

    @property
    def drained(self) -> bool:
        """Nothing left to run: no pending work and no live leases."""
        return self.pending == 0 and self.leased == 0

    def to_payload(self) -> dict:
        """JSON-ready rendering for ``repro queue status --json``."""
        return {
            "path": str(self.path),
            "total": self.total,
            "pending": self.pending,
            "leased": self.leased,
            "done": self.done,
            "failed": self.failed,
            "stale": [
                {
                    "key": s.key,
                    "worker": s.worker,
                    "overdue_seconds": round(s.overdue, 3),
                    "claims": s.claims,
                }
                for s in self.stale
            ],
            "stale_leases": len(self.stale),
            "corrupt_events": self.corrupt_events,
            "drained": self.drained,
            "workers": dict(self.workers),
        }


class WorkQueue:
    """Lease-based work queue over one append-only event file.

    Thread-safe within a process (the heartbeat thread shares the
    instance with the work loop) and multi-process safe across instances
    via the file lock. Every public mutation follows the same shape:
    take the lock, fold any new events, validate the transition against
    the fresh state, append, fold again — so two workers can never hold
    the same live lease, no matter how their schedulers interleave.

    Args:
        path: queue directory or ``*.jsonl`` file (see
            :func:`resolve_queue_path`).
        worker_id: identity used for claims; defaults to a
            host-pid-random id. Pass an explicit id for deterministic
            chaos profiles.
        lease_seconds: lease duration granted per claim/renewal.
        max_claims: total ``claimed`` events allowed per key before an
            expired lease fails terminally instead of being reclaimed
            (guards against a spec that kills every worker that touches
            it).
        backoff: base seconds of the deterministic reclaim stagger.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        worker_id: Optional[str] = None,
        lease_seconds: float = 60.0,
        max_claims: int = 3,
        backoff: float = 0.5,
    ) -> None:
        if lease_seconds <= 0:
            raise ConfigurationError(
                f"lease_seconds must be positive, got {lease_seconds}"
            )
        self._path = resolve_queue_path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self.worker_id = worker_id or default_worker_id()
        self.lease_seconds = float(lease_seconds)
        self.max_claims = max(1, int(max_claims))
        self.backoff = backoff
        self._mutex = threading.RLock()
        self._entries: dict[str, _Entry] = {}
        self._offset = 0  # byte offset of the first unfolded event
        self._next_seq = 0
        self.corrupt_events = 0

    @property
    def path(self) -> Path:
        """Backing event file."""
        return self._path

    @property
    def lock_path(self) -> Path:
        """Sidecar lockfile serialising appends across processes."""
        return self._path.with_name(self._path.name + ".lock")

    def exists(self) -> bool:
        """Has anything ever been enqueued here?"""
        return self._path.exists()

    # -- locking, folding, appending ------------------------------------

    @contextmanager
    def _locked(self):
        """Process mutex + advisory file lock (in that order, always)."""
        with self._mutex:
            if fcntl is None:
                yield
                return
            fd = os.open(self.lock_path, os.O_CREAT | os.O_RDWR, 0o644)
            try:
                fcntl.flock(fd, fcntl.LOCK_EX)
                yield
            finally:
                os.close(fd)  # closing the descriptor releases the flock

    def _refresh_locked(self) -> None:
        """Fold events appended since the last refresh (lock held).

        Only newline-terminated lines are consumed; a torn tail stays
        unfolded until the next appender heals it, at which point the
        fragment parses as one corrupt line and is skipped.
        """
        if not self._path.exists():
            return
        with self._path.open("rb") as fh:
            fh.seek(self._offset)
            data = fh.read()
        end = data.rfind(b"\n")
        if end < 0:
            return
        chunk = data[: end + 1]
        self._offset += len(chunk)
        for raw in chunk.split(b"\n")[:-1]:
            line = raw.strip()
            if not line:
                continue
            event = _parse_event(line)
            if event is None:
                self.corrupt_events += 1
                continue
            self._fold(event)

    def _fold(self, event: dict) -> None:
        kind = event["event"]
        key = event["key"]
        entry = self._entries.get(key)
        if entry is None:
            # Non-enqueued events for unknown keys (hand-truncated log)
            # still synthesize an entry so accounting stays consistent;
            # their empty payload makes claim() fail them, not run them.
            self._next_seq += 1
            entry = self._entries[key] = _Entry(
                key=key,
                payload=dict(event.get("spec") or {}),
                seq=self._next_seq,
            )
            if kind == "enqueued":
                return
        if kind == "enqueued":
            return  # duplicate enqueue of a known key: idempotent no-op
        if kind == "claimed":
            if entry.status in (DONE, FAILED):
                return
            entry.status = LEASED
            entry.worker = event.get("worker")
            entry.deadline = float(event.get("deadline") or 0.0)
            entry.claims += 1
        elif kind == "renewed":
            if entry.status == LEASED and entry.worker == event.get("worker"):
                entry.deadline = float(event.get("deadline") or 0.0)
        elif kind == "abandoned":
            if entry.status == LEASED:
                entry.status = PENDING
                entry.worker, entry.deadline = None, 0.0
        elif kind == "done":
            # Unconditional, including over an earlier `failed`: the
            # result exists, and results outrank failure provenance
            # exactly as in the store.
            entry.status = DONE
            entry.worker, entry.deadline, entry.error = None, 0.0, None
        elif kind == "failed":
            if entry.status != DONE:
                entry.status = FAILED
                entry.worker, entry.deadline = None, 0.0
                entry.error = event.get("error")

    def _append_locked(self, event: dict) -> None:
        """Crash-safe single-line event append (lock held).

        Mirrors the store's append: heal a torn tail with a newline,
        write the whole line with one ``os.write``, fsync. The
        ``torn_queue`` fault kind may tear claim/renewal events — the
        two whose loss the protocol absorbs without operator action.
        """
        line = (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")
        plan = faults.active_plan()
        torn = (
            plan is not None
            and event["event"] in _TEARABLE_EVENTS
            and plan.should_tear(
                f"{event['key']}:{event['event']}", kind="torn_queue"
            )
        )
        fd = os.open(self._path, os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            if tail_torn(fd):
                os.write(fd, b"\n")
            if torn:
                # Injected torn write: half the line, no newline, no
                # fsync — what a power loss mid-append leaves behind.
                os.write(fd, line[: max(1, len(line) // 2)])
                return
            os.write(fd, line)
            os.fsync(fd)
        finally:
            os.close(fd)

    def _ordered(self) -> list[_Entry]:
        return sorted(self._entries.values(), key=lambda e: e.seq)

    # -- the protocol ----------------------------------------------------

    def enqueue(self, specs: Iterable[ExperimentSpec]) -> int:
        """Append ``enqueued`` events for specs not already queued.

        Returns the number of *new* entries; duplicate keys (within the
        batch or against the existing queue) are skipped, so re-running
        an enqueue after adding grid points only adds the new points.

        Raises:
            ConfigurationError: for a spec bound to an explicit
                in-memory trace — its trace exists only in the enqueuing
                process and no independent worker could ever rebuild it.
        """
        now = time.time()
        added = 0
        with self._locked():
            self._refresh_locked()
            for spec in specs:
                if spec.trace_id is not None:
                    raise ConfigurationError(
                        "cannot enqueue a spec bound to an explicit "
                        "in-memory trace (trace_id set): queue workers "
                        "run in other processes and rebuild traces "
                        "declaratively"
                    )
                key = spec.key()
                if key in self._entries:
                    continue
                self._append_locked(
                    {
                        "event": "enqueued",
                        "key": key,
                        "t": now,
                        "spec": spec.to_dict(),
                    }
                )
                self._refresh_locked()
                added += 1
        return added

    def claim(self, limit: int = 1) -> list[ClaimedSpec]:
        """Claim up to ``limit`` entries: pending first (FIFO), then
        expired leases eligible for reclamation.

        An expired lease is reclaimed only once ``now`` has passed the
        deadline *plus* this worker's deterministic backoff for that
        key, so workers that all notice the same orphan take it in a
        staggered, reproducible order instead of storming the lock. An
        expired lease whose claim budget is exhausted fails terminally
        instead.
        """
        now = time.time()
        with self._locked():
            self._refresh_locked()
            picks: list[tuple[_Entry, bool]] = []
            for entry in self._ordered():
                if len(picks) >= limit:
                    break
                if entry.status != PENDING:
                    continue
                if not entry.payload:
                    self._append_locked(
                        {
                            "event": "failed",
                            "key": entry.key,
                            "t": now,
                            "worker": self.worker_id,
                            "kind": "bad-spec",
                            "error": "queue entry has no spec payload",
                        }
                    )
                    continue
                picks.append((entry, False))
            for entry in self._ordered():
                if len(picks) >= limit:
                    break
                if entry.status != LEASED or now < entry.deadline:
                    continue
                if entry.claims >= self.max_claims:
                    self._append_locked(
                        {
                            "event": "failed",
                            "key": entry.key,
                            "t": now,
                            "worker": self.worker_id,
                            "kind": "lease-expired",
                            "error": (
                                f"lease expired under worker "
                                f"{entry.worker!r} and the claim budget "
                                f"({self.max_claims}) is exhausted"
                            ),
                        }
                    )
                    continue
                stagger = _backoff_delay(
                    self.backoff,
                    f"{entry.key}:{self.worker_id}",
                    entry.claims,
                )
                if now < entry.deadline + stagger:
                    continue
                self._append_locked(
                    {
                        "event": "abandoned",
                        "key": entry.key,
                        "t": now,
                        "worker": entry.worker,
                        "by": self.worker_id,
                        "reason": "lease-expired",
                    }
                )
                picks.append((entry, True))
            deadline = now + self.lease_seconds
            for entry, _ in picks:
                self._append_locked(
                    {
                        "event": "claimed",
                        "key": entry.key,
                        "t": now,
                        "worker": self.worker_id,
                        "deadline": deadline,
                        "attempt": entry.claims + 1,
                    }
                )
            self._refresh_locked()
            # Only claims that survived the append (torn claim events
            # fold to nothing) are actually held.
            out = []
            for entry, reclaimed in picks:
                current = self._entries.get(entry.key)
                if (
                    current is not None
                    and current.status == LEASED
                    and current.worker == self.worker_id
                ):
                    out.append(
                        ClaimedSpec(
                            key=entry.key,
                            payload=current.payload,
                            attempt=current.claims,
                            reclaimed=reclaimed,
                        )
                    )
            return out

    def renew(self, keys: Sequence[str]) -> list[str]:
        """Extend this worker's leases; returns the keys it *lost*
        (reclaimed by someone else or already terminal)."""
        now = time.time()
        lost = []
        with self._locked():
            self._refresh_locked()
            for key in keys:
                entry = self._entries.get(key)
                if (
                    entry is None
                    or entry.status != LEASED
                    or entry.worker != self.worker_id
                ):
                    lost.append(key)
                    continue
                self._append_locked(
                    {
                        "event": "renewed",
                        "key": key,
                        "t": now,
                        "worker": self.worker_id,
                        "deadline": now + self.lease_seconds,
                    }
                )
            self._refresh_locked()
        return lost

    def release(self, keys: Sequence[str]) -> None:
        """Voluntarily abandon held leases (interrupted worker), so
        other workers pick them up immediately instead of waiting for
        expiry."""
        now = time.time()
        with self._locked():
            self._refresh_locked()
            for key in keys:
                entry = self._entries.get(key)
                if (
                    entry is not None
                    and entry.status == LEASED
                    and entry.worker == self.worker_id
                ):
                    self._append_locked(
                        {
                            "event": "abandoned",
                            "key": key,
                            "t": now,
                            "worker": self.worker_id,
                            "by": self.worker_id,
                            "reason": "released",
                        }
                    )
            self._refresh_locked()

    def mark_done(self, key: str) -> bool:
        """Record terminal success. Returns ``False`` (a no-op) when the
        entry is already done — the late half of a double finish."""
        now = time.time()
        with self._locked():
            self._refresh_locked()
            entry = self._entries.get(key)
            if entry is not None and entry.status == DONE:
                return False
            self._append_locked(
                {
                    "event": "done",
                    "key": key,
                    "t": now,
                    "worker": self.worker_id,
                }
            )
            self._refresh_locked()
            entry = self._entries.get(key)
            return entry is not None and entry.status == DONE

    def mark_failed(self, key: str, error: str, kind: str = "error") -> bool:
        """Record terminal failure (unless the entry already succeeded,
        in which case the result wins and this is a no-op)."""
        now = time.time()
        with self._locked():
            self._refresh_locked()
            entry = self._entries.get(key)
            if entry is not None and entry.status == DONE:
                return False
            self._append_locked(
                {
                    "event": "failed",
                    "key": key,
                    "t": now,
                    "worker": self.worker_id,
                    "kind": kind,
                    "error": error,
                }
            )
            self._refresh_locked()
            return True

    def reclaim_expired(self) -> tuple[list[str], list[str]]:
        """Operator-initiated reclaim (``repro queue reclaim``): every
        expired lease goes straight back to ``pending`` (no stagger —
        this is an explicit command, not a racing fleet), except those
        whose claim budget is exhausted, which fail terminally.

        Returns ``(keys released to pending, keys failed)``.
        """
        now = time.time()
        released, exhausted = [], []
        with self._locked():
            self._refresh_locked()
            for entry in self._ordered():
                if entry.status != LEASED or now < entry.deadline:
                    continue
                if entry.claims >= self.max_claims:
                    self._append_locked(
                        {
                            "event": "failed",
                            "key": entry.key,
                            "t": now,
                            "worker": self.worker_id,
                            "kind": "lease-expired",
                            "error": (
                                f"lease expired under worker "
                                f"{entry.worker!r} and the claim budget "
                                f"({self.max_claims}) is exhausted"
                            ),
                        }
                    )
                    exhausted.append(entry.key)
                else:
                    self._append_locked(
                        {
                            "event": "abandoned",
                            "key": entry.key,
                            "t": now,
                            "worker": entry.worker,
                            "by": self.worker_id,
                            "reason": "reclaimed",
                        }
                    )
                    released.append(entry.key)
            self._refresh_locked()
        return released, exhausted

    def snapshot(self) -> QueueStatus:
        """Fold up to now and report counts + stale-lease diagnostics."""
        now = time.time()
        with self._locked():
            self._refresh_locked()
            entries = self._ordered()
            corrupt = self.corrupt_events
        status = QueueStatus(path=self._path, corrupt_events=corrupt)
        for entry in entries:
            status.total += 1
            if entry.status == PENDING:
                status.pending += 1
            elif entry.status == LEASED:
                status.leased += 1
                worker = entry.worker or "?"
                status.workers[worker] = status.workers.get(worker, 0) + 1
                if now >= entry.deadline:
                    status.stale.append(
                        StaleLease(
                            key=entry.key,
                            worker=entry.worker,
                            overdue=now - entry.deadline,
                            claims=entry.claims,
                        )
                    )
            elif entry.status == DONE:
                status.done += 1
            else:
                status.failed += 1
        return status


def _parse_event(line: bytes) -> Optional[dict]:
    """Parse one event line, or ``None`` for anything malformed."""
    try:
        event = json.loads(line.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(event, dict):
        return None
    if event.get("event") not in _EVENTS:
        return None
    if not isinstance(event.get("key"), str):
        return None
    return event


# ----------------------------------------------------------------------
# The worker side: heartbeat + drain loop (`repro queue work`)
# ----------------------------------------------------------------------


class LeaseHeartbeat(threading.Thread):
    """Daemon thread renewing held leases at ``lease_seconds / 4``.

    The work loop hands it the claimed keys for the duration of each
    batch; renewal failures are swallowed (a missed beat costs at worst
    an early reclaim, which at-least-once semantics absorb).
    """

    def __init__(
        self, queue: WorkQueue, interval: Optional[float] = None
    ) -> None:
        super().__init__(name=f"lease-heartbeat-{queue.worker_id}", daemon=True)
        self._queue = queue
        self.interval = (
            interval
            if interval is not None
            else max(0.05, queue.lease_seconds / 4.0)
        )
        self._held: set[str] = set()
        self._held_lock = threading.Lock()
        self._stopped = threading.Event()

    def hold(self, keys: Iterable[str]) -> None:
        with self._held_lock:
            self._held.update(keys)

    def drop(self, keys: Iterable[str]) -> None:
        with self._held_lock:
            self._held.difference_update(keys)

    def run(self) -> None:
        while not self._stopped.wait(self.interval):
            with self._held_lock:
                keys = sorted(self._held)
            if not keys:
                continue
            try:
                self._queue.renew(keys)
            except OSError:  # pragma: no cover - transient fs trouble
                pass  # next beat retries; worst case the lease expires

    def stop(self) -> None:
        self._stopped.set()
        self.join(timeout=5.0)


@dataclass
class DrainReport:
    """What one :func:`drain` call did."""

    worker_id: str
    claimed: int = 0
    completed: int = 0
    failed: int = 0
    #: Claims taken over from expired (dead) workers.
    reclaimed: int = 0
    #: Claim cycles executed.
    cycles: int = 0


def _load_claimed_spec(claim: ClaimedSpec):
    """Rebuild the spec for a claim; ``(spec, None)`` or ``(None, why)``.

    The rebuilt spec's key must equal the queued key — otherwise marking
    the entry done would never match the store row and the entry would
    be reclaimed forever.
    """
    try:
        spec = spec_from_dict(claim.payload)
    except ReproError as exc:
        return None, f"unloadable spec payload: {exc}"
    key = spec.key()
    if key != claim.key:
        return None, (
            f"spec payload rebuilds to key {key[:12]}…, not the queued "
            "key; refusing to run"
        )
    return spec, None


def drain(
    queue: WorkQueue,
    runner,
    *,
    batch: Optional[int] = None,
    poll_seconds: float = 0.5,
    heartbeat_interval: Optional[float] = None,
) -> DrainReport:
    """Work loop of one ``repro queue work`` process.

    Repeatedly claims up to ``batch`` specs (default: the runner's job
    count), runs them through ``runner.run`` — which keeps all the PR-7
    in-process retry/timeout/fault semantics — and marks each entry
    ``done`` or ``failed`` from what actually landed in the runner's
    store. Returns once the queue is drained (no pending entries, no
    live leases anywhere); while other workers still hold leases it
    polls, ready to reclaim if they die.

    On KeyboardInterrupt (the runner's drain raises it after persisting
    in-flight results) entries whose result made it to the store are
    marked done, the rest are released for other workers, and the
    interrupt is re-raised so the CLI exits 130.
    """
    if batch is None:
        batch = max(1, int(getattr(runner, "jobs", 1) or 1))
    report = DrainReport(worker_id=queue.worker_id)
    heartbeat = LeaseHeartbeat(queue, interval=heartbeat_interval)
    heartbeat.start()
    held: list[ClaimedSpec] = []
    settled: set[str] = set()
    try:
        while True:
            claims = queue.claim(limit=batch)
            if not claims:
                if queue.snapshot().drained:
                    break
                time.sleep(poll_seconds)
                continue
            # Process-level chaos hook: a seeded `die` kills this whole
            # worker *here*, holding fresh unserved leases — the orphan
            # case surviving workers must reclaim.
            faults.inject_process_faults(queue.worker_id, report.cycles)
            report.cycles += 1
            held, settled = claims, set()
            heartbeat.hold([c.key for c in claims])
            report.claimed += len(claims)
            took_over = sum(1 for c in claims if c.reclaimed)
            report.reclaimed += took_over
            runner.stats.reclaimed += took_over
            runnable = []
            for c in claims:
                spec, why = _load_claimed_spec(c)
                if spec is None:
                    queue.mark_failed(c.key, error=why, kind="bad-spec")
                    settled.add(c.key)
                    report.failed += 1
                else:
                    runnable.append(spec)
            if runnable:
                try:
                    runner.run(runnable)
                except SweepFailure:
                    pass  # per-spec outcomes are read from the store
            for c in claims:
                if c.key in settled:
                    continue
                if runner.store.get(c.key) is not None:
                    queue.mark_done(c.key)
                    report.completed += 1
                else:
                    info = runner.store.failure_info(c.key) or {}
                    queue.mark_failed(
                        c.key,
                        error=info.get("error") or "spec produced no result",
                        kind=info.get("kind") or "error",
                    )
                    report.failed += 1
                settled.add(c.key)
            heartbeat.drop([c.key for c in claims])
            held = []
    except KeyboardInterrupt:
        unfinished = []
        for c in held:
            if c.key in settled:
                continue
            if runner.store.get(c.key) is not None:
                queue.mark_done(c.key)
                report.completed += 1
            else:
                unfinished.append(c.key)
        if unfinished:
            queue.release(unfinished)
        raise
    finally:
        heartbeat.stop()
    return report
