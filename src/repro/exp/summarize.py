"""Bridge from experiment results to the report tables.

``summarize`` renders a (spec, result) family as the aligned monospace
table the benchmarks print, via :func:`repro.analysis.report.format_table`
so experiment output and figure output stay visually identical.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.analysis.report import format_table
from repro.exp.metrics import DEFAULT_METRICS, METRICS
from repro.exp.spec import ExperimentSpec
from repro.sim.results import SimulationResult

__all__ = ["DEFAULT_METRICS", "METRICS", "summarize"]


def summarize(
    runs: Sequence[Tuple[ExperimentSpec, SimulationResult]],
    baseline: Optional[SimulationResult] = None,
    metrics: Sequence[str] = DEFAULT_METRICS,
    title: str = "",
) -> str:
    """Format a family of runs as a table.

    Args:
        runs: (spec, result) pairs, e.g. ``zip(specs, runner.run(specs))``.
        baseline: when given, a ``speedup`` column (relative makespan vs
            this result) is appended.
        metrics: column names from ``I-MPKI, D-MPKI, cycles, migrations,
            util, bpki, IPC``.
        title: table caption.

    Raises:
        KeyError: for an unknown metric name.
    """
    extractors = [(name, METRICS[name]) for name in metrics]
    headers = ["label", "variant"] + [name for name, _ in extractors]
    if baseline is not None:
        headers.append("speedup")
    rows = []
    for spec, result in runs:
        row: list[object] = [spec.display_label(), spec.variant]
        row.extend(extract(result) for _, extract in extractors)
        if baseline is not None:
            row.append(result.speedup_over(baseline))
        rows.append(row)
    return format_table(headers, rows, title=title)
