"""Deterministic fault injection for the execution layer.

Chaos testing only works when every recovery path can be exercised on
demand, repeatably. This module turns the environment variable
``REPRO_FAULT`` into a :class:`FaultPlan` that the worker entry point and
the :class:`~repro.exp.store.ResultStore` consult at their natural
failure points::

    REPRO_FAULT=crash:0.3,hang:0.1,torn_write:0.25
    REPRO_FAULT_SEED=42

Five fault kinds are understood:

``crash``
    the worker process dies with ``os._exit`` mid-task (models OOM
    kills, segfaults in native code, a machine rebooting under a
    distributed runner).
``hang``
    the worker sleeps ``REPRO_FAULT_HANG_S`` seconds (default 3600)
    before simulating — long enough that any configured per-spec
    timeout fires first (models livelock / a poisoned spec that never
    terminates).
``torn_write``
    the store writes only a prefix of the JSONL line and no newline
    (models a crash or power loss mid-append).
``die``
    the *whole worker process* (a ``repro queue work`` process, pool
    and all — not just one pool child) dies with ``os._exit`` right
    after claiming queue work, leaving fresh leases orphaned (models a
    SIGKILL'd worker or a machine dropping off the shared filesystem).
    Keyed on ``(worker id, claim cycle)`` rather than a spec key.
``torn_queue``
    a queue-file event append tears like ``torn_write``, but only for
    events whose loss is recoverable by design (``claimed`` /
    ``renewed`` — a torn claim is simply not held, a torn renewal lets
    the lease expire early). Kept separate from ``torn_write`` so a
    multi-process chaos profile can tear queue traffic without also
    tearing result rows out from under workers that already marked
    their spec ``done``.

Each rule is ``kind:probability`` with an optional ``@n`` suffix that
restricts injection to attempts ``< n``, so ``crash:1@1`` crashes the
first attempt of every spec and lets the retry succeed — the exact shape
the recovery-matrix tests need.

Decisions are *deterministic*: whether a fault fires for a given
``(kind, spec key, attempt)`` is a pure function of the seed, so a
seeded chaos run injects the identical fault schedule however the pool
interleaves workers, and CI chaos legs cannot flake. (``torn_write``
keys on a per-process append counter instead of an attempt number,
since the store has no notion of retries.)
"""

from __future__ import annotations

import hashlib
import os
import time
from collections import defaultdict
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError

__all__ = [
    "CRASH_EXIT_CODE",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "inject_process_faults",
    "inject_worker_faults",
    "parse_fault_spec",
]

#: Exit status of a worker killed by an injected crash — distinctive so
#: pool diagnostics can tell an injected death from a real one.
CRASH_EXIT_CODE = 87

KINDS = ("crash", "hang", "torn_write", "die", "torn_queue")

# Per-process count of tear decisions per (kind, key): the nth append of
# a key rolls independently of the (n-1)th, so a store retrying an
# append (or a resumed run re-recording a row, or a worker re-claiming a
# queue entry whose claim event tore) is not doomed to tear the same key
# forever within one process.
_torn_rolls: dict[str, int] = defaultdict(int)


@dataclass(frozen=True)
class FaultRule:
    """One ``kind:probability[@max_attempts]`` clause."""

    kind: str
    probability: float
    #: Inject only while ``attempt < max_attempts`` (``None`` = always).
    max_attempts: Optional[int] = None


@dataclass(frozen=True)
class FaultPlan:
    """A parsed, seeded fault schedule."""

    rules: tuple[FaultRule, ...]
    seed: int = 0
    hang_seconds: float = 3600.0

    def rule(self, kind: str) -> Optional[FaultRule]:
        for rule in self.rules:
            if rule.kind == kind:
                return rule
        return None

    def should(self, kind: str, key: str, attempt: int = 0) -> bool:
        """Deterministic roll: does ``kind`` fire for (key, attempt)?"""
        rule = self.rule(kind)
        if rule is None:
            return False
        if rule.max_attempts is not None and attempt >= rule.max_attempts:
            return False
        if rule.probability >= 1.0:
            return True
        digest = hashlib.sha256(
            f"{self.seed}:{kind}:{key}:{attempt}".encode("utf-8")
        ).digest()
        roll = int.from_bytes(digest[:8], "big") / 2.0**64
        return roll < rule.probability

    def should_tear(self, key: str, kind: str = "torn_write") -> bool:
        """Roll for a torn append (per-process append counter).

        ``kind`` selects the rule: ``torn_write`` for result-store rows,
        ``torn_queue`` for queue-file events. Counters are namespaced per
        kind so store and queue traffic for the same spec key roll
        independently.
        """
        if self.rule(kind) is None:
            return False
        counter = f"{kind}:{key}"
        n = _torn_rolls[counter]
        _torn_rolls[counter] = n + 1
        return self.should(kind, key, n)


def parse_fault_spec(
    text: str, seed: int = 0, hang_seconds: float = 3600.0
) -> FaultPlan:
    """Parse ``crash:0.3,hang:0.1@1,...`` into a :class:`FaultPlan`.

    Raises:
        ConfigurationError: for unknown kinds, bad probabilities, or a
            malformed clause — a chaos run with a typo'd profile must
            fail loudly, not silently inject nothing.
    """
    rules = []
    for clause in text.split(","):
        clause = clause.strip()
        if not clause:
            continue
        kind, sep, rest = clause.partition(":")
        if not sep:
            raise ConfigurationError(
                f"bad REPRO_FAULT clause {clause!r}: expected "
                "kind:probability[@max_attempts]"
            )
        prob_text, at, attempts_text = rest.partition("@")
        try:
            probability = float(prob_text)
        except ValueError:
            raise ConfigurationError(
                f"bad REPRO_FAULT probability {prob_text!r} in {clause!r}"
            ) from None
        max_attempts = None
        if at:
            try:
                max_attempts = int(attempts_text)
            except ValueError:
                raise ConfigurationError(
                    f"bad REPRO_FAULT attempt bound {attempts_text!r} "
                    f"in {clause!r}"
                ) from None
        if kind not in KINDS:
            raise ConfigurationError(
                f"unknown REPRO_FAULT kind {kind!r}; known: {list(KINDS)}"
            )
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(
                f"REPRO_FAULT probability must be in [0, 1], got "
                f"{probability} in {clause!r}"
            )
        rules.append(FaultRule(kind, probability, max_attempts))
    return FaultPlan(tuple(rules), seed=seed, hang_seconds=hang_seconds)


# (env string, seed string, hang string) -> plan, so repeated calls on
# the put/dispatch paths cost two dict lookups, and tests that
# monkeypatch the environment are picked up immediately.
_plan_cache: dict[tuple, Optional[FaultPlan]] = {}


def active_plan() -> Optional[FaultPlan]:
    """The plan described by ``REPRO_FAULT``, or ``None`` when unset."""
    signature = (
        os.environ.get("REPRO_FAULT", ""),
        os.environ.get("REPRO_FAULT_SEED", "0"),
        os.environ.get("REPRO_FAULT_HANG_S", ""),
    )
    if signature in _plan_cache:
        return _plan_cache[signature]
    text, seed_text, hang_text = signature
    if not text.strip():
        plan = None
    else:
        plan = parse_fault_spec(
            text,
            seed=int(seed_text or "0"),
            hang_seconds=float(hang_text) if hang_text else 3600.0,
        )
    _plan_cache[signature] = plan
    return plan


def inject_worker_faults(key: str, attempt: int) -> None:
    """Worker-side injection point, called before simulating a spec.

    A ``crash`` kills the process the way a real worker death looks to
    the parent (no exception, no unwind — the pipe just closes); a
    ``hang`` sleeps so a per-spec timeout has something to kill.
    """
    plan = active_plan()
    if plan is None:
        return
    if plan.should("crash", key, attempt):
        os._exit(CRASH_EXIT_CODE)
    if plan.should("hang", key, attempt):
        time.sleep(plan.hang_seconds)


def inject_process_faults(worker_id: str, cycle: int) -> None:
    """Process-level injection point for the queue work loop.

    Called right *after* a claim cycle succeeds, so a ``die`` kills the
    whole worker while it holds fresh, unserved leases — the exact
    orphan-reclamation case the queue's chaos proof must exercise. The
    roll keys on ``(worker id, cycle)``: with explicit ``--worker-id``s
    a seeded profile deterministically picks which worker dies and when,
    regardless of how claims interleave across processes.
    """
    plan = active_plan()
    if plan is None:
        return
    if plan.should("die", worker_id, cycle):
        os._exit(CRASH_EXIT_CODE)
