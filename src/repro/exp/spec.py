"""Declarative experiment specifications.

An :class:`ExperimentSpec` is a frozen, hashable description of one
simulation: *which trace* (either a declarative workload reference —
name, scale, thread count, seed — or a fingerprint of an explicit
in-memory :class:`~repro.workloads.trace.Trace`) replayed under *which*
:class:`~repro.sim.engine.SimConfig`. Because the trace generators and
the replay engine are deterministic, the spec fully determines the
:class:`~repro.sim.results.SimulationResult`; its content hash
(:meth:`ExperimentSpec.key`) is therefore a safe cache key for the
:class:`~repro.exp.store.ResultStore`.

Config families are built with :func:`grid` / :func:`product`, which
expand dotted-path axes (``"slicc.dilution_t"``, ``"system.n_cores"``,
``"variant"``) into spec lists::

    base = ExperimentSpec("tpcc-1", scale="ci", n_threads=32, seed=7)
    specs = grid(base, {"variant": ["slicc-sw"],
                        "slicc.dilution_t": [2, 6, 10]})
"""

from __future__ import annotations

import hashlib
import itertools
import json
import typing
from dataclasses import asdict, dataclass, field, fields, is_dataclass, replace
from typing import Iterable, Mapping, Optional

from repro.errors import ConfigurationError
from repro.params import ScalePreset, SliccParams, SystemParams
from repro.sched import POLICY_GATED_FIELDS, get_policy
from repro.sim.engine import SimConfig
from repro.workloads import workload_names
from repro.workloads.trace import Trace

_DEFAULT_CONFIG = SimConfig()


def _stable_hash(payload: object) -> str:
    """SHA-256 over a canonical JSON rendering of ``payload``."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def trace_fingerprint(trace: Trace) -> str:
    """Content hash of an in-memory trace (arrays included).

    Two traces with identical access streams hash identically no matter
    how they were produced, so explicit-trace specs cache correctly even
    for hand-built synthetic traces. The digest is memoised on the trace
    instance (hashing a PAPER-scale trace touches tens of MB, and a
    sweep fingerprints the same trace once per grid point); traces are
    treated as immutable once handed to the experiment layer.
    """
    cached = getattr(trace, "_exp_fingerprint", None)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    h.update(trace.workload.encode("utf-8"))
    h.update(str(trace.instructions_per_iblock).encode())
    for thread in trace.threads:
        h.update(str((thread.thread_id, thread.txn_type)).encode())
        h.update(thread.addr.tobytes())
        h.update(thread.kind.tobytes())
    digest = h.hexdigest()
    trace._exp_fingerprint = digest
    return digest


@dataclass(frozen=True)
class ExperimentSpec:
    """Frozen description of one simulation run.

    Attributes:
        workload: workload name (``tpcc-1`` etc.) for declarative specs;
            informational when ``trace_id`` is set.
        config: full engine configuration, including the variant.
        scale: :class:`~repro.params.ScalePreset` value string.
        n_threads: thread count (``None`` = the scale's default).
        seed: trace-generation seed.
        trace_id: fingerprint of an explicit trace (see
            :func:`spec_for`); when set, the declarative trace fields do
            not participate in the cache key.
        label: display name for tables; never part of the key.
    """

    workload: str
    config: SimConfig = field(default_factory=SimConfig)
    scale: str = "ci"
    n_threads: Optional[int] = None
    seed: int = 1
    trace_id: Optional[str] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.trace_id is None:
            # Validate eagerly so a typo fails at spec-build time, not
            # inside a worker process. (Explicit-trace specs skip this:
            # their workload name is informational and may be synthetic.)
            try:
                ScalePreset(self.scale)
            except ValueError:
                raise ConfigurationError(
                    f"unknown scale {self.scale!r}; known: "
                    f"{[s.value for s in ScalePreset]}"
                ) from None
            if self.workload not in workload_names():
                raise ConfigurationError(
                    f"unknown workload {self.workload!r}; known: "
                    f"{workload_names()}"
                )

    @property
    def variant(self) -> str:
        """The engine variant this spec runs."""
        return self.config.variant

    def canonical_config(self) -> SimConfig:
        """``config`` with fields the engine ignores for this variant
        reset to their defaults, so equivalent runs share one key.

        Which fields a variant reads is declared by its scheduling
        policy (:attr:`repro.sched.SchedulingPolicy.relevant_fields`),
        so a policy that migrates without SLICC's machinery (``tmi``,
        ``random-migrate``) keeps its steal/prefetch knobs in the key
        instead of silently colliding with its own sweeps.
        """
        config = self.config
        relevant = get_policy(config.variant).relevant_fields
        overrides = {
            name: getattr(_DEFAULT_CONFIG, name)
            for name in POLICY_GATED_FIELDS
            if name not in relevant
        }
        if config.kernel != _DEFAULT_CONFIG.kernel:
            # The replay kernel (batch/specialized/inline/fallback)
            # never affects
            # results — all kernels are pinned byte-identical — so it
            # must not fragment the result store.
            overrides["kernel"] = _DEFAULT_CONFIG.kernel
        return replace(config, **overrides) if overrides else config

    def trace_key(self) -> str:
        """Cache key of the trace alone (shared by all variants)."""
        if self.trace_id is not None:
            return self.trace_id
        return _stable_hash(
            {
                "workload": self.workload,
                "scale": self.scale,
                "n_threads": self.n_threads,
                "seed": self.seed,
            }
        )

    def key(self) -> str:
        """Content hash identifying this experiment's result."""
        config_dict = asdict(self.canonical_config())
        # Result-neutral fields are dropped from the hash entirely so
        # keys stay stable across engine versions that add them (the
        # kernel selector was introduced after stores already existed).
        config_dict.pop("kernel", None)
        return _stable_hash(
            {
                "trace": self.trace_key(),
                "config": config_dict,
            }
        )

    def to_dict(self) -> dict:
        """JSON-ready rendering (used by the ResultStore's spec column).

        ``asdict`` recurses into the nested config dataclasses.
        """
        return asdict(self)

    def display_label(self) -> str:
        """The label, falling back to the variant name."""
        return self.label or self.config.variant

    def baseline(self) -> "ExperimentSpec":
        """The matching ``base`` run on the same trace and machine.

        Speedups in the paper are always relative to the OS-scheduled
        baseline on identical hardware, so only the system geometry and
        scheduling-neutral knobs carry over.
        """
        config = SimConfig(
            variant="base",
            system=self.config.system,
            quantum=self.config.quantum,
            arrival_spacing=self.config.arrival_spacing,
            model_l2_capacity=self.config.model_l2_capacity,
        )
        return replace(self, config=config, label="base")


def spec_for(
    trace: Trace,
    config: Optional[SimConfig] = None,
    label: str = "",
    **config_kwargs,
) -> ExperimentSpec:
    """Build a spec for an explicit, already-generated trace.

    The trace's content fingerprint becomes the spec's ``trace_id``; pass
    the same trace to :meth:`repro.exp.runner.Runner.run` so workers can
    replay it without regenerating.
    """
    if config is None:
        config = SimConfig(**config_kwargs)
    elif config_kwargs:
        raise ConfigurationError("pass either a SimConfig or kwargs, not both")
    return ExperimentSpec(
        workload=trace.workload,
        config=config,
        n_threads=len(trace.threads),
        seed=trace.seed,
        trace_id=trace_fingerprint(trace),
        label=label,
    )


def spec_from_dict(payload: Mapping) -> ExperimentSpec:
    """Rebuild a spec from :meth:`ExperimentSpec.to_dict` output.

    The inverse of the JSON rendering the store and work queue persist:
    the nested ``config`` dict (including ``system``/``slicc`` and their
    cache parameter dicts) is coerced back into dataclasses, so
    ``spec_from_dict(spec.to_dict()).key() == spec.key()`` — the
    round-trip a queued spec takes through ``queue.jsonl`` before a
    worker picks it up.

    Raises:
        ConfigurationError: for unknown fields or a payload that is not
            a mapping — a corrupted queue entry must fail loudly rather
            than simulate something else.
    """
    if not isinstance(payload, Mapping):
        raise ConfigurationError(
            f"spec payload must be a mapping, got {type(payload).__name__}"
        )
    kw = dict(payload)
    known = {f.name for f in fields(ExperimentSpec)}
    unknown = set(kw) - known
    if unknown:
        raise ConfigurationError(
            f"unknown ExperimentSpec fields {sorted(unknown)}"
        )
    config = kw.pop("config", None)
    if config is not None:
        kw["config"] = _coerce(config, SimConfig)
    try:
        return ExperimentSpec(**kw)
    except TypeError as exc:
        raise ConfigurationError(f"bad spec payload: {exc}") from None


# ----------------------------------------------------------------------
# Dotted-path overrides and grid expansion
# ----------------------------------------------------------------------

#: Spec fields addressable by overrides/axes. ``config`` has its own
#: paths; ``trace_id`` is excluded — it binds a spec to an in-memory
#: trace only spec_for() can supply, so overriding it builds specs that
#: can never run (e.g. from a JSON spec file with no trace to pass).
_SPEC_FIELDS = frozenset(
    f.name
    for f in fields(ExperimentSpec)
    if f.name not in ("config", "trace_id")
)
_CONFIG_FIELDS = frozenset(f.name for f in fields(SimConfig))
_SLICC_FIELDS = frozenset(f.name for f in fields(SliccParams))
_SYSTEM_FIELDS = frozenset(f.name for f in fields(SystemParams))


def _coerce_fields(cls: type, kw: dict) -> dict:
    """Coerce mapping values aimed at dataclass-typed fields of ``cls``
    (e.g. ``system.l1i`` -> :class:`CacheParams`) into the dataclass."""
    hints = typing.get_type_hints(cls)
    out = {}
    for name, value in kw.items():
        hint = hints.get(name)
        if isinstance(hint, type) and is_dataclass(hint):
            value = _coerce(value, hint)
        out[name] = value
    return out


def _coerce(value: object, cls: type) -> object:
    """Allow whole-object parameter overrides written as plain dicts (the
    only spelling available in JSON spec files), recursively for nested
    parameter dataclasses."""
    if isinstance(value, cls):
        return value
    if isinstance(value, Mapping):
        known = {f.name for f in fields(cls)}
        unknown = set(value) - known
        if unknown:
            raise ConfigurationError(
                f"unknown {cls.__name__} fields {sorted(unknown)}"
            )
        return cls(**_coerce_fields(cls, dict(value)))
    raise ConfigurationError(
        f"override for {cls.__name__} must be a {cls.__name__} or a "
        f"mapping, got {type(value).__name__}"
    )


def with_overrides(
    spec: ExperimentSpec, overrides: Mapping[str, object]
) -> ExperimentSpec:
    """Return a copy of ``spec`` with dotted-path overrides applied.

    Recognised paths: spec fields (``workload``, ``seed``, ...),
    :class:`SimConfig` fields (``variant``, ``quantum``, ...), and nested
    ``slicc.<field>`` / ``system.<field>`` parameters. Whole-object
    ``slicc`` / ``system`` overrides accept either the dataclass or a
    plain field dict (the only spelling JSON spec files have); combining
    a whole-object override with dotted edits of the same object is
    ambiguous and rejected.

    Raises:
        ConfigurationError: for a path that matches nothing, a bad
            whole-object value, or conflicting overrides.
    """
    spec_kw: dict[str, object] = {}
    config_kw: dict[str, object] = {}
    slicc_kw: dict[str, object] = {}
    system_kw: dict[str, object] = {}
    for path, value in overrides.items():
        root, _, leaf = path.partition(".")
        if root == "slicc" and leaf:
            if leaf not in _SLICC_FIELDS:
                raise ConfigurationError(f"unknown SliccParams field {leaf!r}")
            slicc_kw[leaf] = value
        elif root == "system" and leaf:
            if leaf not in _SYSTEM_FIELDS:
                raise ConfigurationError(f"unknown SystemParams field {leaf!r}")
            system_kw[leaf] = value
        elif leaf:
            raise ConfigurationError(f"unknown override path {path!r}")
        elif root == "slicc":
            config_kw[root] = _coerce(value, SliccParams)
        elif root == "system":
            config_kw[root] = _coerce(value, SystemParams)
        elif root in _CONFIG_FIELDS:
            config_kw[root] = value
        elif root in _SPEC_FIELDS:
            spec_kw[root] = value
        else:
            raise ConfigurationError(f"unknown override path {path!r}")

    if spec.trace_id is not None:
        # On an explicit-trace spec the trace fields are informational;
        # overriding them would silently keep replaying (and cache-hit)
        # the pinned trace while recording the new values as provenance.
        clashes = {"workload", "scale", "n_threads", "seed"} & set(spec_kw)
        if clashes:
            raise ConfigurationError(
                f"cannot override trace fields {sorted(clashes)} on a "
                "spec bound to an explicit trace; build a declarative "
                "ExperimentSpec (or a new trace + spec_for) instead"
            )

    config = spec.config
    if slicc_kw:
        if "slicc" in config_kw:
            raise ConfigurationError(
                "conflicting overrides: both 'slicc' and 'slicc.*' given"
            )
        config_kw["slicc"] = replace(
            config.slicc, **_coerce_fields(SliccParams, slicc_kw)
        )
    if system_kw:
        if "system" in config_kw:
            raise ConfigurationError(
                "conflicting overrides: both 'system' and 'system.*' given"
            )
        config_kw["system"] = replace(
            config.system, **_coerce_fields(SystemParams, system_kw)
        )
    if config_kw:
        spec_kw["config"] = replace(config, **config_kw)
    return replace(spec, **spec_kw) if spec_kw else spec


def product(axes: Mapping[str, Iterable]) -> list[dict[str, object]]:
    """Cartesian product of axis values, preserving axis order.

    >>> product({"a": [1, 2], "b": [3]})
    [{'a': 1, 'b': 3}, {'a': 2, 'b': 3}]
    """
    names = list(axes)
    combos = itertools.product(*(list(axes[name]) for name in names))
    return [dict(zip(names, combo)) for combo in combos]


def _auto_label(point: Mapping[str, object]) -> str:
    return ",".join(f"{path.split('.')[-1]}={value}" for path, value in point.items())


def grid(
    base: ExperimentSpec,
    axes: Mapping[str, Iterable],
    label=None,
) -> list[ExperimentSpec]:
    """Expand dotted-path axes into a spec family around ``base``.

    Args:
        base: the spec every point starts from.
        axes: dotted path -> iterable of values (see
            :func:`with_overrides` for recognised paths).
        label: optional callable mapping the point's override dict to a
            display label; defaults to ``"fill_up_t=256,matched_t=4"``
            style.
    """
    make_label = label or _auto_label
    return [
        with_overrides(replace(base, label=make_label(point)), point)
        for point in product(axes)
    ]
