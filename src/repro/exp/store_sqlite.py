"""SQLite store backend: indexed, WAL-journaled, single-row-per-key.

The schema upholds the store's invariants structurally instead of by
replay:

* ``results`` has a UNIQUE index on the canonical spec key, so
  *last-result-per-key* is not a load-time fold but a constraint —
  every write is an upsert and a lookup is an O(log n) point query.
* The upsert preserves ``seq`` (the rowid) on conflict, so first-
  insertion order survives rewrites and ``export_rows`` yields rows in
  the same order a JSONL store would after compaction — migrations
  round-trip deterministically.
* A failure upsert carries ``WHERE kind != 'result'``: results outrank
  failure provenance, matching the JSONL load fold (a result is never
  shadowed by a failure row) and the queue's ``done``-beats-``failed``
  rule.
* Failure rows keep ``kind`` / ``error`` / ``attempts`` as real columns
  (plus the full JSON payload), so post-mortems are one ``SELECT``
  away instead of a JSON grep.

Concurrency and durability: the database runs in WAL mode with
``synchronous=FULL`` — every commit fsyncs, pricing durability the same
as the JSONL backend's per-append fsync — and multi-process writers
serialise on SQLite's own file locking (``busy_timeout`` 30 s, explicit
``BEGIN IMMEDIATE`` for multi-statement transactions) instead of the
JSONL ``flock`` sidecar. The torn-write fault (`REPRO_FAULT`
``torn_write``) is *not* consulted here and that is the point: a torn
append is a physical impossibility under WAL, where a commit either
reaches the fsync'd log in full or is rolled back on recovery. The
fault injector stays meaningful for this backend through process
``crash``/``die`` kills, which exercise WAL crash recovery instead.

Corruption handling mirrors the JSONL quarantine sidecar with a
``quarantine`` table: a row whose JSON payload no longer parses is
moved there by ``repro store compact`` and reported by ``verify``;
whole-file corruption surfaces via ``PRAGMA integrity_check``.
"""

from __future__ import annotations

import json
import os
import sqlite3
import warnings
from pathlib import Path
from typing import Iterable, Iterator, Optional

from repro.errors import ConfigurationError
from repro.sim.results import SimulationResult

#: Version of the SQLite schema this module reads and writes; stored in
#: the ``meta`` table and checked on every open.
SQLITE_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    k TEXT PRIMARY KEY,
    v TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS results (
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    key TEXT NOT NULL,
    kind TEXT NOT NULL CHECK (kind IN ('result', 'failure')),
    spec TEXT,
    result TEXT,
    failure_kind TEXT,
    failure_error TEXT,
    failure_attempts INTEGER,
    failure TEXT
);
CREATE UNIQUE INDEX IF NOT EXISTS results_key ON results (key);
CREATE TABLE IF NOT EXISTS quarantine (
    line TEXT PRIMARY KEY
);
"""

_PUT_RESULT = """
INSERT INTO results (key, kind, spec, result)
VALUES (:key, 'result', :spec, :result)
ON CONFLICT (key) DO UPDATE SET
    kind = 'result',
    spec = excluded.spec,
    result = excluded.result,
    failure_kind = NULL,
    failure_error = NULL,
    failure_attempts = NULL,
    failure = NULL
"""

# Results outrank failure provenance: the WHERE clause makes a failure
# upsert a no-op when the key already holds a result, mirroring the
# JSONL load fold where a failure row never shadows a result.
_PUT_FAILURE = """
INSERT INTO results
    (key, kind, spec, failure_kind, failure_error, failure_attempts,
     failure)
VALUES
    (:key, 'failure', :spec, :failure_kind, :failure_error,
     :failure_attempts, :failure)
ON CONFLICT (key) DO UPDATE SET
    kind = 'failure',
    spec = excluded.spec,
    result = NULL,
    failure_kind = excluded.failure_kind,
    failure_error = excluded.failure_error,
    failure_attempts = excluded.failure_attempts,
    failure = excluded.failure
WHERE results.kind != 'result'
"""


def _dump(payload) -> Optional[str]:
    """Canonical JSON for a column payload (NULL for empty/absent)."""
    if not payload:
        return None
    return json.dumps(payload, sort_keys=True)


def _connect(path: Path, create: bool) -> sqlite3.Connection:
    """Open (and if asked, initialise) the database at ``path``.

    Rejects files that are not SQLite databases or that carry an
    unknown schema version — loudly, because silently treating a
    foreign file as an empty store would orphan its rows.
    """
    if not create and not path.exists():
        raise ConfigurationError(f"no SQLite store at {path}")
    conn = sqlite3.connect(path, timeout=30.0, isolation_level=None)
    try:
        conn.execute("PRAGMA journal_mode=WAL")
        # FULL, not WAL-default NORMAL: every commit fsyncs, matching
        # the JSONL backend's durability (one fsync per append).
        conn.execute("PRAGMA synchronous=FULL")
        conn.execute("PRAGMA busy_timeout=30000")
        if create:
            # executescript commits implicitly; every statement is
            # IF NOT EXISTS / OR IGNORE, so a concurrent-create race
            # is harmless.
            conn.executescript(_SCHEMA)
            conn.execute(
                "INSERT OR IGNORE INTO meta (k, v) VALUES "
                "('schema_version', ?)",
                (str(SQLITE_SCHEMA_VERSION),),
            )
        row = conn.execute(
            "SELECT v FROM meta WHERE k = 'schema_version'"
        ).fetchone()
        if row is None:
            raise ConfigurationError(
                f"{path} has no schema_version; not a repro result store"
            )
        version = int(row[0])
        if version != SQLITE_SCHEMA_VERSION:
            raise ConfigurationError(
                f"{path} carries store schema v{version}; this build "
                f"reads v{SQLITE_SCHEMA_VERSION} — migrate via JSONL "
                "export with a matching build"
            )
    except sqlite3.DatabaseError as exc:
        conn.close()
        raise ConfigurationError(
            f"{path} is not a SQLite result store: {exc}"
        ) from exc
    except Exception:
        conn.close()
        raise
    return conn


def _load_result(text: Optional[str], key: str, where: Path):
    """Parse a stored result payload; warn-and-skip on bad JSON (the
    row is re-derivable by rerunning its spec, like a quarantined
    JSONL line)."""
    if text is None:
        return None
    try:
        return SimulationResult(**json.loads(text))
    except (json.JSONDecodeError, TypeError) as exc:
        warnings.warn(
            f"{where}: result row for {key[:12]}… does not parse "
            f"({exc}); run `repro store compact {where}` to quarantine "
            "it",
            stacklevel=3,
        )
        return None


class _LazyLoadReport:
    """LoadReport stand-in whose row counts run on first read.

    Counting eagerly at open would put a full-table scan — O(rows) —
    on the path of every cold point lookup, defeating the indexed
    backend's whole reason to exist. ``blank`` / ``corrupt`` /
    ``superseded`` are structurally zero for SQLite: the schema has no
    lines to be blank or torn and the UNIQUE key upsert leaves nothing
    superseded on disk.
    """

    blank = 0
    corrupt = 0
    superseded = 0

    def __init__(self, backend: "SqliteBackend") -> None:
        self._backend = backend
        self._counts: Optional[tuple[int, int]] = None

    def _count(self) -> tuple[int, int]:
        if self._counts is None:
            self._counts = self._backend._count_rows()
        return self._counts

    @property
    def lines(self) -> int:
        return self._count()[0]

    @property
    def rows(self) -> int:
        return self._count()[0]

    @property
    def failures(self) -> int:
        return self._count()[1]


class SqliteBackend:
    """Store backend over one WAL-mode SQLite database file.

    Implements the :class:`repro.exp.store.StoreBackend` interface.
    The connection is tracked per-PID: a forked pool worker that
    inherited the parent's handle transparently reopens its own — a
    SQLite connection must never cross a fork.
    """

    kind = "sqlite"
    schema_version = SQLITE_SCHEMA_VERSION

    def __init__(self, path: Path) -> None:
        self.path = path
        path.parent.mkdir(parents=True, exist_ok=True)
        self._conn: Optional[sqlite3.Connection] = None
        self._conn_pid: Optional[int] = None

    @property
    def conn(self) -> sqlite3.Connection:
        if self._conn is None or self._conn_pid != os.getpid():
            if self._conn is not None:
                # Inherited across a fork: abandon, never close — a
                # close here could roll back the parent's WAL state.
                self._conn = None
            self._conn = _connect(self.path, create=True)
            self._conn_pid = os.getpid()
        return self._conn

    def close(self) -> None:
        if self._conn is not None and self._conn_pid == os.getpid():
            self._conn.close()
        self._conn = None
        self._conn_pid = None

    def load(self):
        # Touching the connection keeps open-time validation eager (a
        # wrong schema version or a non-database file fails here, not
        # on some later query); only the O(rows) counting is deferred.
        self.conn
        return _LazyLoadReport(self)

    def _count_rows(self) -> tuple[int, int]:
        row = self.conn.execute(
            "SELECT COUNT(*), "
            "COALESCE(SUM(kind = 'failure'), 0) FROM results"
        ).fetchone()
        return int(row[0]), int(row[1])

    # Keyed access ----------------------------------------------------
    def get(self, key: str) -> Optional[SimulationResult]:
        row = self.conn.execute(
            "SELECT result FROM results WHERE key = ? AND "
            "kind = 'result'",
            (key,),
        ).fetchone()
        if row is None:
            return None
        return _load_result(row[0], key, self.path)

    def spec_info(self, key: str) -> Optional[dict]:
        row = self.conn.execute(
            "SELECT spec FROM results WHERE key = ? AND kind = 'result'",
            (key,),
        ).fetchone()
        if row is None:
            return None
        return json.loads(row[0]) if row[0] else {}

    def failure_info(self, key: str) -> Optional[dict]:
        row = self.conn.execute(
            "SELECT failure FROM results WHERE key = ? AND "
            "kind = 'failure'",
            (key,),
        ).fetchone()
        if row is None or row[0] is None:
            return None
        return json.loads(row[0])

    def failures(self) -> dict[str, dict]:
        return {
            key: json.loads(payload)
            for key, payload in self.conn.execute(
                "SELECT key, failure FROM results WHERE "
                "kind = 'failure' AND failure IS NOT NULL ORDER BY seq"
            )
        }

    def put(self, key, result, spec_payload) -> None:
        from repro.exp.store import result_to_dict

        self.conn.execute(
            _PUT_RESULT,
            {
                "key": key,
                "spec": _dump(spec_payload),
                "result": json.dumps(result_to_dict(result), sort_keys=True),
            },
        )

    def put_failure(self, key, failure, spec_payload) -> None:
        self.conn.execute(_PUT_FAILURE, self._failure_params(key, failure))

    @staticmethod
    def _failure_params(key: str, failure: dict) -> dict:
        attempts = failure.get("attempts")
        return {
            "key": key,
            "spec": None,
            "failure_kind": failure.get("kind"),
            "failure_error": failure.get("error"),
            "failure_attempts": int(attempts)
            if isinstance(attempts, (int, float))
            else None,
            "failure": json.dumps(failure, sort_keys=True),
        }

    def contains(self, key: str) -> bool:
        return (
            self.conn.execute(
                "SELECT 1 FROM results WHERE key = ? AND "
                "kind = 'result'",
                (key,),
            ).fetchone()
            is not None
        )

    def count(self) -> int:
        return int(
            self.conn.execute(
                "SELECT COUNT(*) FROM results WHERE kind = 'result'"
            ).fetchone()[0]
        )

    def keys(self) -> Iterator[str]:
        for (key,) in self.conn.execute(
            "SELECT key FROM results WHERE kind = 'result' ORDER BY seq"
        ).fetchall():
            yield key

    def results(self) -> Iterator[SimulationResult]:
        for key, text in self.conn.execute(
            "SELECT key, result FROM results WHERE kind = 'result' "
            "ORDER BY seq"
        ).fetchall():
            result = _load_result(text, key, self.path)
            if result is not None:
                yield result

    # Bulk import/export ----------------------------------------------
    def export_rows(self) -> Iterator[dict]:
        for key, kind, spec, result, failure in self.conn.execute(
            "SELECT key, kind, spec, result, failure FROM results "
            "ORDER BY seq"
        ).fetchall():
            try:
                if kind == "result":
                    yield {
                        "key": key,
                        "spec": json.loads(spec) if spec else None,
                        "result": json.loads(result),
                    }
                else:
                    yield {
                        "key": key,
                        "spec": None,
                        "failure": json.loads(failure),
                    }
            except (json.JSONDecodeError, TypeError):
                warnings.warn(
                    f"{self.path}: skipping unparseable {kind} row for "
                    f"{key[:12]}… during export",
                    stacklevel=2,
                )

    def bulk_load(self, rows: Iterable[dict]) -> tuple[int, int]:
        """Apply rows in one IMMEDIATE transaction — one fsync for the
        whole batch instead of one per row."""
        from repro.exp.store import result_from_dict, result_to_dict

        n_results = n_failures = 0
        conn = self.conn
        conn.execute("BEGIN IMMEDIATE")
        try:
            for row in rows:
                key = row["key"]
                if "result" in row:
                    # Round-trip through the dataclass so a malformed
                    # row fails here, not at some later read.
                    payload = result_to_dict(result_from_dict(row["result"]))
                    conn.execute(
                        _PUT_RESULT,
                        {
                            "key": key,
                            "spec": _dump(row.get("spec")),
                            "result": json.dumps(payload, sort_keys=True),
                        },
                    )
                    n_results += 1
                else:
                    conn.execute(
                        _PUT_FAILURE,
                        self._failure_params(key, row["failure"]),
                    )
                    n_failures += 1
        except Exception:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")
        return n_results, n_failures

    def quarantine_lines(self) -> list[str]:
        if not self.path.exists():
            return []
        return [
            line
            for (line,) in self.conn.execute(
                "SELECT line FROM quarantine ORDER BY rowid"
            ).fetchall()
        ]

    def add_quarantine(self, lines: Iterable[str]) -> int:
        fresh = 0
        conn = self.conn
        conn.execute("BEGIN IMMEDIATE")
        try:
            for line in lines:
                cur = conn.execute(
                    "INSERT OR IGNORE INTO quarantine (line) VALUES (?)",
                    (line,),
                )
                fresh += cur.rowcount
        except Exception:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")
        return fresh


# ----------------------------------------------------------------------
# verify / compact
# ----------------------------------------------------------------------


def audit_sqlite(path: Path):
    """Row-level health scan plus ``PRAGMA integrity_check``.

    ``superseded`` is always 0 here — the UNIQUE key index upserts in
    place, so the database holds no history to reclaim; ``compact``
    still has work to do (WAL checkpoint + VACUUM + quarantining rows
    whose payload no longer parses).
    """
    from repro.exp.store import StoreAudit

    audit = StoreAudit(
        path=path, backend="sqlite", schema_version=SQLITE_SCHEMA_VERSION
    )
    if not path.exists():
        return audit
    conn = _connect(path, create=False)
    try:
        audit.integrity = str(
            conn.execute("PRAGMA integrity_check").fetchone()[0]
        )
        if audit.integrity != "ok":
            audit.corrupt += 1
        for key, kind, result, failure in conn.execute(
            "SELECT key, kind, result, failure FROM results ORDER BY seq"
        ):
            audit.lines += 1
            payload = result if kind == "result" else failure
            try:
                parsed = json.loads(payload)
                if kind == "result":
                    SimulationResult(**parsed)
                elif not isinstance(parsed, dict):
                    raise TypeError("failure payload is not a dict")
            except (json.JSONDecodeError, TypeError):
                audit.corrupt += 1
                continue
            if kind == "result":
                audit.result_rows += 1
                audit.keys += 1
            else:
                audit.failure_rows += 1
                audit.live_failures += 1
    finally:
        conn.close()
    return audit


def compact_sqlite(path: Path):
    """Idempotent re-upsert of every valid row + WAL checkpoint + VACUUM.

    Rows whose payload no longer parses move to the ``quarantine``
    table (evidence preserved, store usable again), mirroring the JSONL
    sidecar. Returns ``(audit before compaction, rows kept)``.
    """
    from repro.exp.store import StoreAudit

    if not path.exists():
        return StoreAudit(
            path=path,
            backend="sqlite",
            schema_version=SQLITE_SCHEMA_VERSION,
        ), 0
    audit = audit_sqlite(path)
    conn = _connect(path, create=False)
    try:
        conn.execute("BEGIN IMMEDIATE")
        bad: list[tuple[int, str]] = []
        kept = 0
        for seq, key, kind, spec, result, failure in conn.execute(
            "SELECT seq, key, kind, spec, result, failure FROM results "
            "ORDER BY seq"
        ).fetchall():
            payload = result if kind == "result" else failure
            try:
                parsed = json.loads(payload)
                if kind == "result":
                    SimulationResult(**parsed)
                elif not isinstance(parsed, dict):
                    raise TypeError("failure payload is not a dict")
            except (json.JSONDecodeError, TypeError):
                row = {
                    "key": key,
                    "kind": kind,
                    "spec": spec,
                    "result": result,
                    "failure": failure,
                }
                bad.append((seq, json.dumps(row, sort_keys=True)))
                continue
            kept += 1
            # Re-upsert in place: proves the write path is idempotent
            # over its own output (seq is preserved on conflict, so
            # order is untouched).
            if kind == "result":
                conn.execute(
                    _PUT_RESULT,
                    {"key": key, "spec": spec, "result": result},
                )
            else:
                conn.execute(
                    "UPDATE results SET failure = ? WHERE seq = ?",
                    (failure, seq),
                )
        for seq, line in bad:
            conn.execute(
                "INSERT OR IGNORE INTO quarantine (line) VALUES (?)",
                (line,),
            )
            conn.execute("DELETE FROM results WHERE seq = ?", (seq,))
        conn.execute("COMMIT")
        conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        conn.execute("VACUUM")
    finally:
        conn.close()
    return audit, kept
