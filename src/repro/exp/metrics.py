"""The named result metrics shared by tables and reports.

Kept in a leaf module (imports nothing from :mod:`repro.exp` or
:mod:`repro.analysis`) so both the experiment summariser and the
paper-report generator can use one metric vocabulary without an import
cycle.
"""

from __future__ import annotations

#: Metric name -> extractor over a
#: :class:`~repro.sim.results.SimulationResult`.
METRICS = {
    "I-MPKI": lambda r: r.i_mpki,
    "D-MPKI": lambda r: r.d_mpki,
    "cycles": lambda r: r.cycles,
    "migrations": lambda r: r.migrations,
    "util": lambda r: r.utilization,
    "bpki": lambda r: r.bpki,
    "IPC": lambda r: r.ipc,
}

DEFAULT_METRICS = ("I-MPKI", "D-MPKI", "migrations", "util")
