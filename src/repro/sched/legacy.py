"""The paper's seven variants, re-registered as scheduling policies.

Each class carries exactly the capability flags the pre-refactor engine
derived from ``variant == "..."`` string comparisons, plus the decision
methods that used to be ``ReplayEngine._evaluate_migration`` and
``ReplayEngine._steps_switch`` — moved here verbatim so the golden-pin
suite stays byte-identical. The per-record SLICC/STEPS monitoring
remains inlined in the replay loop (it runs on the agent objects these
policies ask the engine to build); only the quantum-ending decision and
the scheduling-event callbacks dispatch through the policy.
"""

from __future__ import annotations

from repro.core.agent import MigrationReason
from repro.core.txn_types import PreambleTypeDetector, SoftwareTypeOracle
from repro.errors import SimulationError
from repro.prefetch.pif import pif_l1i_params
from repro.sched.base import (
    MIGRATION_FIELDS,
    SchedulingPolicy,
)
from repro.sched.registry import register_policy

#: Cycles charged per STEPS context switch (Harizopoulos & Ailamaki report
#: a hand-optimised switch far cheaper than an OS one).
STEPS_SWITCH_CYCLES = 24


@register_policy
class BasePolicy(SchedulingPolicy):
    """OS-style static scheduling, no migration (Section 5.1)."""

    name = "base"
    description = "OS-style static scheduling, no migration (Section 5.1)"


@register_policy
class NextLinePolicy(SchedulingPolicy):
    """base + per-core next-line instruction prefetcher."""

    name = "nextline"
    description = "base + per-core next-line instruction prefetcher"
    nextline_prefetch = True


@register_policy
class PifPolicy(SchedulingPolicy):
    """base + the PIF upper-bound L1-I (512KB @ 32KB latency)."""

    name = "pif"
    description = "base + the PIF upper-bound L1-I (512KB @ 32KB latency)"

    @classmethod
    def l1i_params(cls, system):
        return pif_l1i_params(system.l1i)


class _SliccMachineryPolicy(SchedulingPolicy):
    """Shared behaviour of the three SLICC variants: per-core agents,
    bloom signatures, the 2N pool, and the Q.3 target decision."""

    migrates = True
    slicc_machinery = True
    relevant_fields = MIGRATION_FIELDS

    def evaluate_migration(self, core: int, agent) -> bool:
        """Ask the agent for a migration target; stage it if one exists.

        Returns True when a migration was staged in
        ``engine._pending_target`` (the caller must end the quantum and
        perform it).
        """
        engine = self.engine
        thread_id = engine.running[core]
        allowed = engine._allowed_for(thread_id)
        decision = agent.decide(
            engine._idle_cores(),
            allowed_cores=allowed,
            nearest=lambda cands: engine.machine.torus.nearest(core, cands),
        )
        if decision.target is not None:
            if decision.reason is MigrationReason.IDLE_CORE:
                # The idle core adopts the thread's new segment:
                # unfreeze its fill path.
                engine.agents[decision.target].mc.reset()
            engine._pending_target = decision.target
            return True
        return False

    def on_thread_start(self, core: int) -> None:
        self.engine.agents[core].on_thread_switch()

    def on_migrate(self, core: int, target: int) -> None:
        self.engine.agents[core].on_thread_switch()

    def on_complete(self, core: int) -> None:
        self.engine.agents[core].on_thread_switch()

    def on_steal(self, target: int) -> None:
        # The idle core adopts (replicates) the stolen thread's segment:
        # hot chunks end up on several cores, spreading the convoy that
        # forms behind popular code.
        self.engine.agents[target].mc.reset()


@register_policy
class SliccPolicy(_SliccMachineryPolicy):
    """Type-oblivious SLICC thread migration (Section 4.1)."""

    name = "slicc"
    description = "type-oblivious SLICC thread migration (Section 4.1)"


@register_policy
class SliccSwPolicy(_SliccMachineryPolicy):
    """SLICC + software-provided types + teams (Section 4.3)."""

    name = "slicc-sw"
    description = "SLICC + software-provided types + teams (Section 4.3)"
    team_scheduling = True

    def make_type_source(self):
        return SoftwareTypeOracle()


@register_policy
class SliccPpPolicy(_SliccMachineryPolicy):
    """SLICC + scout-core preamble type detection."""

    name = "slicc-pp"
    description = "SLICC + scout-core preamble type detection"
    team_scheduling = True
    scout_core = True

    def make_type_source(self):
        return PreambleTypeDetector()


@register_policy
class StepsPolicy(SchedulingPolicy):
    """STEPS-style same-core time-multiplexing (Section 6)."""

    name = "steps"
    description = "STEPS-style same-core time-multiplexing (Section 6)"
    time_multiplexes = True
    team_scheduling = True
    #: STEPS reads the SLICC thresholds (MC fill-up + MSV dilution drive
    #: its switch decision) but none of the migration knobs.
    relevant_fields = frozenset({"slicc"})

    def make_type_source(self):
        # STEPS groups same-type threads onto the same cores too (its
        # teams run on one core each, time-multiplexed).
        return SoftwareTypeOracle()

    def context_switch(self, core: int) -> None:
        """STEPS context switch: requeue the running thread at the tail
        of its own core's queue and charge the (fast) switch cost."""
        engine = self.engine
        thread_id = engine.running[core]
        if thread_id is None:
            raise SimulationError("context switch with no running thread")
        engine.running[core] = None
        engine.clock[core] += STEPS_SWITCH_CYCLES
        engine.context_switches += 1
        agent = engine.steps_agents[core]
        agent.msv.reset()
        engine.queues.enqueue(core, thread_id)

    def on_thread_start(self, core: int) -> None:
        self.engine.steps_agents[core].msv.reset()
