"""The scheduling-policy interface.

A :class:`SchedulingPolicy` bundles everything that used to be a
``variant == "..."`` branch inside :class:`~repro.sim.engine.ReplayEngine`:

* **Capability flags** (class attributes) that tell the engine which
  machinery to build — migration pool and work stealing, per-record SLICC
  agents and bloom signatures, STEPS time multiplexing, type-aware team
  partitioning, the scout core, the next-line prefetcher, the PIF L1-I.
  The engine owns the *mechanism* (caches, queues, agents, the replay
  loop); the policy owns the *decisions* and declares which mechanisms it
  needs.
* **Decision hooks** invoked only at scheduling events — quantum
  boundaries, migrations, completions, steals, thread dispatch — never
  per record. The replay hot loop stays policy-free: legacy SLICC/STEPS
  decisions remain inlined in the loop (gated on the agent objects the
  policy asked for), and new policies decide in :meth:`quantum_end`,
  which the engine calls at most once per quantum.
* **``relevant_fields``**, the set of :class:`~repro.sim.engine.SimConfig`
  fields that can influence results under this policy. The experiment
  layer's canonical cache keys zero every other policy-gated field, so
  e.g. a ``steal_min_depth`` sweep of a non-stealing policy collapses to
  one key instead of silently fragmenting the result store.

Policies are registered by class via
:func:`repro.sched.registry.register_policy` and instantiated once per
:class:`~repro.sim.engine.ReplayEngine`; instances may keep per-run
mutable state (counters, RNGs) but must be deterministic — two engines
built from the same trace and config must produce byte-identical
results, which is what the golden-pin suite enforces.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.params import CacheParams, SystemParams
    from repro.sim.engine import ReplayEngine, SimConfig
    from repro.sim.results import SimulationResult

#: SimConfig fields whose effect is policy-dependent; everything not in a
#: policy's :attr:`SchedulingPolicy.relevant_fields` is canonicalised to
#: its default when computing experiment cache keys.
POLICY_GATED_FIELDS = (
    "slicc",
    "work_stealing",
    "steal_min_depth",
    "steal_resets_mc",
    "data_prefetch_n",
)

#: ``relevant_fields`` value for policies that migrate threads: the slicc
#: parameter block (thresholds + pool factor), the work-stealing knobs and
#: the migration data prefetcher all change behaviour.
MIGRATION_FIELDS = frozenset(POLICY_GATED_FIELDS)


class SchedulingPolicy:
    """Base class for scheduling policies (see the module docstring).

    Subclasses override the class attributes and whichever hooks they
    need; every hook has a safe no-op default. ``bind`` is called exactly
    once, at the end of engine construction, with all machine state
    built — per-run policy state belongs there.
    """

    #: Registry key; also the ``SimConfig.variant`` spelling.
    name: ClassVar[str] = ""
    #: One-line description (rendered in README/--help style tables).
    description: ClassVar[str] = ""

    # -- capability flags ----------------------------------------------
    #: Thread-migration machinery: the 2N thread pool, idle-core work
    #: stealing and the migration data prefetcher.
    migrates: ClassVar[bool] = False
    #: Per-record SLICC machinery: per-core agents (MC/MSV/MTQ), bloom
    #: signatures and the inline migration evaluation in the replay loop.
    slicc_machinery: ClassVar[bool] = False
    #: STEPS-style same-core time multiplexing (per-core MSV dilution
    #: detector, context switches instead of migrations).
    time_multiplexes: ClassVar[bool] = False
    #: Type-aware placement: partition worker cores among transaction
    #: types (requires :meth:`make_type_source` to return a source).
    team_scheduling: ClassVar[bool] = False
    #: Dedicate the last core to preamble scouting (SLICC-Pp).
    scout_core: ClassVar[bool] = False
    #: Per-core next-line instruction prefetchers.
    nextline_prefetch: ClassVar[bool] = False
    #: The engine calls :meth:`quantum_end` after every quantum.
    quantum_hook: ClassVar[bool] = False
    #: The vectorised batch replay kernel reproduces this policy's
    #: semantics bit-for-bit. True for any policy whose per-record
    #: behaviour is the standard TLB + LRU L1 + SLICC/STEPS tracker
    #: machinery the kernel mirrors (policies only ever act at quantum
    #: boundaries, so that covers every current policy). Set False on a
    #: future policy that hooks per-record state the kernel does not
    #: model; the engine then auto-selects the inline loop. Structural
    #: blockers (prefetchers, classifiers, NUCA, non-LRU L1 policies)
    #: are detected separately — see ``ReplayEngine._batch_blockers``.
    batch_kernel_safe: ClassVar[bool] = True
    #: The per-config generated kernel (``sim/specialize.py``) folds
    #: this policy's capability flags into straight-line code — in
    #: particular the scheduling tail assumes SLICC-machinery hooks only
    #: ever stage real core targets (the ``-1`` context-switch sentinel
    #: is folded to the STEPS arm alone). True for every registered
    #: policy; clear it on a future policy whose hooks break a folded
    #: assumption and the engine keeps it on the inline loop. Structural
    #: blockers (non-LRU L1 policies) are detected separately — see
    #: ``ReplayEngine._specialize_blockers``.
    specialize_safe: ClassVar[bool] = True

    #: SimConfig fields (from :data:`POLICY_GATED_FIELDS`) that influence
    #: results under this policy; see the module docstring.
    relevant_fields: ClassVar[frozenset] = frozenset()

    def __init__(self, config: "SimConfig") -> None:
        self.config = config
        self.engine: Optional["ReplayEngine"] = None

    # -- construction hooks --------------------------------------------

    @classmethod
    def l1i_params(cls, system: "SystemParams") -> Optional["CacheParams"]:
        """Override the L1-I geometry (PIF); None keeps ``system.l1i``."""
        return None

    def make_type_source(self):
        """Type source for team partitioning (None = type-oblivious)."""
        return None

    def bind(self, engine: "ReplayEngine") -> None:
        """Attach to a fully constructed engine; allocate per-run state."""
        self.engine = engine

    # -- decision hooks (scheduling events only, never per record) -----

    def quantum_end(self, core: int) -> Optional[int]:
        """Called after a quantum when the thread neither migrated nor
        completed (and only when :attr:`quantum_hook` is set). Return a
        target core to migrate the running thread there, or None."""
        return None

    def evaluate_migration(self, core: int, agent) -> bool:
        """SLICC-machinery policies: ask ``agent`` for a migration target
        and stage it in ``engine._pending_target``; True ends the
        quantum. The base class never migrates."""
        return False

    def context_switch(self, core: int) -> None:
        """Time-multiplexing policies: perform a same-core context
        switch (staged as target ``-1``)."""
        raise NotImplementedError(
            f"policy {self.name!r} does not time-multiplex"
        )

    # -- event callbacks -----------------------------------------------

    def on_thread_start(self, core: int) -> None:
        """A thread was dispatched on ``core`` (fresh or from a queue)."""

    def on_migrate(self, core: int, target: int) -> None:
        """The running thread of ``core`` is migrating to ``target``."""

    def on_complete(self, core: int) -> None:
        """The running thread of ``core`` finished all its records."""

    def on_steal(self, target: int) -> None:
        """Work stealing moved a queued thread to ``target`` and the
        ``steal_resets_mc`` knob is on — reset ``target``'s fill state."""

    # -- reporting -----------------------------------------------------

    def contribute_stats(self, result: "SimulationResult") -> None:
        """Add policy-specific counters to the result."""
