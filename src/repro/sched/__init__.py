"""Pluggable scheduling policies for the replay engine.

Importing this package registers the paper's seven variants
(:mod:`repro.sched.legacy`) and the scenario-extension policies
(:mod:`repro.sched.extensions`); :func:`policy_names` is the
authoritative variant list everywhere — engine validation, CLI choices,
spec files and the ``policy-comparison`` figure all derive from it.
"""

from repro.sched.base import (
    MIGRATION_FIELDS,
    POLICY_GATED_FIELDS,
    SchedulingPolicy,
)
from repro.sched.registry import (
    get_policy,
    has_policy,
    policy_descriptions,
    policy_names,
    register_policy,
)

# Importing the policy modules is what populates the registry; legacy
# first so policy_names() lists the paper's variants before extensions.
from repro.sched import legacy  # noqa: E402,F401  isort: skip
from repro.sched import extensions  # noqa: E402,F401  isort: skip
from repro.sched.legacy import STEPS_SWITCH_CYCLES

__all__ = [
    "MIGRATION_FIELDS",
    "POLICY_GATED_FIELDS",
    "STEPS_SWITCH_CYCLES",
    "SchedulingPolicy",
    "get_policy",
    "has_policy",
    "policy_descriptions",
    "policy_names",
    "register_policy",
]
