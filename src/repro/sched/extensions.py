"""Scenario-extension scheduling policies (beyond the paper's seven).

Three ablation policies that bracket SLICC's design space; each decides
only in :meth:`~repro.sched.base.SchedulingPolicy.quantum_end`, so the
per-record replay loop runs the plain ``base`` fast path — the policies
cost one method call per quantum, nothing per record.

``tmi``
    Migrate on fill-up alone: Q.1 (the saturating miss counter) triggers
    a move to the nearest idle core, with no MSV dilution window and no
    bloom broadcast — isolating what SLICC's Q.2/Q.3 machinery buys over
    "spill to a fresh cache when mine is full". With no idle core the
    thread stays and the counter resets (SLICC's STAY rung).

``affinity``
    Static transaction-type → core-partition placement with no migration
    at all: the natural software-only strawman. Each type gets a share
    of the cores proportional to its thread count, computed once from
    the whole trace — exactly what ``phased``'s mid-trace mix shift
    defeats (phase-2-heavy types inherit phase-1-sized partitions).

``random-migrate``
    SLICC's migration *rate* with random targets: the same Q.1 fill-up
    counter plus a quantum-granularity dilution check (misses at least
    ``dilution_t`` per ``msv_window`` accesses) trigger a migration to a
    uniformly random allowed core. Separates "migration helps" from
    "*targeted* migration helps". The RNG is seeded with a fixed
    constant so results stay deterministic and process-independent.

All three feed on per-core L1-I statistics the engine maintains anyway
(quantum_end diffs cumulative counters against a snapshot), so they work
identically through the inline fast path and the generic reference path.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.txn_types import SoftwareTypeOracle
from repro.sched.base import MIGRATION_FIELDS, SchedulingPolicy
from repro.sched.registry import register_policy

#: Fixed RNG seed for ``random-migrate``: simulated results must not
#: depend on process state, worker identity or wall clock.
RANDOM_MIGRATE_SEED = 0x51CC


class _MissWindowPolicy(SchedulingPolicy):
    """Shared plumbing: a per-core saturating miss counter fed at quantum
    boundaries from the engine's L1-I statistics."""

    migrates = True
    quantum_hook = True
    relevant_fields = MIGRATION_FIELDS

    def bind(self, engine) -> None:
        super().bind(engine)
        n = engine.config.system.n_cores
        self._fill_up = engine.config.slicc.fill_up_t
        #: Per-core saturating miss counter (the policy-side MC): like
        #: SLICC's, it describes the *cache*, so it survives thread
        #: switches and resets only on adoption/stay/steal events.
        self._mc = [0] * n
        self._seen_misses = [0] * n
        self._seen_accesses = [0] * n
        self._l1i_stats = [cache.stats for cache in engine.machine.l1i]

    def _quantum_delta(self, core: int) -> tuple[int, int]:
        """(misses, accesses) of ``core`` since its last snapshot."""
        stats = self._l1i_stats[core]
        misses = stats.misses
        accesses = stats.accesses
        d_miss = misses - self._seen_misses[core]
        d_acc = accesses - self._seen_accesses[core]
        self._seen_misses[core] = misses
        self._seen_accesses[core] = accesses
        return d_miss, d_acc

    def on_thread_start(self, core: int) -> None:
        # Re-baseline the snapshot at dispatch: a predecessor that
        # completed or migrated away mid-quantum left its final misses
        # un-snapshotted (quantum_end is not called on those paths).
        # Those misses belong to the cache-centric MC, but not to the
        # new tenant's first per-quantum delta — fold them in here so
        # the trigger checks only ever see the running thread's own
        # quanta.
        d_miss, _ = self._quantum_delta(core)
        mc = self._mc[core]
        if mc < self._fill_up:
            mc += d_miss
            self._mc[core] = self._fill_up if mc > self._fill_up else mc

    def on_steal(self, target: int) -> None:
        # Mirror SLICC's steal_resets_mc semantics: the stealing core
        # adopts (replicates) the stolen thread's segment.
        self._mc[target] = 0


@register_policy
class TmiPolicy(_MissWindowPolicy):
    """Migrate on fill-up alone (no dilution window, no bloom search)."""

    name = "tmi"
    description = (
        "migrate on fill-up alone: Q.1 triggers a hop to the nearest "
        "idle core, no Q.2/Q.3 machinery"
    )

    def bind(self, engine) -> None:
        super().bind(engine)
        self._idle_migrations = 0
        self._stays = 0

    def quantum_end(self, core: int) -> Optional[int]:
        d_miss, _ = self._quantum_delta(core)
        mc = self._mc[core]
        if mc < self._fill_up:
            mc += d_miss
            if mc > self._fill_up:
                mc = self._fill_up
            self._mc[core] = mc
            if mc < self._fill_up:
                return None
        if d_miss == 0:
            # Cache full but the quantum was hit-only: the thread lives
            # inside the assembled segment; nothing to gain by moving.
            return None
        engine = self.engine
        allowed = engine._allowed_for(engine.running[core])
        idle = [c for c in engine._idle_cores() if c != core and c in allowed]
        if idle:
            target = engine.machine.torus.nearest(core, idle)
            # The idle core adopts the incoming thread's segment
            # (mirrors SLICC's IDLE_CORE rung resetting the target MC).
            self._mc[target] = 0
            self._idle_migrations += 1
            return target
        # Nowhere to go: treat the local cache as refilling with the new
        # segment (SLICC's STAY rung) so the thread does not re-trigger
        # on every subsequent quantum.
        self._mc[core] = 0
        self._stays += 1
        return None

    def contribute_stats(self, result) -> None:
        result.idle_core_migrations = self._idle_migrations
        result.stay_decisions = self._stays


@register_policy
class AffinityPolicy(SchedulingPolicy):
    """Static type→core-partition placement, no migration."""

    name = "affinity"
    description = (
        "static transaction-type -> core-partition placement, no "
        "migration (the software-only strawman)"
    )
    team_scheduling = True

    def make_type_source(self):
        return SoftwareTypeOracle()


@register_policy
class RandomMigratePolicy(_MissWindowPolicy):
    """SLICC-rate migration with uniformly random targets."""

    name = "random-migrate"
    description = (
        "matched migration rate with uniformly random targets (separates "
        "'migration helps' from 'targeted migration helps')"
    )

    def bind(self, engine) -> None:
        super().bind(engine)
        slicc = engine.config.slicc
        self._dilution_t = slicc.dilution_t
        self._msv_window = slicc.msv_window
        self._rng = random.Random(RANDOM_MIGRATE_SEED)
        self._idle_migrations = 0

    def quantum_end(self, core: int) -> Optional[int]:
        d_miss, d_acc = self._quantum_delta(core)
        mc = self._mc[core]
        if mc < self._fill_up:
            mc += d_miss
            if mc > self._fill_up:
                mc = self._fill_up
            self._mc[core] = mc
            return None
        # Q.2 analogue at quantum granularity: migrate only when misses
        # are at least as frequent as dilution_t-in-msv_window.
        if d_acc == 0 or d_miss * self._msv_window < self._dilution_t * d_acc:
            return None
        engine = self.engine
        allowed = engine._allowed_for(engine.running[core])
        candidates = [
            c for c in engine.worker_cores if c != core and c in allowed
        ]
        if not candidates:
            return None
        target = candidates[self._rng.randrange(len(candidates))]
        if engine.running[target] is None and engine.queues.is_empty(target):
            # Landed on an idle core by chance: it adopts the segment,
            # exactly like the targeted policies' idle rung.
            self._mc[target] = 0
            self._idle_migrations += 1
        return target

    def contribute_stats(self, result) -> None:
        result.idle_core_migrations = self._idle_migrations
