"""Name-keyed registry of scheduling policies.

The registry is the single source of truth for which ``variant`` values
exist: :class:`~repro.sim.engine.SimConfig` validates against it, the CLI
derives its ``--variants`` choices from it, the experiment layer reads
per-policy ``relevant_fields`` from it, and the ``policy-comparison``
figure sweeps it. Registering a new policy module is therefore the whole
integration — no engine or CLI edits.
"""

from __future__ import annotations

from typing import Type

from repro.errors import ConfigurationError
from repro.sched.base import SchedulingPolicy

_REGISTRY: dict[str, Type[SchedulingPolicy]] = {}


def register_policy(cls: Type[SchedulingPolicy]) -> Type[SchedulingPolicy]:
    """Register a policy class under its ``name`` (usable as a decorator).

    Raises:
        ConfigurationError: on a missing name or a duplicate.
    """
    if not cls.name:
        raise ConfigurationError(
            f"policy class {cls.__name__} declares no name"
        )
    if cls.name in _REGISTRY:
        raise ConfigurationError(f"policy {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def get_policy(name: str) -> Type[SchedulingPolicy]:
    """Look up a policy class by name.

    Raises:
        ConfigurationError: for an unknown name.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown variant {name!r}; known: {policy_names()}"
        ) from None


def has_policy(name: str) -> bool:
    """True when ``name`` is a registered policy."""
    return name in _REGISTRY


def policy_names() -> tuple[str, ...]:
    """Registered policy names, in registration order."""
    return tuple(_REGISTRY)


def policy_descriptions() -> dict[str, str]:
    """``{name: one-line description}`` for every registered policy."""
    return {name: cls.description for name, cls in _REGISTRY.items()}
