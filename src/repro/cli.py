"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``     simulate one workload under one or more variants
``sweep``   the Figure 7/8 threshold sweeps
``info``    show workload and machine parameters

Examples::

    python -m repro run tpcc-1 --variants base slicc-sw --threads 32
    python -m repro sweep tpcc-1 --kind dilution
    python -m repro info tpce
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.analysis import format_table, sweep_dilution, sweep_fillup_matched
from repro.params import ScalePreset
from repro.sim import VARIANTS, SimConfig, simulate
from repro.workloads import (
    DEFAULT_THREADS,
    get_workload,
    standard_trace,
    workload_names,
)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("workload", choices=workload_names())
    parser.add_argument(
        "--scale",
        choices=[s.value for s in ScalePreset],
        default="ci",
        help="workload scale preset (default: ci)",
    )
    parser.add_argument("--threads", type=int, default=None)
    parser.add_argument("--seed", type=int, default=1)


def _trace_from(args: argparse.Namespace):
    scale = ScalePreset(args.scale)
    return standard_trace(
        args.workload, scale, n_threads=args.threads, seed=args.seed
    )


def _cmd_run(args: argparse.Namespace) -> int:
    trace = _trace_from(args)
    rows = []
    base = None
    variants = args.variants
    if "base" not in variants:
        variants = ["base"] + list(variants)
    for variant in variants:
        result = simulate(trace, config=SimConfig(variant=variant))
        if variant == "base":
            base = result
        rows.append(
            [
                variant,
                result.i_mpki,
                result.d_mpki,
                result.speedup_over(base),
                result.migrations,
                result.utilization,
            ]
        )
    print(
        format_table(
            ["variant", "I-MPKI", "D-MPKI", "speedup", "migrations", "util"],
            rows,
            title=f"{args.workload} ({len(trace.threads)} threads)",
        )
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    trace = _trace_from(args)
    if args.kind == "dilution":
        points = sweep_dilution(trace)
        headers = ["dilution_t", "I-MPKI", "D-MPKI", "speedup", "migrations"]
        rows = [
            [p.dilution_t, p.i_mpki, p.d_mpki, p.speedup, p.migrations]
            for p in points
        ]
    else:
        points = sweep_fillup_matched(trace)
        headers = ["fill-up_t", "matched_t", "I-MPKI", "D-MPKI", "speedup"]
        rows = [
            [p.fill_up_t, p.matched_t, p.i_mpki, p.d_mpki, p.speedup]
            for p in points
        ]
    print(format_table(headers, rows, title=f"{args.kind} sweep — {args.workload}"))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    scale = ScalePreset(args.scale)
    spec = get_workload(args.workload, scale)
    blocks = spec.footprint_blocks()
    rows = [
        ["transaction types", len(spec.txn_types)],
        ["code segments", len(spec.segments)],
        ["code footprint", f"{blocks * 64 // 1024}KB ({blocks} blocks)"],
        ["default threads", DEFAULT_THREADS[scale]],
        ["store fraction", spec.data.store_frac],
    ]
    print(format_table(["property", "value"], rows, title=spec.name))
    for txn in spec.txn_types:
        footprint = spec.type_footprint_blocks(txn.type_id) * 64 // 1024
        print(
            f"  {txn.name:20s} weight={txn.weight:5.1f} "
            f"path={len(txn.path)} visits, footprint={footprint}KB"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SLICC (MICRO 2012) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate a workload under variants")
    _add_common(run)
    run.add_argument(
        "--variants", nargs="+", choices=VARIANTS, default=["base", "slicc-sw"]
    )
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser("sweep", help="threshold sweeps (Figures 7/8)")
    _add_common(sweep)
    sweep.add_argument(
        "--kind", choices=["dilution", "fillup"], default="dilution"
    )
    sweep.set_defaults(func=_cmd_sweep)

    info = sub.add_parser("info", help="show workload parameters")
    _add_common(info)
    info.set_defaults(func=_cmd_info)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)
