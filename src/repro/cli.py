"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``     simulate one workload under one or more variants
``sweep``   the Figure 7/8 threshold sweeps
``exp``     run a declarative experiment spec file end-to-end
``paper``   reproduce the registered paper figures into a report
``queue``   enqueue / drain a durable multi-worker sweep queue
``store``   verify / compact / migrate a result store (jsonl or sqlite)
``info``    show workload and machine parameters
``kernel``  explain replay-kernel selection for a config

Exit codes
----------
0   success
1   ``store verify`` found corruption
2   usage or configuration error (bad spec file, unknown field, ...)
3   a sweep completed but one or more specs failed after retries
130 interrupted (SIGINT/SIGTERM); completed results are persisted.
    The first signal drains in-flight work; a second one aborts it
    immediately (still 130, nothing further persisted).

Examples::

    python -m repro run tpcc-1 --variants base slicc-sw --threads 32
    python -m repro run tpce --variants base slicc slicc-sw --jobs 4
    python -m repro sweep tpcc-1 --kind dilution --jobs 8
    python -m repro exp experiments/dilution.json --jobs 8 --store results/
    python -m repro paper --scale smoke --out report/
    python -m repro paper --figures fig8-dilution fig10-mpki --jobs 4
    python -m repro queue enqueue experiments/dilution.json campaign/
    python -m repro queue work campaign/ --jobs 4   # on many machines
    python -m repro queue status campaign/ --json
    python -m repro exp experiments/dilution.json --store results/ \\
        --backend sqlite                      # indexed store for big sweeps
    python -m repro store migrate results/ results/export.jsonl
    python -m repro info tpce
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict
from pathlib import Path
from typing import Sequence

from repro.analysis import (
    format_table,
    sweep_dilution,
    sweep_fillup_matched,
    write_figure_report,
    write_index,
)
from repro.errors import ConfigurationError, ReproError, SweepFailure
from repro.exp import (
    STORE_BACKENDS,
    ResultStore,
    Runner,
    WorkQueue,
    audit_store,
    compact_store,
    describe_store,
    drain,
    figure_names,
    load_spec_file,
    migrate_store,
    select_figures,
    spec_for,
    summarize,
)
from repro.params import ScalePreset
from repro.sched import policy_names
from repro.sim import SimConfig
from repro.workloads import (
    DEFAULT_THREADS,
    get_workload,
    standard_trace,
    workload_names,
)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("workload", choices=workload_names())
    parser.add_argument(
        "--scale",
        choices=[s.value for s in ScalePreset],
        default="ci",
        help="workload scale preset (default: ci)",
    )
    parser.add_argument("--threads", type=int, default=None)
    parser.add_argument("--seed", type=int, default=1)


def _add_exec(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the experiment runner (default: 1)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="persist results under DIR; reruns become incremental "
        "(default: in-memory only)",
    )
    parser.add_argument(
        "--backend",
        choices=STORE_BACKENDS,
        default=None,
        help="store backend: jsonl (append-only file, the default) or "
        "sqlite (WAL database with an index on the spec key — right "
        "for very large sweeps). Default: decided by the --store path "
        "suffix, an existing store file, or REPRO_STORE_BACKEND",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="retries per spec for transient failures — worker death, "
        "engine exceptions — with exponential backoff (default: 2)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-spec wall-clock timeout; a hung simulation's worker "
        "is killed and the spec marked timed_out (default: none)",
    )


def _make_runner(args: argparse.Namespace) -> Runner:
    store = (
        ResultStore(args.store, backend=args.backend)
        if args.store
        else None
    )
    return Runner(
        store=store,
        jobs=args.jobs,
        retries=args.retries,
        timeout=args.timeout,
    )


def _trace_from(args: argparse.Namespace):
    scale = ScalePreset(args.scale)
    return standard_trace(
        args.workload, scale, n_threads=args.threads, seed=args.seed
    )


def _fault_suffix(stats) -> str:
    """Render the failure counters when any recovery machinery fired."""
    parts = []
    if stats.failed:
        parts.append(f"{stats.failed} failed")
    if stats.timed_out:
        parts.append(f"{stats.timed_out} timed out")
    if stats.retried:
        parts.append(f"{stats.retried} retried")
    if stats.reclaimed:
        parts.append(f"{stats.reclaimed} reclaimed")
    return (", " + ", ".join(parts)) if parts else ""


def _print_stats(runner: Runner, specs=None) -> None:
    stats = runner.last_stats
    if stats.simulated or stats.failed:
        line = (
            f"[{stats.simulated} simulated, {stats.cached} cached"
            f"{_fault_suffix(stats)} | "
            f"wall {stats.wall_seconds:.2f}s, "
            f"sim {stats.sim_seconds:.2f}s]"
        )
        print(line)
        if specs and stats.spec_seconds:
            # Name the slowest simulated specs (the ones that bound the
            # sweep's wall time) so scaling wins/losses are visible.
            label_by_key = {spec.key(): spec.display_label() for spec in specs}
            slowest = sorted(
                stats.spec_seconds.items(), key=lambda kv: -kv[1]
            )[:3]
            shown = ", ".join(
                f"{label_by_key.get(key, key[:8])} {seconds:.2f}s"
                for key, seconds in slowest
            )
            print(f"[slowest: {shown}]")
    elif stats.cached:
        print(f"[{stats.simulated} simulated, {stats.cached} cached]")


def _cmd_run(args: argparse.Namespace) -> int:
    trace = _trace_from(args)
    variants = args.variants
    if "base" not in variants:
        variants = ["base"] + list(variants)
    specs = [
        spec_for(trace, SimConfig(variant=variant), label=variant)
        for variant in variants
    ]
    runner = _make_runner(args)
    results = runner.run(specs, trace=trace)
    base = results[variants.index("base")]
    rows = [
        [
            spec.variant,
            result.i_mpki,
            result.d_mpki,
            result.speedup_over(base),
            result.migrations,
            result.utilization,
        ]
        for spec, result in zip(specs, results)
    ]
    print(
        format_table(
            ["variant", "I-MPKI", "D-MPKI", "speedup", "migrations", "util"],
            rows,
            title=f"{args.workload} ({len(trace.threads)} threads)",
        )
    )
    _print_stats(runner)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    trace = _trace_from(args)
    runner = _make_runner(args)
    if args.kind == "dilution":
        points = sweep_dilution(trace, runner=runner)
        headers = ["dilution_t", "I-MPKI", "D-MPKI", "speedup", "migrations"]
        rows = [
            [p.dilution_t, p.i_mpki, p.d_mpki, p.speedup, p.migrations]
            for p in points
        ]
    else:
        points = sweep_fillup_matched(trace, runner=runner)
        headers = ["fill-up_t", "matched_t", "I-MPKI", "D-MPKI", "speedup"]
        rows = [
            [p.fill_up_t, p.matched_t, p.i_mpki, p.d_mpki, p.speedup]
            for p in points
        ]
    print(format_table(headers, rows, title=f"{args.kind} sweep — {args.workload}"))
    _print_stats(runner)
    return 0


def _failure_table(failures) -> str:
    """Per-spec failure table for a sweep that lost rows."""
    rows = [
        [
            outcome.spec.display_label(),
            outcome.spec.variant,
            outcome.kind,
            outcome.attempts,
            (outcome.error or "")[:60],
        ]
        for outcome in failures
    ]
    return format_table(
        ["label", "variant", "failure", "attempts", "error"],
        rows,
        title=f"{len(failures)} spec(s) failed after retries",
    )


def _cmd_exp(args: argparse.Namespace) -> int:
    specs, baseline_spec = load_spec_file(args.specfile)
    runner = _make_runner(args)
    all_specs = specs if baseline_spec is None else [baseline_spec] + specs
    try:
        results = runner.run(all_specs)
    except SweepFailure as failure:
        # The sweep ran to completion; report what survived, table what
        # did not, and exit non-zero so CI pipelines notice.
        completed = [
            (spec, result)
            for spec, result in zip(all_specs, failure.results)
            if result is not None
        ]
        if completed:
            print(
                summarize(
                    completed,
                    title=f"{args.specfile} — completed specs",
                )
            )
        print(_failure_table(failure.failures), file=sys.stderr)
        _print_stats(runner, specs=all_specs)
        return 3
    if baseline_spec is not None:
        baseline, results = results[0], results[1:]
    else:
        baseline = None
    title = f"{args.specfile} — {len(specs)} points"
    print(summarize(list(zip(specs, results)), baseline=baseline, title=title))
    _print_stats(runner, specs=all_specs)
    return 0


def _cmd_paper(args: argparse.Namespace) -> int:
    if args.list:
        rows = [
            [figure.name, figure.title, len(figure.build(args.scale))]
            for figure in select_figures()
        ]
        print(format_table(["figure", "title", "rows"], rows,
                           title=f"registered figures ({args.scale} scale)"))
        return 0

    figures = select_figures(args.figures)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    # The store lives inside the report directory by default, so pointing
    # a second invocation at the same --out is what makes it resumable.
    # Passing the directory (not a fixed filename) lets --backend /
    # REPRO_STORE_BACKEND / an existing store file pick the format.
    store = ResultStore(
        args.store if args.store else out, backend=args.backend
    )
    runner = Runner(
        store=store,
        jobs=args.jobs,
        retries=args.retries,
        timeout=args.timeout,
    )

    entries = []
    total_simulated = total_skipped = 0
    for figure in figures:
        rows = figure.build(args.scale)
        specs = figure.specs(args.scale)
        cached = sum(1 for spec in specs if spec.key() in store)
        todo = len(specs) - cached
        print(
            f"[{figure.name}] {len(rows)} rows / {len(specs)} specs: "
            f"{cached} already stored (skipped), {todo} to simulate"
        )
        runner.run(specs)
        total_simulated += runner.last_stats.simulated
        total_skipped += cached
        paths = write_figure_report(figure, rows, store, out)
        entries.append((figure, len(rows)))
        print(f"  wrote {paths['markdown']} and {paths['csv']}")
    index = write_index(out, entries, scale=args.scale, store_path=store.path)
    print(
        f"report: {index} ({len(entries)} figures; "
        f"{total_simulated} simulated, {total_skipped} skipped via "
        f"{store.path})"
    )
    return 0


def _audit_rows(audit) -> list[list[object]]:
    return [
        ["backend", f"{audit.backend} (schema v{audit.schema_version})"],
        ["lines", audit.lines],
        ["result rows", audit.result_rows],
        ["failure rows", audit.failure_rows],
        ["live keys", audit.keys],
        ["live failures", audit.live_failures],
        ["superseded rows", audit.superseded],
        ["blank lines", audit.blank],
        ["corrupt lines", audit.corrupt],
        ["integrity", audit.integrity],
    ]


def _cmd_store_migrate(args: argparse.Namespace) -> int:
    if not args.dst:
        raise ConfigurationError(
            "migrate needs a destination: "
            "repro store migrate <src> <dst>"
        )
    report = migrate_store(
        args.path,
        args.dst,
        src_backend=args.src_backend or args.backend,
        dst_backend=args.dst_backend,
    )
    print(
        f"migrated {report.src} ({report.src_backend}) -> {report.dst} "
        f"({report.dst_backend}): {report.results} result row(s), "
        f"{report.failures} failure row(s), {report.quarantined} "
        f"quarantined line(s) carried over"
    )
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    if args.action == "migrate":
        return _cmd_store_migrate(args)
    if args.dst:
        raise ConfigurationError(
            f"`store {args.action}` takes one path; a destination only "
            "makes sense for `store migrate`"
        )
    if args.action == "verify":
        audit = audit_store(args.path, backend=args.backend)
        if args.json:
            payload = asdict(audit)
            payload["path"] = str(audit.path)
            payload["clean"] = audit.clean
            payload["reclaimable"] = audit.reclaimable
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0 if audit.clean else 1
        print(
            format_table(
                ["property", "count"],
                _audit_rows(audit),
                title=f"store verify — {audit.path}",
            )
        )
        if not audit.clean:
            print(
                f"CORRUPT: {audit.corrupt} unparseable line(s); run "
                f"`repro store compact {args.path}` to quarantine and "
                "rewrite",
                file=sys.stderr,
            )
            return 1
        print(
            f"clean ({audit.keys} results"
            + (f", {audit.live_failures} live failures" if audit.live_failures else "")
            + (f", {audit.reclaimable} reclaimable lines" if audit.reclaimable else "")
            + ")"
        )
        return 0
    before, kept = compact_store(args.path, backend=args.backend)
    if before.backend == "sqlite":
        print(
            f"compacted {before.path}: {before.lines} rows -> {kept} "
            f"kept ({before.corrupt} corrupt -> quarantine table; "
            "WAL checkpointed, database vacuumed)"
        )
        return 0
    print(
        f"compacted {before.path}: {before.lines} lines -> {kept} rows "
        f"(dropped {before.superseded} superseded, {before.blank} blank, "
        f"{before.corrupt} corrupt"
        + (" -> quarantine sidecar" if before.corrupt else "")
        + ")"
    )
    return 0


def _require_queue(args: argparse.Namespace, worker_id=None) -> WorkQueue:
    """Open an existing queue, or fail with a usage error (exit 2).

    Only ``enqueue`` creates queues — a worker pointed at a queue that
    was never enqueued is a typo'd path, not an empty campaign.
    """
    kwargs = {}
    if worker_id is not None:
        kwargs["worker_id"] = worker_id
    for name in ("lease", "max_claims"):
        value = getattr(args, name, None)
        if value is not None:
            kwargs["lease_seconds" if name == "lease" else name] = value
    queue = WorkQueue(args.queue, **kwargs)
    if not queue.exists():
        raise ConfigurationError(
            f"no queue at {queue.path}; create one with "
            f"`repro queue enqueue <specfile> {args.queue}`"
        )
    return queue


def _print_queue_status(status) -> None:
    print(
        f"queue {status.path}: {status.pending} pending, "
        f"{status.leased} leased, {status.done} done, "
        f"{status.failed} failed ({status.total} total)"
    )


def _cmd_queue_enqueue(args: argparse.Namespace) -> int:
    specs, baseline_spec = load_spec_file(args.specfile)
    all_specs = specs if baseline_spec is None else [baseline_spec] + specs
    queue = WorkQueue(args.queue)
    added = queue.enqueue(all_specs)
    skipped = len(all_specs) - added
    print(
        f"enqueued {added} new spec(s)"
        + (f" ({skipped} already queued or duplicate keys)" if skipped else "")
        + f" -> {queue.path}"
    )
    _print_queue_status(queue.snapshot())
    return 0


def _cmd_queue_work(args: argparse.Namespace) -> int:
    queue = _require_queue(args, worker_id=args.worker_id)
    store_path = Path(args.store) if args.store else queue.path.parent
    runner = Runner(
        store=ResultStore(store_path, backend=args.backend),
        jobs=args.jobs,
        retries=args.retries,
        timeout=args.timeout,
    )
    report = drain(
        queue,
        runner,
        batch=args.batch,
        poll_seconds=args.poll,
    )
    stats = runner.stats
    print(
        f"[{queue.worker_id}] {report.claimed} claimed "
        f"({report.reclaimed} reclaimed), {stats.simulated} simulated, "
        f"{stats.cached} cached, {report.failed} failed | "
        f"wall {stats.wall_seconds:.2f}s, sim {stats.sim_seconds:.2f}s"
    )
    status = queue.snapshot()
    _print_queue_status(status)
    return 3 if status.failed else 0


def _cmd_queue_status(args: argparse.Namespace) -> int:
    queue = _require_queue(args)
    status = queue.snapshot()
    # The campaign's store lives next to the queue by convention; name
    # its backend and schema so nightly/chaos gates can assert on them.
    store_info = describe_store(queue.path.parent)
    if args.json:
        payload = status.to_payload()
        payload["store_backend"] = (
            store_info["backend"] if store_info else None
        )
        payload["store_schema_version"] = (
            store_info["schema_version"] if store_info else None
        )
        payload["store_path"] = store_info["path"] if store_info else None
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    rows = [
        ["pending", status.pending],
        ["leased", status.leased],
        ["done", status.done],
        ["failed", status.failed],
        ["stale leases", len(status.stale)],
        ["corrupt events", status.corrupt_events],
        ["total", status.total],
    ]
    print(format_table(["state", "count"], rows,
                       title=f"queue status — {status.path}"))
    for worker, count in sorted(status.workers.items()):
        print(f"  worker {worker}: {count} lease(s)")
    for stale in status.stale:
        print(
            f"  STALE: {stale.key[:12]}… leased by {stale.worker}, "
            f"expired {stale.overdue:.1f}s ago after {stale.claims} "
            f"claim(s) — workers reclaim it automatically, or run "
            f"`repro queue reclaim`"
        )
    if store_info:
        print(
            f"store: {store_info['backend']} "
            f"(schema v{store_info['schema_version']}) at "
            f"{store_info['path']}"
        )
    if status.drained:
        print("drained: no pending work, no live leases")
    return 0


def _cmd_queue_reclaim(args: argparse.Namespace) -> int:
    queue = _require_queue(args, worker_id="reclaim-cli")
    released, exhausted = queue.reclaim_expired()
    print(
        f"reclaimed {len(released)} expired lease(s) back to pending; "
        f"{len(exhausted)} failed terminally (claim budget exhausted)"
    )
    _print_queue_status(queue.snapshot())
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    scale = ScalePreset(args.scale)
    spec = get_workload(args.workload, scale)
    blocks = spec.footprint_blocks()
    rows = [
        ["transaction types", len(spec.txn_types)],
        ["code segments", len(spec.segments)],
        ["code footprint", f"{blocks * 64 // 1024}KB ({blocks} blocks)"],
        ["default threads", DEFAULT_THREADS[scale]],
        ["store fraction", spec.data.store_frac],
    ]
    print(format_table(["property", "value"], rows, title=spec.name))
    for txn in spec.txn_types:
        footprint = spec.type_footprint_blocks(txn.type_id) * 64 // 1024
        print(
            f"  {txn.name:20s} weight={txn.weight:5.1f} "
            f"path={len(txn.path)} visits, footprint={footprint}KB"
        )
    return 0


def _kernel_rows(engine) -> list[list[str]]:
    """Eligibility table rows for every selectable kernel of one
    constructed engine (inline/fallback are always available)."""
    import os

    from repro.sim.batch import numpy_available

    rows = [
        ["inline", "ok (always available)"],
        ["fallback", "ok (always available)"],
    ]
    if os.environ.get("REPRO_NO_BATCH"):
        batch = "vetoed (REPRO_NO_BATCH is set)"
    elif not numpy_available():
        batch = "unavailable (numpy missing)"
    else:
        blockers = engine._batch_blockers()
        batch = "ineligible: " + "; ".join(blockers) if blockers else "ok"
    rows.append(["batch", batch])
    if os.environ.get("REPRO_NO_SPECIALIZE"):
        spec = "vetoed (REPRO_NO_SPECIALIZE is set)"
    else:
        blockers = engine._specialize_blockers()
        spec = "ineligible: " + "; ".join(blockers) if blockers else "ok"
    rows.append(["specialized", spec])
    return rows


def _cmd_kernel_explain(args: argparse.Namespace) -> int:
    import dataclasses
    import os

    from repro.sim.engine import ReplayEngine, SimConfig
    from repro.workloads import standard_trace

    target = args.spec
    if Path(target).suffix == ".json" or Path(target).is_file():
        from repro.exp.specfile import load_spec_file

        specs, baseline = load_spec_file(target)
        if baseline is not None:
            specs = specs + [baseline]
        configs: list = []
        seen: set = set()
        for spec in specs:
            config = spec.canonical_config()
            if repr(config) not in seen:
                seen.add(repr(config))
                configs.append((spec.label or config.variant, config))
    elif target in policy_names():
        configs = [(target, SimConfig(variant=target))]
    else:
        raise ConfigurationError(
            f"{target!r} is neither a registered variant "
            f"({policy_names()}) nor a spec file"
        )

    # Blockers are structural (policy flags + cache geometry), so a
    # smoke trace is enough to construct the probe engines.
    trace = standard_trace("tpcc-1", ScalePreset.SMOKE, seed=3)
    env = os.environ.get("REPRO_KERNEL", "").strip()
    for label, config in configs:
        resolved = ReplayEngine(
            trace, dataclasses.replace(config, kernel="auto")
        ).kernel
        probe = ReplayEngine(
            trace, dataclasses.replace(config, kernel="inline")
        )
        note = f" (REPRO_KERNEL={env})" if env else ""
        print(
            format_table(
                ["kernel", "eligibility"],
                _kernel_rows(probe),
                title=f"{label}: auto resolves to {resolved!r}{note}",
            )
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SLICC (MICRO 2012) reproduction toolkit",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "exit codes:\n"
            "  0    success\n"
            "  1    `store verify` found corruption\n"
            "  2    usage or configuration error\n"
            "  3    sweep (or queue drain) completed but specs failed\n"
            "       after retries\n"
            "  130  interrupted; the first SIGINT/SIGTERM drains and\n"
            "       persists in-flight work, a second aborts it\n"
            "       immediately (nothing further persisted)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate a workload under variants")
    _add_common(run)
    run.add_argument(
        "--variants",
        nargs="+",
        # Derived from the scheduling-policy registry: a newly registered
        # policy appears here (and in spec files, which validate through
        # SimConfig) with no CLI edit.
        choices=policy_names(),
        default=["base", "slicc-sw"],
    )
    _add_exec(run)
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser("sweep", help="threshold sweeps (Figures 7/8)")
    _add_common(sweep)
    sweep.add_argument(
        "--kind", choices=["dilution", "fillup"], default="dilution"
    )
    _add_exec(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    exp = sub.add_parser(
        "exp",
        help="run a declarative experiment spec file",
        description="Run a declarative experiment spec file end-to-end. "
        "Per-spec failures (poison specs, timeouts, worker deaths that "
        "survive --retries) do not abort the sweep: every other spec "
        "completes and persists, the failures are tabulated, and the "
        "exit code is 3. Exit codes: 0 = all specs completed, 2 = "
        "usage/configuration error, 3 = one or more specs failed after "
        "retries, 130 = interrupted (completed results are persisted).",
    )
    exp.add_argument("specfile", help="JSON spec file (see repro.exp.specfile)")
    _add_exec(exp)
    exp.set_defaults(func=_cmd_exp)

    paper = sub.add_parser(
        "paper",
        help="reproduce the paper's figure set into a markdown/CSV report",
    )
    paper.add_argument(
        "--figures",
        nargs="+",
        default=None,
        metavar="NAME",
        help=f"figures to run (default: all of {figure_names()})",
    )
    paper.add_argument(
        "--scale",
        choices=[s.value for s in ScalePreset],
        default="smoke",
        help="scale preset for every figure (default: smoke)",
    )
    paper.add_argument(
        "--out",
        default="report",
        metavar="DIR",
        help="report directory (default: report/)",
    )
    paper.add_argument(
        "--list",
        action="store_true",
        help="list registered figures and exit",
    )
    _add_exec(paper)
    paper.set_defaults(func=_cmd_paper)

    queue = sub.add_parser(
        "queue",
        help="durable multi-worker sweep queue (enqueue/work/status/reclaim)",
        description="Drain one sweep with any number of independent "
        "worker processes on a shared filesystem. `enqueue` appends a "
        "spec file's grid to a durable queue file; each `work` process "
        "claims specs under a heartbeat-renewed lease, simulates them "
        "with the normal runner (same --retries/--timeout semantics), "
        "and records results in the store next to the queue. If a "
        "worker is SIGKILL'd its leases expire and surviving workers "
        "reclaim them; content-hashed spec keys make the resulting "
        "at-least-once execution safe (a duplicate finish writes a "
        "byte-identical row).",
    )
    qsub = queue.add_subparsers(dest="action", required=True)

    q_enqueue = qsub.add_parser(
        "enqueue", help="append a spec file's grid to a queue"
    )
    q_enqueue.add_argument(
        "specfile", help="JSON spec file (see repro.exp.specfile)"
    )
    q_enqueue.add_argument(
        "queue", help="queue directory or queue.jsonl file (created)"
    )
    q_enqueue.set_defaults(func=_cmd_queue_enqueue)

    q_work = qsub.add_parser(
        "work",
        help="drain a queue as one worker process",
        description="Claim, simulate and complete queued specs until "
        "the queue is drained. Run any number of these concurrently — "
        "on one machine or many sharing the filesystem. Exit codes: "
        "0 = queue drained, all specs done; 2 = usage/configuration "
        "error; 3 = queue drained but some specs failed terminally; "
        "130 = interrupted — the first SIGINT/SIGTERM finishes "
        "in-flight simulations, persists them, and releases the "
        "remaining leases for other workers; a second signal aborts "
        "in-flight work immediately (nothing further persisted, "
        "still 130).",
    )
    q_work.add_argument("queue", help="queue directory or queue.jsonl file")
    q_work.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="result store (default: the campaign directory next to "
        "the queue)",
    )
    q_work.add_argument(
        "--backend",
        choices=STORE_BACKENDS,
        default=None,
        help="store backend (jsonl or sqlite); default decided by the "
        "store path, an existing store file, or REPRO_STORE_BACKEND. "
        "Every worker of a campaign must agree on the backend",
    )
    q_work.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for this drainer's runner (default: 1)",
    )
    q_work.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="in-process retries per spec for transient failures "
        "(default: 2)",
    )
    q_work.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-spec wall-clock timeout (default: none)",
    )
    q_work.add_argument(
        "--lease",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="lease seconds per claim; a heartbeat renews held leases "
        "every lease/4, so a dead worker's specs free up after at most "
        "one lease period (default: 60)",
    )
    q_work.add_argument(
        "--max-claims",
        type=int,
        default=3,
        metavar="N",
        help="total claims allowed per spec before an expired lease "
        "fails terminally instead of being reclaimed (default: 3)",
    )
    q_work.add_argument(
        "--batch",
        type=int,
        default=None,
        metavar="N",
        help="specs claimed per cycle (default: --jobs)",
    )
    q_work.add_argument(
        "--poll",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="idle poll interval while other workers hold leases "
        "(default: 0.5)",
    )
    q_work.add_argument(
        "--worker-id",
        default=None,
        metavar="ID",
        help="explicit worker identity (default: host-pid-random); "
        "chaos profiles use fixed ids for deterministic schedules",
    )
    q_work.set_defaults(func=_cmd_queue_work)

    q_status = qsub.add_parser(
        "status",
        help="pending/leased/done/failed counts + stale-lease diagnostics",
    )
    q_status.add_argument("queue", help="queue directory or queue.jsonl file")
    q_status.add_argument(
        "--json",
        action="store_true",
        help="machine-readable JSON (for CI assertions)",
    )
    q_status.set_defaults(func=_cmd_queue_status)

    q_reclaim = qsub.add_parser(
        "reclaim",
        help="return expired leases to pending without waiting for "
        "workers to reclaim them",
    )
    q_reclaim.add_argument("queue", help="queue directory or queue.jsonl file")
    q_reclaim.set_defaults(func=_cmd_queue_reclaim)

    store = sub.add_parser(
        "store",
        help="verify / compact / migrate a result store (jsonl or sqlite)",
        description="Maintain a campaign's result store (JSONL file or "
        "SQLite database; the backend is inferred from the path suffix, "
        "an existing store file, or REPRO_STORE_BACKEND). `verify` "
        "audits without modifying anything and exits 1 when corruption "
        "is found (line scan for jsonl; row scan + PRAGMA "
        "integrity_check for sqlite); `compact` garbage-collects "
        "(atomic rewrite dropping superseded history for jsonl; "
        "idempotent re-upsert + WAL checkpoint + VACUUM for sqlite), "
        "quarantining corrupt rows either way; `migrate <src> <dst>` "
        "converts between backends with byte-identical result rows, "
        "quarantined lines included.",
    )
    store.add_argument("action", choices=["verify", "compact", "migrate"])
    store.add_argument(
        "path", help="store directory or store file (as given to --store)"
    )
    store.add_argument(
        "dst",
        nargs="?",
        default=None,
        help="migration destination (migrate only): directory or store "
        "file; its suffix picks the target backend",
    )
    store.add_argument(
        "--json",
        action="store_true",
        help="machine-readable audit JSON (verify only; same exit codes)",
    )
    store.add_argument(
        "--backend",
        choices=STORE_BACKENDS,
        default=None,
        help="force the backend of PATH instead of inferring it",
    )
    store.add_argument(
        "--src-backend",
        choices=STORE_BACKENDS,
        default=None,
        help="force the source backend for migrate (alias of --backend)",
    )
    store.add_argument(
        "--dst-backend",
        choices=STORE_BACKENDS,
        default=None,
        help="force the destination backend for migrate",
    )
    store.set_defaults(func=_cmd_store)

    info = sub.add_parser("info", help="show workload parameters")
    _add_common(info)
    info.set_defaults(func=_cmd_info)

    kernel = sub.add_parser(
        "kernel",
        help="inspect replay-kernel selection for a config",
    )
    ksub = kernel.add_subparsers(dest="action", required=True)
    k_explain = ksub.add_parser(
        "explain",
        help="show what kernel='auto' resolves to and per-kernel "
        "eligibility/blockers",
        description="For a registered variant name or an exp spec file, "
        "print which replay kernel kernel='auto' resolves to (honouring "
        "REPRO_KERNEL / REPRO_NO_BATCH / REPRO_NO_SPECIALIZE) and, for "
        "each selectable kernel, whether an explicit request would be "
        "honoured or why it would raise.",
    )
    k_explain.add_argument(
        "spec",
        help="a registered variant name, or a JSON exp spec file",
    )
    k_explain.set_defaults(func=_cmd_kernel_explain)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code.

    Exit codes: 0 success; 1 ``store verify`` found corruption; 2
    usage/configuration error; 3 sweep completed with failed specs;
    130 interrupted (completed results are persisted).
    """
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # The runner drains on SIGINT/SIGTERM: in-flight simulations
        # finished and persisted before this propagated.
        print(
            "interrupted — completed results are persisted; rerun to "
            "resume",
            file=sys.stderr,
        )
        return 130
    except SweepFailure as failure:
        # run/sweep/paper surface sweep failures here (exp renders its
        # own table alongside the partial summary).
        print(_failure_table(failure.failures), file=sys.stderr)
        print(f"error: {failure}", file=sys.stderr)
        return 3
    except (ReproError, OSError, ValueError) as exc:
        # User-input problems (bad spec files, unknown fields or values,
        # unreadable paths — json.JSONDecodeError is a ValueError) end as
        # one-line errors, not tracebacks; engine bugs (SimulationError
        # is a ReproError too, but unexpected) still surface their
        # message — rerun under python -X dev for a trace.
        print(f"error: {exc}", file=sys.stderr)
        return 2
