"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``     simulate one workload under one or more variants
``sweep``   the Figure 7/8 threshold sweeps
``exp``     run a declarative experiment spec file end-to-end
``paper``   reproduce the registered paper figures into a report
``info``    show workload and machine parameters

Examples::

    python -m repro run tpcc-1 --variants base slicc-sw --threads 32
    python -m repro run tpce --variants base slicc slicc-sw --jobs 4
    python -m repro sweep tpcc-1 --kind dilution --jobs 8
    python -m repro exp experiments/dilution.json --jobs 8 --store results/
    python -m repro paper --scale smoke --out report/
    python -m repro paper --figures fig8-dilution fig10-mpki --jobs 4
    python -m repro info tpce
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis import (
    format_table,
    sweep_dilution,
    sweep_fillup_matched,
    write_figure_report,
    write_index,
)
from repro.errors import ReproError
from repro.exp import (
    ResultStore,
    Runner,
    figure_names,
    load_spec_file,
    select_figures,
    spec_for,
    summarize,
)
from repro.params import ScalePreset
from repro.sched import policy_names
from repro.sim import SimConfig
from repro.workloads import (
    DEFAULT_THREADS,
    get_workload,
    standard_trace,
    workload_names,
)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("workload", choices=workload_names())
    parser.add_argument(
        "--scale",
        choices=[s.value for s in ScalePreset],
        default="ci",
        help="workload scale preset (default: ci)",
    )
    parser.add_argument("--threads", type=int, default=None)
    parser.add_argument("--seed", type=int, default=1)


def _add_exec(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the experiment runner (default: 1)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="persist results as JSONL under DIR; reruns become "
        "incremental (default: in-memory only)",
    )


def _make_runner(args: argparse.Namespace) -> Runner:
    store = ResultStore(args.store) if args.store else None
    return Runner(store=store, jobs=args.jobs)


def _trace_from(args: argparse.Namespace):
    scale = ScalePreset(args.scale)
    return standard_trace(
        args.workload, scale, n_threads=args.threads, seed=args.seed
    )


def _print_stats(runner: Runner, specs=None) -> None:
    stats = runner.last_stats
    if stats.simulated:
        line = (
            f"[{stats.simulated} simulated, {stats.cached} cached | "
            f"wall {stats.wall_seconds:.2f}s, "
            f"sim {stats.sim_seconds:.2f}s]"
        )
        print(line)
        if specs and stats.spec_seconds:
            # Name the slowest simulated specs (the ones that bound the
            # sweep's wall time) so scaling wins/losses are visible.
            label_by_key = {spec.key(): spec.display_label() for spec in specs}
            slowest = sorted(
                stats.spec_seconds.items(), key=lambda kv: -kv[1]
            )[:3]
            shown = ", ".join(
                f"{label_by_key.get(key, key[:8])} {seconds:.2f}s"
                for key, seconds in slowest
            )
            print(f"[slowest: {shown}]")
    elif stats.cached:
        print(f"[{stats.simulated} simulated, {stats.cached} cached]")


def _cmd_run(args: argparse.Namespace) -> int:
    trace = _trace_from(args)
    variants = args.variants
    if "base" not in variants:
        variants = ["base"] + list(variants)
    specs = [
        spec_for(trace, SimConfig(variant=variant), label=variant)
        for variant in variants
    ]
    runner = _make_runner(args)
    results = runner.run(specs, trace=trace)
    base = results[variants.index("base")]
    rows = [
        [
            spec.variant,
            result.i_mpki,
            result.d_mpki,
            result.speedup_over(base),
            result.migrations,
            result.utilization,
        ]
        for spec, result in zip(specs, results)
    ]
    print(
        format_table(
            ["variant", "I-MPKI", "D-MPKI", "speedup", "migrations", "util"],
            rows,
            title=f"{args.workload} ({len(trace.threads)} threads)",
        )
    )
    _print_stats(runner)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    trace = _trace_from(args)
    runner = _make_runner(args)
    if args.kind == "dilution":
        points = sweep_dilution(trace, runner=runner)
        headers = ["dilution_t", "I-MPKI", "D-MPKI", "speedup", "migrations"]
        rows = [
            [p.dilution_t, p.i_mpki, p.d_mpki, p.speedup, p.migrations]
            for p in points
        ]
    else:
        points = sweep_fillup_matched(trace, runner=runner)
        headers = ["fill-up_t", "matched_t", "I-MPKI", "D-MPKI", "speedup"]
        rows = [
            [p.fill_up_t, p.matched_t, p.i_mpki, p.d_mpki, p.speedup]
            for p in points
        ]
    print(format_table(headers, rows, title=f"{args.kind} sweep — {args.workload}"))
    _print_stats(runner)
    return 0


def _cmd_exp(args: argparse.Namespace) -> int:
    specs, baseline_spec = load_spec_file(args.specfile)
    runner = _make_runner(args)
    if baseline_spec is not None:
        results = runner.run([baseline_spec] + specs)
        baseline, results = results[0], results[1:]
    else:
        results = runner.run(specs)
        baseline = None
    title = f"{args.specfile} — {len(specs)} points"
    print(summarize(list(zip(specs, results)), baseline=baseline, title=title))
    all_specs = specs if baseline_spec is None else [baseline_spec] + specs
    _print_stats(runner, specs=all_specs)
    return 0


def _cmd_paper(args: argparse.Namespace) -> int:
    if args.list:
        rows = [
            [figure.name, figure.title, len(figure.build(args.scale))]
            for figure in select_figures()
        ]
        print(format_table(["figure", "title", "rows"], rows,
                           title=f"registered figures ({args.scale} scale)"))
        return 0

    figures = select_figures(args.figures)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    # The store lives inside the report directory by default, so pointing
    # a second invocation at the same --out is what makes it resumable.
    store = ResultStore(args.store if args.store else out / "results.jsonl")
    runner = Runner(store=store, jobs=args.jobs)

    entries = []
    total_simulated = total_skipped = 0
    for figure in figures:
        rows = figure.build(args.scale)
        specs = figure.specs(args.scale)
        cached = sum(1 for spec in specs if spec.key() in store)
        todo = len(specs) - cached
        print(
            f"[{figure.name}] {len(rows)} rows / {len(specs)} specs: "
            f"{cached} already stored (skipped), {todo} to simulate"
        )
        runner.run(specs)
        total_simulated += runner.last_stats.simulated
        total_skipped += cached
        paths = write_figure_report(figure, rows, store, out)
        entries.append((figure, len(rows)))
        print(f"  wrote {paths['markdown']} and {paths['csv']}")
    index = write_index(out, entries, scale=args.scale, store_path=store.path)
    print(
        f"report: {index} ({len(entries)} figures; "
        f"{total_simulated} simulated, {total_skipped} skipped via "
        f"{store.path})"
    )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    scale = ScalePreset(args.scale)
    spec = get_workload(args.workload, scale)
    blocks = spec.footprint_blocks()
    rows = [
        ["transaction types", len(spec.txn_types)],
        ["code segments", len(spec.segments)],
        ["code footprint", f"{blocks * 64 // 1024}KB ({blocks} blocks)"],
        ["default threads", DEFAULT_THREADS[scale]],
        ["store fraction", spec.data.store_frac],
    ]
    print(format_table(["property", "value"], rows, title=spec.name))
    for txn in spec.txn_types:
        footprint = spec.type_footprint_blocks(txn.type_id) * 64 // 1024
        print(
            f"  {txn.name:20s} weight={txn.weight:5.1f} "
            f"path={len(txn.path)} visits, footprint={footprint}KB"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SLICC (MICRO 2012) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate a workload under variants")
    _add_common(run)
    run.add_argument(
        "--variants",
        nargs="+",
        # Derived from the scheduling-policy registry: a newly registered
        # policy appears here (and in spec files, which validate through
        # SimConfig) with no CLI edit.
        choices=policy_names(),
        default=["base", "slicc-sw"],
    )
    _add_exec(run)
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser("sweep", help="threshold sweeps (Figures 7/8)")
    _add_common(sweep)
    sweep.add_argument(
        "--kind", choices=["dilution", "fillup"], default="dilution"
    )
    _add_exec(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    exp = sub.add_parser(
        "exp", help="run a declarative experiment spec file"
    )
    exp.add_argument("specfile", help="JSON spec file (see repro.exp.specfile)")
    _add_exec(exp)
    exp.set_defaults(func=_cmd_exp)

    paper = sub.add_parser(
        "paper",
        help="reproduce the paper's figure set into a markdown/CSV report",
    )
    paper.add_argument(
        "--figures",
        nargs="+",
        default=None,
        metavar="NAME",
        help=f"figures to run (default: all of {figure_names()})",
    )
    paper.add_argument(
        "--scale",
        choices=[s.value for s in ScalePreset],
        default="smoke",
        help="scale preset for every figure (default: smoke)",
    )
    paper.add_argument(
        "--out",
        default="report",
        metavar="DIR",
        help="report directory (default: report/)",
    )
    paper.add_argument(
        "--list",
        action="store_true",
        help="list registered figures and exit",
    )
    _add_exec(paper)
    paper.set_defaults(func=_cmd_paper)

    info = sub.add_parser("info", help="show workload parameters")
    _add_common(info)
    info.set_defaults(func=_cmd_info)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError, ValueError) as exc:
        # User-input problems (bad spec files, unknown fields or values,
        # unreadable paths — json.JSONDecodeError is a ValueError) end as
        # one-line errors, not tracebacks; engine bugs (SimulationError
        # is a ReproError too, but unexpected) still surface their
        # message — rerun under python -X dev for a trace.
        print(f"error: {exc}", file=sys.stderr)
        return 2
