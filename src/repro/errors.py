"""Exception hierarchy for the SLICC reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch the whole family with a single ``except`` clause while still letting
programming errors (``TypeError`` etc.) propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """Raised when simulation or cache parameters are inconsistent.

    Examples: a cache whose size is not divisible by ``block_size * assoc``,
    a SLICC threshold outside its legal range, or a workload spec with no
    transaction types.
    """


class TraceError(ReproError):
    """Raised when a trace is malformed or inconsistent with its metadata."""


class SimulationError(ReproError):
    """Raised when the simulation engine reaches an impossible state.

    This always indicates a bug (e.g. a thread scheduled on two cores at
    once); it is never an expected runtime condition.
    """
