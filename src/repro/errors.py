"""Exception hierarchy for the SLICC reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch the whole family with a single ``except`` clause while still letting
programming errors (``TypeError`` etc.) propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """Raised when simulation or cache parameters are inconsistent.

    Examples: a cache whose size is not divisible by ``block_size * assoc``,
    a SLICC threshold outside its legal range, or a workload spec with no
    transaction types.
    """


class TraceError(ReproError):
    """Raised when a trace is malformed or inconsistent with its metadata."""


class SimulationError(ReproError):
    """Raised when the simulation engine reaches an impossible state.

    This always indicates a bug (e.g. a thread scheduled on two cores at
    once); it is never an expected runtime condition.
    """


class SweepFailure(ReproError):
    """Raised when a sweep finished but some specs ultimately failed.

    The :class:`~repro.exp.runner.Runner` isolates per-spec failures
    (poison specs, exhausted retries, timeouts) so the rest of the
    sweep completes and persists; this exception is raised *afterwards*
    to report what was lost. ``failures`` holds the terminal
    :class:`~repro.exp.pool.SpecOutcome` per failed spec; ``results``
    is the input-aligned result list with ``None`` at failed positions.
    """

    def __init__(self, message: str, failures=None, results=None):
        super().__init__(message)
        self.failures = list(failures or [])
        self.results = results
