"""Next-line instruction prefetcher (Figure 11's middle baseline).

On every L1-I demand miss for block *b*, the prefetcher also fetches
*b+1* into the cache. Prefetches are timely only to a degree: a block
consumed immediately after its trigger miss still pays
``prefetch_late_fraction`` of the downstream latency. Sequential-run
structure in the instruction stream determines coverage — jumps between
runs (function calls, taken branches) are never covered, which is why
next-line trails both SLICC and PIF on OLTP.
"""

from __future__ import annotations

from repro.cache.cache import SetAssociativeCache


class NextLinePrefetcher:
    """Per-core next-line prefetcher state.

    The whole hot state is the ``_pending`` set; the replay engine's
    inline fast path drives it directly (membership test on hits,
    discard on evictions, add on issued prefetches) and batches the
    ``issued``/``useful`` counters per quantum. The methods below are
    the reference implementation used by the engine's generic fallback
    path and by unit tests; the golden suite pins both bit-identical.
    """

    __slots__ = ("_cache", "_pending", "issued", "useful")

    def __init__(self, cache: SetAssociativeCache) -> None:
        self._cache = cache
        #: Blocks prefetched but not yet demanded (in flight / unconsumed).
        self._pending: set[int] = set()
        self.issued = 0
        self.useful = 0

    def on_demand_miss(self, block: int) -> int | None:
        """Demand miss for ``block``: prefetch ``block + 1``.

        Returns the prefetched block id when a prefetch was issued (the
        engine then touches the L2 for it), else None.
        """
        nxt = block + 1
        if self._cache.probe(nxt):
            return None
        self._cache.install(nxt)
        self._pending.add(nxt)
        self.issued += 1
        return nxt

    def consume_if_prefetched(self, block: int) -> bool:
        """Demand access hit ``block``: was it a not-yet-consumed prefetch?

        True means the access should pay the late-prefetch residual
        instead of a full hit's zero penalty.
        """
        if block in self._pending:
            self._pending.discard(block)
            self.useful += 1
            return True
        return False

    def on_evict(self, block: int) -> None:
        """A block left the cache; a pending prefetch for it is dead."""
        self._pending.discard(block)

    @property
    def accuracy(self) -> float:
        """Useful prefetches / issued prefetches."""
        return self.useful / self.issued if self.issued else 0.0
