"""Instruction prefetcher baselines compared against SLICC in Figure 11."""

from repro.prefetch.nextline import NextLinePrefetcher
from repro.prefetch.pif import PIF_STORAGE_BYTES_PER_CORE, pif_l1i_params

__all__ = [
    "NextLinePrefetcher",
    "PIF_STORAGE_BYTES_PER_CORE",
    "pif_l1i_params",
]
