"""Migration data prefetcher — the paper's negative result (Section 5.5).

To mitigate the data misses a migrating thread suffers at its new core,
the authors tried recording the tags of the last *n* referenced data
blocks per thread and prefetching them to the migration target. It did
not help, for four reasons the paper lists: (1) extra bandwidth on the
lower cache levels at high *n*, (2) too little reuse at low *n*, (3) not
every prefetched block is referenced again, and (4) 45% of data accesses
are stores, so prefetching shared blocks provokes invalidations that
would not otherwise occur.

We reproduce the mechanism so the experiment can be regenerated: a
per-thread ring of recent data block tags, drained into the target L1-D
on migration. The engine charges a per-block bandwidth cost and routes
installs through the coherence directory so effects (3) and (4) emerge
naturally; `benchmarks/test_sec55_data_prefetch.py` shows the resulting
non-improvement.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigurationError


class MigrationDataPrefetcher:
    """Per-thread last-*n* data-block history with migration drain.

    The hot state is ``_history`` (thread id -> bounded deque of recent
    data blocks) and ``_pending`` (thread id -> set of prefetched tags
    not yet demanded). The replay engine's inline fast path resolves
    both once per quantum (the running thread is fixed within one) and
    drives them directly, batching ``useful``; :meth:`record_access` and
    :meth:`note_demand` remain the reference implementation used by the
    engine's generic fallback path and by unit tests.
    """

    __slots__ = ("n_blocks", "_history", "issued", "useful", "_pending")

    def __init__(self, n_blocks: int = 16) -> None:
        if n_blocks <= 0:
            raise ConfigurationError("n_blocks must be positive")
        self.n_blocks = n_blocks
        self._history: dict[int, deque[int]] = {}
        #: Prefetches issued across all migrations.
        self.issued = 0
        #: Prefetched blocks later demanded at the target (usefulness).
        self.useful = 0
        self._pending: dict[int, set[int]] = {}

    def record_access(self, thread_id: int, block: int) -> None:
        """Note a data access by ``thread_id`` (call on every data record)."""
        history = self._history.get(thread_id)
        if history is None:
            history = deque(maxlen=self.n_blocks)
            self._history[thread_id] = history
        history.append(block)

    def blocks_for_migration(self, thread_id: int) -> list[int]:
        """Distinct recent blocks to ship to the migration target.

        Most-recent-first so a truncated drain keeps the hottest tags.
        """
        history = self._history.get(thread_id)
        if not history:
            return []
        seen: list[int] = []
        for block in reversed(history):
            if block not in seen:
                seen.append(block)
        self.issued += len(seen)
        self._pending.setdefault(thread_id, set()).update(seen)
        return seen

    def note_demand(self, thread_id: int, block: int) -> bool:
        """A demand access at the target; True if it consumed a prefetch."""
        pending = self._pending.get(thread_id)
        if pending and block in pending:
            pending.discard(block)
            self.useful += 1
            return True
        return False

    @property
    def accuracy(self) -> float:
        """Useful / issued prefetches (paper effect (3): well below 1)."""
        return self.useful / self.issued if self.issued else 0.0
