"""PIF upper-bound model (Ferdman et al., MICRO'11), per Section 5.6.

The paper does not implement PIF either: citing its near-perfect L1-I
miss coverage, they model an **upper bound** as a 512KB L1-I with the
latency of a 32KB one, and charge PIF its ~40KB of prefetcher storage per
core in the cost comparison. We reproduce exactly that model: the engine
swaps in the scaled cache parameters and otherwise runs the baseline
schedule (no migration, no teams).

This construction is why SLICC can beat "PIF" on TPC-E: when the *total*
code footprint of all concurrently running transaction types exceeds even
512KB, the big private cache still misses, while SLICC's type-aware
pipelining shrinks the footprint that is live at any instant.
"""

from __future__ import annotations

from repro.params import CacheParams

#: PIF's per-core storage requirement (Section 5.7 / Section 6).
PIF_STORAGE_BYTES_PER_CORE = 40 * 1024

#: Upper-bound capacity used by the paper's PIF model.
PIF_MODEL_SIZE_BYTES = 512 * 1024


def pif_l1i_params(base: CacheParams) -> CacheParams:
    """L1-I parameters for the PIF upper bound.

    512KB capacity at the *base* cache's hit latency (the paper's "512KB
    cache with the delay of a 32KB cache").
    """
    return base.scaled(PIF_MODEL_SIZE_BYTES, hit_latency=base.hit_latency)
