"""Cache substrate: set-associative caches, replacement policies, miss
classification and a CACTI-like latency model.

This package is the foundation the whole reproduction stands on. Both the
baseline machine and SLICC use :class:`SetAssociativeCache` for L1-I and
L1-D; the Figure 1 and Figure 2 experiments drive it directly.
"""

from repro.cache.cache import AccessResult, SetAssociativeCache
from repro.cache.cacti import latency_for_size
from repro.cache.classify import MissClass, MissClassifier
from repro.cache.stats import CacheStats

__all__ = [
    "AccessResult",
    "SetAssociativeCache",
    "CacheStats",
    "MissClass",
    "MissClassifier",
    "latency_for_size",
]
