"""Per-cache access statistics.

``CacheStats`` is deliberately a plain mutable dataclass: the simulator's
inner loop bumps its counters millions of times, so every indirection
counts. Derived metrics (miss ratio, MPKI) are computed on demand.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class CacheStats:
    """Counters for one cache instance.

    Attributes:
        accesses: total references (hits + misses).
        misses: references that missed.
        evictions: valid blocks displaced by fills.
        invalidations: blocks removed by coherence actions.
        prefetch_fills: blocks installed by a prefetcher rather than demand.
    """

    accesses: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    prefetch_fills: int = 0

    @property
    def hits(self) -> int:
        """Demand references that hit."""
        return self.accesses - self.misses

    @property
    def miss_ratio(self) -> float:
        """Misses / accesses; 0.0 for an untouched cache."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def mpki(self, instructions: int) -> float:
        """Misses per kilo-instruction given a retired-instruction count."""
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.misses / instructions

    def reset(self) -> None:
        """Zero every counter (used between warm-up and measurement)."""
        self.accesses = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.prefetch_fills = 0

    def merged(self, other: "CacheStats") -> "CacheStats":
        """Return the element-wise sum of two stat blocks."""
        return CacheStats(
            accesses=self.accesses + other.accesses,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            invalidations=self.invalidations + other.invalidations,
            prefetch_fills=self.prefetch_fills + other.prefetch_fills,
        )
