"""Replacement policies evaluated in Figure 2 of the paper.

Importing this package registers every policy; use
:func:`repro.cache.policies.make_policy` to instantiate one by name.
"""

from repro.cache.policies.base import (
    ReplacementPolicy,
    make_policy,
    policy_names,
    register_policy,
)

# Importing the modules has the side effect of populating the registry.
from repro.cache.policies import lru as _lru  # noqa: F401
from repro.cache.policies import rrip as _rrip  # noqa: F401

__all__ = [
    "ReplacementPolicy",
    "make_policy",
    "policy_names",
    "register_policy",
]
