"""Replacement-policy interface.

A policy owns per-way metadata for every set and answers three questions:
what to do on a hit, what to do when a new block fills a way, and which way
to victimise when a set is full. The cache handles invalid ways itself (an
empty way is always filled before a victim is chosen), so policies only see
full sets in :meth:`choose_victim`.

Policies that use set-dueling (DIP, DRRIP) additionally observe misses in
their leader sets via :meth:`on_miss`.
"""

from __future__ import annotations


class ReplacementPolicy:
    """Base class for per-set replacement policies."""

    #: Registry name, overridden by subclasses (e.g. ``"lru"``).
    name = "base"

    def __init__(self, n_sets: int, assoc: int) -> None:
        self.n_sets = n_sets
        self.assoc = assoc

    def on_hit(self, set_idx: int, way: int) -> None:
        """A reference hit ``way`` of ``set_idx``."""
        raise NotImplementedError

    def on_fill(self, set_idx: int, way: int) -> None:
        """A new block was installed into ``way`` of ``set_idx``."""
        raise NotImplementedError

    def on_miss(self, set_idx: int) -> None:
        """A reference missed in ``set_idx`` (before any fill).

        Only set-dueling policies care; the default is a no-op.
        """

    def choose_victim(self, set_idx: int) -> int:
        """Return the way to evict from a *full* set."""
        raise NotImplementedError

    def on_invalidate(self, set_idx: int, way: int) -> None:
        """``way`` was invalidated (coherence); forget its metadata.

        The default is a no-op because most policies tolerate stale
        metadata on invalid ways — the cache fills empty ways first.
        """


_REGISTRY: dict[str, type[ReplacementPolicy]] = {}


def register_policy(cls: type[ReplacementPolicy]) -> type[ReplacementPolicy]:
    """Class decorator adding ``cls`` to the policy registry by name."""
    _REGISTRY[cls.name] = cls
    return cls


def make_policy(name: str, n_sets: int, assoc: int) -> ReplacementPolicy:
    """Instantiate a registered policy by name.

    Raises:
        KeyError: if ``name`` is not a registered policy.
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown replacement policy {name!r}; known: {known}")
    return cls(n_sets, assoc)


def policy_names() -> list[str]:
    """All registered policy names, sorted (the Figure 2 x-axis)."""
    return sorted(_REGISTRY)
