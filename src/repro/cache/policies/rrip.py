"""Re-Reference Interval Prediction policies (SRRIP, BRRIP, DRRIP).

Jaleel et al. (ISCA'10) attach a 2-bit re-reference prediction value
(RRPV) to every line. RRPV 0 means "re-referenced soon", RRPV 3 means
"re-referenced in the distant future"; the victim is any line with RRPV 3
(ageing all lines until one qualifies).

* **SRRIP** fills with RRPV 2 ("long" interval) and promotes to 0 on hit.
* **BRRIP** fills with RRPV 3 most of the time and RRPV 2 once every 32
  fills — the thrash-resistant bimodal variant the paper observes DRRIP
  choosing for OLTP (Section 2.1.2).
* **DRRIP** set-duels SRRIP against BRRIP exactly like DIP duels LRU/BIP.

As with BIP, the bimodal choice uses a deterministic 1-in-32 counter for
reproducibility.
"""

from __future__ import annotations

from repro.cache.policies.base import ReplacementPolicy, register_policy
from repro.cache.policies.lru import BIMODAL_EPSILON, PSEL_INIT, PSEL_MAX

#: 2-bit RRPV: values 0 (near) .. 3 (distant).
RRPV_MAX = 3
RRPV_LONG = 2
RRPV_DISTANT = 3


@register_policy
class SrripPolicy(ReplacementPolicy):
    """Static RRIP with hit-priority promotion."""

    name = "srrip"

    def __init__(self, n_sets: int, assoc: int) -> None:
        super().__init__(n_sets, assoc)
        self._rrpv: list[list[int]] = [
            [RRPV_MAX] * assoc for _ in range(n_sets)
        ]

    def on_hit(self, set_idx: int, way: int) -> None:
        self._rrpv[set_idx][way] = 0

    def _fill_rrpv(self, set_idx: int) -> int:
        """RRPV assigned to a fresh fill (subclasses override)."""
        return RRPV_LONG

    def on_fill(self, set_idx: int, way: int) -> None:
        self._rrpv[set_idx][way] = self._fill_rrpv(set_idx)

    def choose_victim(self, set_idx: int) -> int:
        rrpv = self._rrpv[set_idx]
        while True:
            for way, value in enumerate(rrpv):
                if value >= RRPV_MAX:
                    return way
            for way in range(self.assoc):
                rrpv[way] += 1

    def on_invalidate(self, set_idx: int, way: int) -> None:
        self._rrpv[set_idx][way] = RRPV_MAX


@register_policy
class BrripPolicy(SrripPolicy):
    """Bimodal RRIP: distant fills with an occasional long fill."""

    name = "brrip"

    def __init__(self, n_sets: int, assoc: int) -> None:
        super().__init__(n_sets, assoc)
        self._fill_count = 0

    def _fill_rrpv(self, set_idx: int) -> int:
        self._fill_count += 1
        if self._fill_count % BIMODAL_EPSILON == 0:
            return RRPV_LONG
        return RRPV_DISTANT


@register_policy
class DrripPolicy(SrripPolicy):
    """Dynamic RRIP: set-duels SRRIP against BRRIP via PSEL."""

    name = "drrip"

    def __init__(self, n_sets: int, assoc: int) -> None:
        super().__init__(n_sets, assoc)
        self._psel = PSEL_INIT
        self._fill_count = 0
        interval = 32 if n_sets >= 32 else max(2, n_sets)
        self._leader_srrip = {i for i in range(n_sets) if i % interval == 0}
        self._leader_brrip = {
            i for i in range(n_sets) if i % interval == interval // 2
        }

    def on_miss(self, set_idx: int) -> None:
        if set_idx in self._leader_srrip:
            self._psel = min(PSEL_MAX, self._psel + 1)
        elif set_idx in self._leader_brrip:
            self._psel = max(0, self._psel - 1)

    def chose_brrip_fraction(self) -> float:
        """Diagnostic: 1.0 when the duel currently favours BRRIP.

        The paper notes DRRIP picks BRRIP most of the time for OLTP; tests
        assert this through the same PSEL the fills consult.
        """
        return 1.0 if self._psel >= PSEL_INIT else 0.0

    def _use_brrip(self, set_idx: int) -> bool:
        if set_idx in self._leader_srrip:
            return False
        if set_idx in self._leader_brrip:
            return True
        return self._psel >= PSEL_INIT

    def _fill_rrpv(self, set_idx: int) -> int:
        if not self._use_brrip(set_idx):
            return RRPV_LONG
        self._fill_count += 1
        if self._fill_count % BIMODAL_EPSILON == 0:
            return RRPV_LONG
        return RRPV_DISTANT
