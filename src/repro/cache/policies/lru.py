"""LRU and the LRU-insertion-point family (LIP, BIP, DIP).

All four policies share one mechanism: a per-set recency order whose
least-recent end is the eviction candidate. They differ only in where a
newly filled block is inserted:

* **LRU** inserts at the MRU end (classic).
* **LIP** (LRU Insertion Policy) inserts at the LRU end, so a block must
  earn a hit before it is retained (Qureshi et al., ISCA'07).
* **BIP** (Bimodal) inserts at MRU with low probability (1/32) and at LRU
  otherwise, letting a trickle of the working set stick.
* **DIP** (Dynamic) set-duels LRU against BIP with a saturating PSEL
  counter and applies the winner in follower sets.

The bimodal "probability" is implemented as a deterministic 1-in-32
counter so simulations are exactly reproducible.

Implementation note — age counters, not lists. The recency order is kept
as one monotonic age per way: an MRU-end touch assigns the set's
next-higher age, an LRU-end insertion the next-lower one, and the victim
is the minimum-age way. Ages assigned this way are strictly ordered
exactly like positions in an explicit recency list (every assignment goes
strictly above or strictly below all live ages, and removals never
reorder survivors), so hit/fill/victim behaviour is bit-identical to the
list form — without its O(assoc) ``list.remove`` on every single hit,
which dominated the replay profile. Invalidated ways keep a stale age:
harmless, because the cache fills empty ways before consulting
:meth:`choose_victim` and every fill assigns a fresh age.
"""

from __future__ import annotations

from repro.cache.policies.base import ReplacementPolicy, register_policy

#: 1-in-N chance of an MRU insertion for bimodal policies.
BIMODAL_EPSILON = 32

#: PSEL is a 10-bit saturating counter as in the DIP paper.
PSEL_MAX = 1023
PSEL_INIT = 512


@register_policy
class LruPolicy(ReplacementPolicy):
    """Classic least-recently-used replacement."""

    name = "lru"

    def __init__(self, n_sets: int, assoc: int) -> None:
        super().__init__(n_sets, assoc)
        self._age: list[list[int]] = [[0] * assoc for _ in range(n_sets)]
        #: Per-set high-water age (MRU-end assignments count up from 0).
        self._hi = [0] * n_sets
        #: Per-set low-water age (LRU-end assignments count down from 0).
        self._lo = [0] * n_sets

    def on_hit(self, set_idx: int, way: int) -> None:
        hi = self._hi[set_idx] + 1
        self._hi[set_idx] = hi
        self._age[set_idx][way] = hi

    def on_fill(self, set_idx: int, way: int) -> None:
        self._insert(set_idx, way)

    def _insert(self, set_idx: int, way: int) -> None:
        """Insert a fresh block at the MRU end (subclasses override)."""
        hi = self._hi[set_idx] + 1
        self._hi[set_idx] = hi
        self._age[set_idx][way] = hi

    def _insert_lru(self, set_idx: int, way: int) -> None:
        """Insert a fresh block at the LRU end (next eviction candidate)."""
        lo = self._lo[set_idx] - 1
        self._lo[set_idx] = lo
        self._age[set_idx][way] = lo

    def choose_victim(self, set_idx: int) -> int:
        ages = self._age[set_idx]
        return ages.index(min(ages))

    def recency_order(self, set_idx: int) -> list[int]:
        """Ways of one set ordered LRU-first (tests and diagnostics)."""
        ages = self._age[set_idx]
        return sorted(range(self.assoc), key=ages.__getitem__)


@register_policy
class LipPolicy(LruPolicy):
    """LRU Insertion Policy: fills land at the LRU position."""

    name = "lip"

    def _insert(self, set_idx: int, way: int) -> None:
        self._insert_lru(set_idx, way)


@register_policy
class BipPolicy(LruPolicy):
    """Bimodal Insertion Policy: MRU fill once every 32 fills."""

    name = "bip"

    def __init__(self, n_sets: int, assoc: int) -> None:
        super().__init__(n_sets, assoc)
        self._fill_count = 0

    def _insert(self, set_idx: int, way: int) -> None:
        self._fill_count += 1
        if self._fill_count % BIMODAL_EPSILON == 0:
            super()._insert(set_idx, way)
        else:
            self._insert_lru(set_idx, way)


@register_policy
class DipPolicy(LruPolicy):
    """Dynamic Insertion Policy: set-duels LRU vs BIP.

    Sets with index ``i % 32 == 0`` always behave as LRU leaders, sets with
    ``i % 32 == 16`` as BIP leaders; the rest follow the policy currently
    winning the duel. A miss in an LRU leader nudges PSEL towards BIP and
    vice versa.
    """

    name = "dip"

    def __init__(self, n_sets: int, assoc: int) -> None:
        super().__init__(n_sets, assoc)
        self._psel = PSEL_INIT
        self._fill_count = 0
        interval = 32 if n_sets >= 32 else max(2, n_sets)
        self._leader_lru = {i for i in range(n_sets) if i % interval == 0}
        self._leader_bip = {
            i for i in range(n_sets) if i % interval == interval // 2
        }

    def on_miss(self, set_idx: int) -> None:
        if set_idx in self._leader_lru:
            self._psel = min(PSEL_MAX, self._psel + 1)
        elif set_idx in self._leader_bip:
            self._psel = max(0, self._psel - 1)

    def _use_bip(self, set_idx: int) -> bool:
        if set_idx in self._leader_lru:
            return False
        if set_idx in self._leader_bip:
            return True
        return self._psel >= PSEL_INIT

    def _insert(self, set_idx: int, way: int) -> None:
        if not self._use_bip(set_idx):
            super()._insert(set_idx, way)
            return
        self._fill_count += 1
        if self._fill_count % BIMODAL_EPSILON == 0:
            super()._insert(set_idx, way)
        else:
            self._insert_lru(set_idx, way)
