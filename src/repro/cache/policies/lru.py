"""LRU and the LRU-insertion-point family (LIP, BIP, DIP).

All four policies share one mechanism: a per-set recency list whose head is
the eviction candidate. They differ only in where a newly filled block is
inserted:

* **LRU** inserts at the MRU end (classic).
* **LIP** (LRU Insertion Policy) inserts at the LRU end, so a block must
  earn a hit before it is retained (Qureshi et al., ISCA'07).
* **BIP** (Bimodal) inserts at MRU with low probability (1/32) and at LRU
  otherwise, letting a trickle of the working set stick.
* **DIP** (Dynamic) set-duels LRU against BIP with a saturating PSEL
  counter and applies the winner in follower sets.

The bimodal "probability" is implemented as a deterministic 1-in-32
counter so simulations are exactly reproducible.
"""

from __future__ import annotations

from repro.cache.policies.base import ReplacementPolicy, register_policy

#: 1-in-N chance of an MRU insertion for bimodal policies.
BIMODAL_EPSILON = 32

#: PSEL is a 10-bit saturating counter as in the DIP paper.
PSEL_MAX = 1023
PSEL_INIT = 512


@register_policy
class LruPolicy(ReplacementPolicy):
    """Classic least-recently-used replacement."""

    name = "lru"

    def __init__(self, n_sets: int, assoc: int) -> None:
        super().__init__(n_sets, assoc)
        self._order: list[list[int]] = [[] for _ in range(n_sets)]

    def on_hit(self, set_idx: int, way: int) -> None:
        order = self._order[set_idx]
        order.remove(way)
        order.append(way)

    def on_fill(self, set_idx: int, way: int) -> None:
        order = self._order[set_idx]
        if way in order:
            order.remove(way)
        self._insert(set_idx, way)

    def _insert(self, set_idx: int, way: int) -> None:
        """Insert a fresh block at the MRU end (subclasses override)."""
        self._order[set_idx].append(way)

    def choose_victim(self, set_idx: int) -> int:
        return self._order[set_idx][0]

    def on_invalidate(self, set_idx: int, way: int) -> None:
        order = self._order[set_idx]
        if way in order:
            order.remove(way)


@register_policy
class LipPolicy(LruPolicy):
    """LRU Insertion Policy: fills land at the LRU position."""

    name = "lip"

    def _insert(self, set_idx: int, way: int) -> None:
        self._order[set_idx].insert(0, way)


@register_policy
class BipPolicy(LruPolicy):
    """Bimodal Insertion Policy: MRU fill once every 32 fills."""

    name = "bip"

    def __init__(self, n_sets: int, assoc: int) -> None:
        super().__init__(n_sets, assoc)
        self._fill_count = 0

    def _insert(self, set_idx: int, way: int) -> None:
        self._fill_count += 1
        if self._fill_count % BIMODAL_EPSILON == 0:
            self._order[set_idx].append(way)
        else:
            self._order[set_idx].insert(0, way)


@register_policy
class DipPolicy(LruPolicy):
    """Dynamic Insertion Policy: set-duels LRU vs BIP.

    Sets with index ``i % 32 == 0`` always behave as LRU leaders, sets with
    ``i % 32 == 16`` as BIP leaders; the rest follow the policy currently
    winning the duel. A miss in an LRU leader nudges PSEL towards BIP and
    vice versa.
    """

    name = "dip"

    def __init__(self, n_sets: int, assoc: int) -> None:
        super().__init__(n_sets, assoc)
        self._psel = PSEL_INIT
        self._fill_count = 0
        interval = 32 if n_sets >= 32 else max(2, n_sets)
        self._leader_lru = {i for i in range(n_sets) if i % interval == 0}
        self._leader_bip = {
            i for i in range(n_sets) if i % interval == interval // 2
        }

    def on_miss(self, set_idx: int) -> None:
        if set_idx in self._leader_lru:
            self._psel = min(PSEL_MAX, self._psel + 1)
        elif set_idx in self._leader_bip:
            self._psel = max(0, self._psel - 1)

    def _use_bip(self, set_idx: int) -> bool:
        if set_idx in self._leader_lru:
            return False
        if set_idx in self._leader_bip:
            return True
        return self._psel >= PSEL_INIT

    def _insert(self, set_idx: int, way: int) -> None:
        order = self._order[set_idx]
        if not self._use_bip(set_idx):
            order.append(way)
            return
        self._fill_count += 1
        if self._fill_count % BIMODAL_EPSILON == 0:
            order.append(way)
        else:
            order.insert(0, way)
