"""Set-associative cache model.

Addresses are **block ids** (byte address >> 6); the caller strips the
block offset once when generating traces, which keeps the hot loop free of
shifts. The set index is the low bits of the block id and the stored key
is the full block id, so aliasing is impossible regardless of tag width.

The model is purely functional w.r.t. contents — there is no notion of
dirtiness or writeback traffic because the paper's experiments only count
misses, evictions and invalidations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.cache.policies import make_policy
from repro.cache.policies.base import ReplacementPolicy
from repro.cache.stats import CacheStats
from repro.params import CacheParams


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one cache reference.

    Only the convenience :meth:`SetAssociativeCache.access` wrapper
    allocates these; the replay hot path uses the allocation-free
    :meth:`SetAssociativeCache.access_fast` instead.

    Attributes:
        hit: whether the reference hit.
        victim: block id evicted to make room, or ``None`` when the fill
            landed in an empty way (or the reference hit).
    """

    hit: bool
    victim: Optional[int] = None


#: Signature of an eviction observer: ``callback(evicted_block_id)``.
EvictionCallback = Callable[[int], None]


class SetAssociativeCache:
    """A single set-associative cache with a pluggable replacement policy.

    Args:
        params: geometry/latency/policy bundle.
        name: label used in reports (e.g. ``"core3.l1i"``).
        on_evict: optional observer invoked with every evicted block id —
            the SLICC bloom signature and the coherence directory hook in
            here.
    """

    def __init__(
        self,
        params: CacheParams,
        name: str = "cache",
        on_evict: Optional[EvictionCallback] = None,
    ) -> None:
        self.params = params
        self.name = name
        self.n_sets = params.n_sets
        self.assoc = params.assoc
        self._set_mask = self.n_sets - 1
        self._tags: list[list[Optional[int]]] = [
            [None] * self.assoc for _ in range(self.n_sets)
        ]
        self._index: list[dict[int, int]] = [{} for _ in range(self.n_sets)]
        self.policy = make_policy(params.policy, self.n_sets, self.assoc)
        self._policy_tracks_invalidate = (
            type(self.policy).on_invalidate
            is not ReplacementPolicy.on_invalidate
        )
        self.stats = CacheStats()
        self.on_evict = on_evict
        #: Block evicted by the most recent missing :meth:`access_fast`
        #: (``None`` when the fill landed in an empty way or was
        #: bypassed). Only meaningful immediately after a miss — the rare
        #: consumers that care read it there; the common path never
        #: touches it.
        self.last_victim: Optional[int] = None

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------

    def access_fast(self, block: int, fill: bool = True) -> bool:
        """Reference ``block``; fill it on a miss unless ``fill`` is False.

        Returns True on a hit. This is the allocation-free hot path: the
        evicted block (needed by almost nobody — evictions are delivered
        through ``on_evict``) is parked in :attr:`last_victim` instead of
        a per-access result object.

        ``fill=False`` is the bypass path: the reference is counted and
        served (from L2/memory, as far as timing is concerned) but does
        not displace resident blocks. SLICC uses it while a cache is
        "full" of a useful segment so that threads passing through on
        their way to another core cannot erode the assembled collective.
        """
        set_idx = block & self._set_mask
        self.stats.accesses += 1
        way = self._index[set_idx].get(block)
        if way is not None:
            self.policy.on_hit(set_idx, way)
            return True
        self.stats.misses += 1
        self.policy.on_miss(set_idx)
        if fill:
            self.last_victim = self._fill(set_idx, block)
        else:
            self.last_victim = None
        return False

    def access(self, block: int, fill: bool = True) -> AccessResult:
        """Allocating wrapper around :meth:`access_fast` (API compat)."""
        if self.access_fast(block, fill=fill):
            return AccessResult(hit=True)
        return AccessResult(hit=False, victim=self.last_victim)

    def _fill(self, set_idx: int, block: int) -> Optional[int]:
        """Install ``block`` into ``set_idx``; return the evicted block."""
        tags = self._tags[set_idx]
        index = self._index[set_idx]
        victim_block: Optional[int] = None
        if len(index) < self.assoc:
            way = tags.index(None)
        else:
            way = self.policy.choose_victim(set_idx)
            victim_block = tags[way]
            assert victim_block is not None
            del index[victim_block]
            self.stats.evictions += 1
            if self.on_evict is not None:
                self.on_evict(victim_block)
        tags[way] = block
        index[block] = way
        self.policy.on_fill(set_idx, way)
        return victim_block

    # ------------------------------------------------------------------
    # Side-channel operations (prefetch, coherence, search)
    # ------------------------------------------------------------------

    def probe(self, block: int) -> bool:
        """Non-modifying residency test (used by remote segment search)."""
        return block in self._index[block & self._set_mask]

    def install(self, block: int) -> Optional[int]:
        """Fill ``block`` without counting a demand access (prefetch path).

        Returns the victim block, if any. Installing a resident block is a
        no-op returning ``None``.
        """
        set_idx = block & self._set_mask
        if block in self._index[set_idx]:
            return None
        self.stats.prefetch_fills += 1
        return self._fill(set_idx, block)

    def invalidate(self, block: int) -> bool:
        """Remove ``block`` if resident (coherence). Returns True if removed."""
        set_idx = block & self._set_mask
        index = self._index[set_idx]
        way = index.pop(block, None)
        if way is None:
            return False
        self._tags[set_idx][way] = None
        if self._policy_tracks_invalidate:
            self.policy.on_invalidate(set_idx, way)
        self.stats.invalidations += 1
        if self.on_evict is not None:
            self.on_evict(block)
        return True

    # ------------------------------------------------------------------
    # Batch-kernel entry points
    # ------------------------------------------------------------------

    def batch_export(self, width: Optional[int] = None):
        """Export contents as ``(tags_matrix, occupancy)`` for the batch
        replay kernel (:mod:`repro.sim.batch`).

        ``tags_matrix`` is an ``(n_sets, width)`` int64 numpy array with
        ``-1`` marking empty ways *and* the padding columns beyond
        :attr:`assoc` when ``width > assoc`` (the kernel pads both L1s of
        a core to a common way count so their rows stack into one
        matrix). ``occupancy`` is a per-set list of resident-line counts.
        The export is a snapshot — mutating it does not touch the cache.
        """
        import numpy as np

        width = self.assoc if width is None else width
        if width < self.assoc:
            raise ValueError("width must be >= assoc")
        tags = np.full((self.n_sets, width), -1, dtype=np.int64)
        for set_idx, row in enumerate(self._tags):
            for way, tag in enumerate(row):
                if tag is not None:
                    tags[set_idx, way] = tag
        occupancy = [len(index) for index in self._index]
        return tags, occupancy

    def probe_batch(self, blocks) -> "list[bool]":
        """Vectorised residency probe: one bool per block id.

        Purely observational (no LRU update, no stats) — the batched
        counterpart of :meth:`probe`, used to cross-check the batch
        kernel's tag mirror against the authoritative python state.
        """
        return [block in self._index[block & self._set_mask] for block in blocks]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def resident_blocks(self) -> Iterator[int]:
        """Iterate over every resident block id (order unspecified)."""
        for index in self._index:
            yield from index

    def set_of(self, block: int) -> int:
        """Set index a block maps to (exposed for the bloom signature)."""
        return block & self._set_mask

    def blocks_in_set(self, set_idx: int) -> list[int]:
        """Resident block ids of one set (bloom eviction rescan)."""
        return list(self._index[set_idx])

    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(index) for index in self._index)

    def flush(self) -> None:
        """Empty the cache (does not reset stats)."""
        for set_idx in range(self.n_sets):
            for block in list(self._index[set_idx]):
                way = self._index[set_idx].pop(block)
                self._tags[set_idx][way] = None
                self.policy.on_invalidate(set_idx, way)

    def __contains__(self, block: int) -> bool:
        return self.probe(block)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetAssociativeCache(name={self.name!r}, "
            f"{self.params.size_bytes // 1024}KB, {self.assoc}-way, "
            f"policy={self.params.policy})"
        )
