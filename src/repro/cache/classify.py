"""Three-C miss classification (Hill & Smith, IEEE ToC 1989).

Figure 1 of the paper breaks L1 misses into *compulsory*, *capacity* and
*conflict*. The classic definitions:

* **compulsory** — first reference ever to the block;
* **capacity** — would also miss in a fully-associative LRU cache of the
  same capacity;
* **conflict** — hits in the fully-associative shadow but missed in the
  real set-associative cache (i.e. caused purely by limited associativity).

``MissClassifier`` runs the fully-associative shadow alongside the real
cache. It must observe *every* access (hits too) so the shadow's recency
state stays faithful.
"""

from __future__ import annotations

from collections import OrderedDict
from enum import Enum


class MissClass(Enum):
    """Category of one cache miss."""

    COMPULSORY = "compulsory"
    CAPACITY = "capacity"
    CONFLICT = "conflict"


class MissClassifier:
    """Classifies misses of a cache with ``capacity_blocks`` lines.

    Usage: call :meth:`observe` for every access with the real cache's
    hit/miss outcome; it returns the miss class (or ``None`` on a hit) and
    keeps its own counters.

    The hot state is the ``_shadow`` OrderedDict (fully-associative LRU)
    and the ``_seen`` set; the replay engine's inline fast path updates
    both directly and batches ``accesses``/``counts`` per quantum, with
    :meth:`observe` kept as the reference implementation for the
    engine's generic fallback path and for unit tests.
    """

    __slots__ = ("capacity_blocks", "_seen", "_shadow", "counts", "accesses")

    def __init__(self, capacity_blocks: int) -> None:
        if capacity_blocks <= 0:
            raise ValueError("capacity_blocks must be positive")
        self.capacity_blocks = capacity_blocks
        self._seen: set[int] = set()
        self._shadow: OrderedDict[int, None] = OrderedDict()
        self.counts: dict[MissClass, int] = {c: 0 for c in MissClass}
        self.accesses = 0

    def observe(self, block: int, hit: bool) -> MissClass | None:
        """Record one access; return the miss class (``None`` if a hit)."""
        self.accesses += 1
        shadow_hit = block in self._shadow
        if shadow_hit:
            self._shadow.move_to_end(block)
        else:
            self._shadow[block] = None
            if len(self._shadow) > self.capacity_blocks:
                self._shadow.popitem(last=False)
        if hit:
            return None
        if block not in self._seen:
            self._seen.add(block)
            miss_class = MissClass.COMPULSORY
        elif shadow_hit:
            miss_class = MissClass.CONFLICT
        else:
            miss_class = MissClass.CAPACITY
        self.counts[miss_class] += 1
        return miss_class

    def mpki(self, miss_class: MissClass, instructions: int) -> float:
        """Misses-per-kilo-instruction for one class."""
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.counts[miss_class] / instructions

    @property
    def total_misses(self) -> int:
        """Sum over all three classes."""
        return sum(self.counts.values())
