"""Shared NUCA L2 model (Table 2: 1MB per core, 16 banks, 16-cycle hit).

The engine's default L2 model is "effectively infinite" — correct for
every experiment in the paper because the measured footprints never
approach 16MB (DESIGN.md §3). ``NucaL2`` is the optional higher-fidelity
substrate: a banked shared cache where a request from core *c* to bank
*b* pays the base hit latency plus the torus round-trip, so L1 misses to
distant banks cost more — the non-uniformity that gives NUCA its name.

Bank interleaving is by block id (low bits), the standard address-
interleaved organisation that spreads consecutive lines across banks.
"""

from __future__ import annotations

from repro.cache.cache import SetAssociativeCache
from repro.cache.policies.lru import LruPolicy
from repro.cache.stats import CacheStats
from repro.errors import ConfigurationError
from repro.interconnect.torus import Torus2D
from repro.params import CacheParams


class NucaL2:
    """Banked, address-interleaved shared L2 with distance-aware latency."""

    def __init__(
        self,
        torus: Torus2D,
        mb_per_core: int = 1,
        n_banks: int = 16,
        assoc: int = 16,
        hit_latency: int = 16,
    ) -> None:
        if n_banks != torus.n_nodes:
            raise ConfigurationError(
                f"one bank per node expected: {n_banks} banks vs "
                f"{torus.n_nodes} nodes"
            )
        total_bytes = mb_per_core * 1024 * 1024 * torus.n_nodes
        bank_bytes = total_bytes // n_banks
        params = CacheParams(
            size_bytes=bank_bytes,
            assoc=assoc,
            hit_latency=hit_latency,
            policy="lru",
        )
        self.torus = torus
        self.n_banks = n_banks
        self.hit_latency = hit_latency
        self._banks = [
            SetAssociativeCache(params, name=f"l2.bank{b}")
            for b in range(n_banks)
        ]

    def bank_of(self, block: int) -> int:
        """Home bank of a block (address-interleaved)."""
        return block % self.n_banks

    def access(self, core: int, block: int) -> tuple[bool, int]:
        """Look up ``block`` on behalf of ``core``.

        Returns ``(hit, latency_cycles)`` where the latency covers the
        bank access plus the torus round trip; on a miss the block is
        installed (the L2 is the last on-chip level, so an L1 miss always
        allocates here on its way in from memory).
        """
        bank = self.bank_of(block)
        # Shift block id so the bank-select bits do not alias set bits.
        local = block // self.n_banks
        hit = self._banks[bank].access_fast(local)
        round_trip = 2 * self.torus.latency(core, bank)
        return hit, self.hit_latency + round_trip

    def probe(self, block: int) -> bool:
        """Residency test without state change."""
        return self._banks[self.bank_of(block)].probe(block // self.n_banks)

    # ------------------------------------------------------------------
    # Flat hot interface (the replay engine's inline fast path)
    # ------------------------------------------------------------------

    def hot_banks(self) -> list[tuple]:
        """Per-bank flat state tuples for the engine's inline L2 lookup.

        One ``(index, tags, ages, hi, set_mask, assoc)`` tuple per bank:
        the bank cache's set index dicts, tag lists, LRU age lists and
        high-water list, plus geometry constants. Banks are always LRU
        (enforced here), so the engine can inline the age-counter update
        without a policy dispatch; bank access/miss/eviction statistics
        are batched by the engine and flushed into each bank's
        :class:`~repro.cache.stats.CacheStats` when the run ends.
        """
        banks = []
        for bank in self._banks:
            policy = bank.policy
            if type(policy) is not LruPolicy:  # pragma: no cover - guard
                raise ConfigurationError(
                    f"NUCA bank {bank.name} uses {type(policy).__name__}; "
                    "the inline fast path assumes plain LRU banks"
                )
            banks.append(
                (
                    bank._index,
                    bank._tags,
                    policy._age,
                    policy._hi,
                    bank._set_mask,
                    bank.assoc,
                )
            )
        return banks

    def latency_table(self, core: int) -> list[int]:
        """Per-bank access latency seen from ``core`` (hit latency plus
        the torus round trip) — precomputed for the engine's fast path.
        """
        return [
            self.hit_latency + 2 * self.torus.latency(core, bank)
            for bank in range(self.n_banks)
        ]

    def stats(self) -> CacheStats:
        """Aggregate stats across banks."""
        total = CacheStats()
        for bank in self._banks:
            total = total.merged(bank.stats)
        return total

    @property
    def capacity_blocks(self) -> int:
        """Total L2 lines."""
        return sum(b.params.n_blocks for b in self._banks)
