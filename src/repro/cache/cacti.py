"""CACTI-like access-latency model.

The paper uses CACTI 6.0 to attach realistic latencies to the cache sizes
swept in Figure 1 (larger caches are slower), and models PIF's upper bound
as a 512KB cache *with the latency of a 32KB one*. We substitute a simple
analytic fit anchored at the paper's 3-cycle 32KB L1: latency grows with
roughly the fourth root of capacity, which matches CACTI's published
trend for small SRAM arrays closely enough for the speedup-vs-size shape.
"""

from __future__ import annotations

#: Anchor: a 32KB L1 costs 3 cycles load-to-use (Table 2).
_ANCHOR_SIZE = 32 * 1024
_ANCHOR_LATENCY = 3.0

#: Growth exponent of latency with capacity.
_EXPONENT = 0.28


def latency_for_size(size_bytes: int) -> int:
    """Cycles of load-to-use latency for a cache of ``size_bytes``.

    Monotonically non-decreasing in size; at least 2 cycles; exactly 3 at
    the 32KB anchor.

    >>> latency_for_size(32 * 1024)
    3
    >>> latency_for_size(512 * 1024) > latency_for_size(32 * 1024)
    True
    """
    if size_bytes <= 0:
        raise ValueError("size_bytes must be positive")
    latency = _ANCHOR_LATENCY * (size_bytes / _ANCHOR_SIZE) ** _EXPONENT
    return max(2, round(latency))
