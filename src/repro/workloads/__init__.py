"""Workload substrate: specs, trace containers, generators, benchmarks.

The four benchmarks of Table 1 — plus the scenario extensions
(``webserve``, ``phased``) — are exposed through :func:`get_workload`:

>>> from repro.workloads import get_workload
>>> spec = get_workload("tpcc-1")
>>> spec.name
'tpcc-1'
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.params import ScalePreset
from repro.workloads.generator import generate_thread, generate_trace
from repro.workloads.mapreduce import make_mapreduce
from repro.workloads.phased import make_phased
from repro.workloads.spec import (
    DataSpec,
    MixPhase,
    PathStep,
    SegmentSpec,
    TransactionTypeSpec,
    WorkloadSpec,
    layout_segments,
)
from repro.workloads.tpcc import make_tpcc
from repro.workloads.tpce import make_tpce
from repro.workloads.webserve import make_webserve
from repro.workloads.trace import (
    KIND_INSTR,
    KIND_LOAD,
    KIND_STORE,
    Trace,
    ThreadTrace,
)

#: Default thread counts per scale preset (paper: 1K tasks; Section 5.1).
DEFAULT_THREADS = {
    ScalePreset.SMOKE: 8,
    ScalePreset.CI: 48,
    ScalePreset.PAPER: 256,
}

_FACTORIES = {
    "tpcc-1": lambda scale: make_tpcc(scale, warehouses=1),
    "tpcc-10": lambda scale: make_tpcc(scale, warehouses=10),
    "tpce": make_tpce,
    "mapreduce": make_mapreduce,
    "webserve": make_webserve,
    "phased": make_phased,
}


def workload_names() -> list[str]:
    """The four Table 1 workloads (paper order), then the extensions."""
    return ["tpcc-1", "tpcc-10", "tpce", "mapreduce", "webserve", "phased"]


def get_workload(
    name: str, scale: ScalePreset = ScalePreset.CI
) -> WorkloadSpec:
    """Build a named workload spec.

    Raises:
        ConfigurationError: for an unknown workload name.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {name!r}; known: {sorted(_FACTORIES)}"
        )
    return factory(scale)


def standard_trace(
    name: str,
    scale: ScalePreset = ScalePreset.CI,
    n_threads: int | None = None,
    seed: int = 1,
) -> Trace:
    """Generate the standard trace for a named workload at a scale."""
    spec = get_workload(name, scale)
    if n_threads is None:
        n_threads = DEFAULT_THREADS[scale]
    return generate_trace(spec, n_threads=n_threads, seed=seed)


__all__ = [
    "DEFAULT_THREADS",
    "DataSpec",
    "KIND_INSTR",
    "KIND_LOAD",
    "KIND_STORE",
    "MixPhase",
    "PathStep",
    "SegmentSpec",
    "Trace",
    "ThreadTrace",
    "TransactionTypeSpec",
    "WorkloadSpec",
    "generate_thread",
    "generate_trace",
    "get_workload",
    "layout_segments",
    "make_mapreduce",
    "make_phased",
    "make_tpcc",
    "make_tpce",
    "make_webserve",
    "standard_trace",
    "workload_names",
]
