"""Phase-shifting TPC-C variant (scenario extension beyond Table 1).

Real OLTP mixes are not stationary: order entry dominates business
hours, then reporting/fulfilment batches take over. This workload keeps
TPC-C-1's code segments, transaction types and data shape but switches
the transaction mix mid-trace (thread ids double as arrival order, so
the second half of the arrival sequence *is* the second half of the
run): an order-entry phase dominated by NewOrder/Payment, then a
reporting phase dominated by OrderStatus/Delivery/StockLevel.

The shift is the adversarial case for type-keyed scheduling — SLICC-SW
teams built around the phase-1 hot types must dissolve and re-form
around types that were nearly absent before — while the type-oblivious
variants only see a change in which segments are hot.
"""

from __future__ import annotations

from dataclasses import replace

from repro.params import ScalePreset
from repro.workloads.spec import MixPhase, WorkloadSpec
from repro.workloads.tpcc import make_tpcc

#: Per-type weights (NewOrder, Payment, OrderStatus, Delivery,
#: StockLevel) in each phase. Phase 1 is the standard entry-heavy TPC-C
#: mix; phase 2 inverts it toward the read/fulfilment types.
PHASE_SCHEDULE = (
    MixPhase(duration_frac=0.5, weights=(45.0, 43.0, 4.0, 4.0, 4.0)),
    MixPhase(duration_frac=0.5, weights=(4.0, 8.0, 32.0, 26.0, 30.0)),
)


def make_phased(scale: ScalePreset = ScalePreset.CI) -> WorkloadSpec:
    """Build the phase-shifting TPC-C workload spec."""
    base = make_tpcc(scale, warehouses=1)
    return replace(base, name="phased", mix_phases=PHASE_SCHEDULE)
