"""TPC-E workload model (Table 1: brokerage house, 1000 customers).

TPC-E differs from TPC-C in the ways the paper's results hinge on:

* **more transaction types** (ten, with the standard TPC-E mix) so the
  total code footprint (25 segments, ~700KB at CI scale) exceeds even a
  512KB L1-I — this is what lets SLICC beat the PIF upper bound by
  pipelining same-type threads while PIF's big private cache still
  thrashes (Section 5.6);
* **shorter per-type paths with more inner-loop reuse**, giving a lower
  baseline I-MPKI than TPC-C (Figure 10);
* **fewer stray threads** (3% vs 12%): every type has nonzero weight and
  the mix is flatter, so teams form more easily.
"""

from __future__ import annotations

from repro.params import ScalePreset
from repro.workloads.spec import (
    DataSpec,
    PathStep,
    TransactionTypeSpec,
    WorkloadSpec,
    layout_segments,
)

#: (name, mix weight %) — the TPC-E transaction mix.
_TYPES = (
    ("TradeOrder", 10.1),
    ("TradeResult", 10.0),
    ("TradeLookup", 8.0),
    ("TradeStatus", 19.0),
    ("TradeUpdate", 2.0),
    ("CustomerPosition", 13.0),
    ("BrokerVolume", 4.9),
    ("SecurityDetail", 14.0),
    ("MarketFeed", 1.0),
    ("MarketWatch", 18.0),
)

#: Shared storage-manager / middleware segments.
_N_SHARED = 5

_SEGMENT_BLOCKS = {
    ScalePreset.SMOKE: 56,
    ScalePreset.CI: 448,
    ScalePreset.PAPER: 448,
}


def make_tpce(scale: ScalePreset = ScalePreset.CI) -> WorkloadSpec:
    """Build the TPC-E workload spec."""
    seg_blocks = _SEGMENT_BLOCKS[scale]
    n_types = len(_TYPES)
    # Layout: segments 0.._N_SHARED-1 shared, then one private per type.
    # Total footprint (15 segments, ~420KB at CI scale) fits the chip's
    # aggregate L1-I capacity, so a SLICC collective can serve the whole
    # mix; a private 512KB PIF cache holds it too but *every core* must
    # fetch its own copy — the per-core redundancy Section 5.6 blames for
    # PIF trailing SLICC-SW on TPC-E.
    n_segments = _N_SHARED + n_types
    segments = layout_segments([seg_blocks] * n_segments)

    inner = 3
    txn_types = []
    for idx, (name, weight) in enumerate(_TYPES):
        private0 = _N_SHARED + idx
        # Each type leans on a different pair of shared segments so shared
        # code is common across types without every type touching all of it.
        shared_a = idx % _N_SHARED
        shared_b = (idx + 2) % _N_SHARED
        # Paths start with the type's private segment so the first
        # instructions are type-distinctive (needed by SLICC-Pp's scout).
        path = (
            PathStep(seg_id=private0, inner_iterations=inner),
            PathStep(seg_id=shared_a, inner_iterations=inner),
            PathStep(seg_id=shared_b, inner_iterations=inner),
            PathStep(seg_id=private0, probability=0.85, inner_iterations=inner),
            PathStep(seg_id=shared_a, inner_iterations=inner),
        )
        txn_types.append(
            TransactionTypeSpec(
                type_id=idx, name=name, weight=weight, path=path
            )
        )

    data = DataSpec(
        accesses_per_iblock=0.45,
        hot_private_blocks=6,
        shared_hot_blocks=128,
        hot_private_frac=0.40,
        shared_frac=0.20,
        store_frac=0.45,
        private_region_blocks=8192,
    )
    return WorkloadSpec(
        name="tpce",
        segments=tuple(segments),
        txn_types=tuple(txn_types),
        data=data,
    )
