"""TPC-C workload model (Table 1: wholesale supplier, 1 or 10 warehouses).

Structure calibrated to the paper's characterisation:

* five transaction types with the standard TPC-C mix (NewOrder 45%,
  Payment 43%, OrderStatus/Delivery/StockLevel ~4% each);
* six **shared** storage-manager segments giving the ~80% cross-type
  instruction overlap of Figure 3;
* per-type private segments so same-type threads overlap ~98%;
* per-type footprint of 8 distinct segments (~224KB) so a transaction
  spreads over many L1-I caches (Section 5.4 reports up to 14 cores);
  total footprint 16 segments (~448KB at CI scale) — just under the 512KB
  of the PIF upper-bound model, which is why PIF is near-perfect on TPC-C
  (Section 5.6) while a 32KB L1-I thrashes badly;
* TPC-C-10 shares the code footprint of TPC-C-1 but has a larger, less
  shared data footprint, which is exactly why the paper sees a smaller
  D-MPKI penalty when migrating on the bigger database.
"""

from __future__ import annotations

from repro.params import ScalePreset
from repro.workloads.spec import (
    DataSpec,
    PathStep,
    TransactionTypeSpec,
    WorkloadSpec,
    layout_segments,
)

#: Segment name -> index. S* are shared storage-manager code; letters are
#: per-type transaction logic. Six shared segments model the dominant
#: storage-manager footprint (B-tree, locks, log, buffer pool, catalog,
#: xct management) responsible for the ~80% cross-type overlap of
#: Figure 3; two private segments per type give same-type threads their
#: ~98% overlap while keeping types distinguishable.
_SEGMENTS = {
    "S0_btree": 0,
    "S1_lock": 1,
    "S2_log": 2,
    "S3_buffer": 3,
    "S4_catalog": 4,
    "S5_xct": 5,
    "A0_neworder": 6,
    "A1_neworder": 7,
    "B0_payment": 8,
    "B1_payment": 9,
    "C0_orderstatus": 10,
    "C1_orderstatus": 11,
    "D0_delivery": 12,
    "D1_delivery": 13,
    "E0_stocklevel": 14,
    "E1_stocklevel": 15,
}

#: Blocks per segment at each scale (448 blocks = 28KB: fits one 32KB L1-I,
#: two segments do not fit together — Section 3.1).
_SEGMENT_BLOCKS = {
    ScalePreset.SMOKE: 56,
    ScalePreset.CI: 448,
    ScalePreset.PAPER: 448,
}


def _path(steps: list[tuple[str, float, int]]) -> tuple[PathStep, ...]:
    return tuple(
        PathStep(seg_id=_SEGMENTS[name], probability=prob, inner_iterations=inner)
        for name, prob, inner in steps
    )


def make_tpcc(
    scale: ScalePreset = ScalePreset.CI, warehouses: int = 1
) -> WorkloadSpec:
    """Build the TPC-C workload spec.

    Args:
        scale: workload scale preset.
        warehouses: 1 (TPC-C-1, 84MB) or 10 (TPC-C-10, 1GB). The code
            footprint is identical; the data stream differs as described
            in the module docstring.
    """
    seg_blocks = _SEGMENT_BLOCKS[scale]
    segments = layout_segments([seg_blocks] * len(_SEGMENTS))

    inner = 2
    txn_types = (
        TransactionTypeSpec(
            type_id=0,
            name="NewOrder",
            weight=45.0,
            # Paths begin with the type's private entry segment: the first
            # instructions of a transaction are type-distinctive, which is
            # the property SLICC-Pp's scout core relies on (Section 4.3.1).
            # Revisits (A0...A0, S0...S0) give the A-B-C-A intra-thread
            # reuse of Figure 4.
            path=_path(
                [
                    ("A0_neworder", 1.0, inner),
                    ("S0_btree", 1.0, inner),
                    ("S1_lock", 1.0, inner),
                    ("A1_neworder", 1.0, inner),
                    ("S4_catalog", 1.0, inner),
                    ("S0_btree", 1.0, inner),
                    ("A1_neworder", 0.7, inner),
                    ("S2_log", 1.0, inner),
                    ("S5_xct", 1.0, inner),
                    ("A0_neworder", 1.0, inner),
                    ("S2_log", 0.5, inner),
                    ("S0_btree", 1.0, inner),
                ]
            ),
        ),
        TransactionTypeSpec(
            type_id=1,
            name="Payment",
            weight=43.0,
            path=_path(
                [
                    ("B0_payment", 1.0, inner),
                    ("S0_btree", 1.0, inner),
                    ("S1_lock", 1.0, inner),
                    ("B1_payment", 1.0, inner),
                    ("S3_buffer", 1.0, inner),
                    ("S0_btree", 1.0, inner),
                    ("B0_payment", 0.6, inner),
                    ("S2_log", 1.0, inner),
                    ("S5_xct", 1.0, inner),
                    ("B1_payment", 0.5, inner),
                    ("S0_btree", 1.0, inner),
                ]
            ),
        ),
        TransactionTypeSpec(
            type_id=2,
            name="OrderStatus",
            weight=4.0,
            path=_path(
                [
                    ("C0_orderstatus", 1.0, inner),
                    ("S0_btree", 1.0, inner),
                    ("S3_buffer", 1.0, inner),
                    ("C1_orderstatus", 1.0, inner),
                    ("S4_catalog", 1.0, inner),
                    ("C0_orderstatus", 1.0, inner),
                    ("S0_btree", 1.0, inner),
                ]
            ),
        ),
        TransactionTypeSpec(
            type_id=3,
            name="Delivery",
            weight=4.0,
            path=_path(
                [
                    ("D0_delivery", 1.0, inner),
                    ("S0_btree", 1.0, inner),
                    ("S1_lock", 1.0, inner),
                    ("D1_delivery", 1.0, inner),
                    ("S2_log", 1.0, inner),
                    ("S5_xct", 1.0, inner),
                    ("D0_delivery", 1.0, inner),
                    ("S0_btree", 1.0, inner),
                ]
            ),
        ),
        TransactionTypeSpec(
            type_id=4,
            name="StockLevel",
            weight=4.0,
            path=_path(
                [
                    ("E0_stocklevel", 1.0, inner),
                    ("S0_btree", 1.0, inner),
                    ("S3_buffer", 1.0, inner),
                    ("E1_stocklevel", 1.0, inner),
                    ("S4_catalog", 1.0, inner),
                    ("E0_stocklevel", 1.0, inner),
                    ("S0_btree", 1.0, inner),
                ]
            ),
        ),
    )

    if warehouses == 1:
        data = DataSpec(
            accesses_per_iblock=0.45,
            hot_private_blocks=6,
            shared_hot_blocks=96,
            hot_private_frac=0.40,
            shared_frac=0.25,
            store_frac=0.45,
            private_region_blocks=4096,
        )
        name = "tpcc-1"
    else:
        # TPC-C-10: bigger database, less inter-thread data sharing and
        # less per-thread locality (Section 5.5).
        data = DataSpec(
            accesses_per_iblock=0.45,
            hot_private_blocks=4,
            shared_hot_blocks=512,
            hot_private_frac=0.25,
            shared_frac=0.08,
            store_frac=0.45,
            private_region_blocks=16384,
        )
        name = "tpcc-10"

    return WorkloadSpec(name=name, segments=tuple(segments), txn_types=txn_types, data=data)
