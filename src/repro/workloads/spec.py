"""Workload specifications: transaction types as code-segment graphs.

Section 2 of the paper characterises OLTP instruction streams as:

* per-transaction footprints several times the 32KB L1-I, structured as a
  path over **code segments** each roughly L1-I sized (Figure 4's A-B-C-A);
* ~98% of instruction blocks shared among threads of the same transaction
  type, ~80% across all threads (Figure 3, Chakraborty et al.);
* recurring intra-transaction patterns (segments revisited) with inner
  loops inside each segment;
* data footprints that are large and compulsory-miss dominated, with 45%
  of data accesses being stores (Section 5.5).

A :class:`WorkloadSpec` encodes exactly these structural knobs, and the
generator turns a spec plus a seed into deterministic per-thread traces.
Segments carry explicit block ranges so the same segment referenced from
two types shares the same cache blocks (that *is* the inter-type overlap).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Data block ids live far above instruction block ids so the two address
#: spaces can never collide even though they index different caches.
DATA_BLOCK_BASE = 1 << 32


@dataclass(frozen=True)
class SegmentSpec:
    """One contiguous code segment.

    Attributes:
        seg_id: index into ``WorkloadSpec.segments``.
        base_block: first instruction block id of the segment.
        n_blocks: segment length in 64B blocks (~448 blocks = 28KB, i.e.
            "fits in the L1-I but two segments do not fit together").
    """

    seg_id: int
    base_block: int
    n_blocks: int

    def __post_init__(self) -> None:
        if self.n_blocks <= 0:
            raise ConfigurationError("segment n_blocks must be positive")


@dataclass(frozen=True)
class PathStep:
    """One visit to a segment within a transaction's control flow.

    Attributes:
        seg_id: segment visited.
        probability: chance the visit is taken by a given transaction
            instance (models divergent control flow — Figure 4's segment D
            that T1 skips but T2 takes).
        inner_iterations: passes over the segment during the visit (inner
            loop reuse; >=1).
    """

    seg_id: int
    probability: float = 1.0
    inner_iterations: int = 2

    def __post_init__(self) -> None:
        if not (0.0 <= self.probability <= 1.0):
            raise ConfigurationError("probability must lie in [0, 1]")
        if self.inner_iterations < 1:
            raise ConfigurationError("inner_iterations must be >= 1")


@dataclass(frozen=True)
class TransactionTypeSpec:
    """A transaction type: name, mix weight, and its segment path."""

    type_id: int
    name: str
    weight: float
    path: tuple[PathStep, ...]

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ConfigurationError("weight must be non-negative")
        if not self.path:
            raise ConfigurationError(f"type {self.name!r} has an empty path")

    def distinct_segments(self) -> frozenset[int]:
        """Segment ids this type may touch."""
        return frozenset(step.seg_id for step in self.path)


@dataclass(frozen=True)
class DataSpec:
    """Shape of a thread's data-access stream.

    The stream is a mixture of three sources:

    * a small thread-private **hot set** (stack frames, cursor state) that
      is re-missed after a migration;
    * **shared** hot structures (root pages, schema, latches) common to
      all threads — stores to these trigger coherence invalidations;
    * a thread-private **cold stream** of fresh blocks, which produces the
      compulsory-dominated data misses of Figure 1.
    """

    accesses_per_iblock: float = 0.45
    hot_private_blocks: int = 6
    shared_hot_blocks: int = 96
    hot_private_frac: float = 0.40
    shared_frac: float = 0.30
    store_frac: float = 0.45
    private_region_blocks: int = 4096

    def __post_init__(self) -> None:
        if self.hot_private_frac + self.shared_frac > 1.0:
            raise ConfigurationError(
                "hot_private_frac + shared_frac must not exceed 1.0"
            )
        for name in ("accesses_per_iblock", "store_frac"):
            value = getattr(self, name)
            if value < 0:
                raise ConfigurationError(f"{name} must be non-negative")


@dataclass(frozen=True)
class MixPhase:
    """One phase of a time-varying transaction mix.

    Thread ids double as arrival order, so a phase covers a contiguous
    fraction of the arrival sequence: a workload with phases
    ``(0.5, w_a), (0.5, w_b)`` switches its transaction mix mid-trace —
    the shift that stresses any scheduler keyed to the observed mix
    (SLICC's teams must dissolve and re-form around the new hot types).

    Attributes:
        duration_frac: fraction of the arrival sequence this phase spans
            (all phases must sum to 1.0).
        weights: per-type selection weights during the phase, aligned
            with ``WorkloadSpec.txn_types``.
    """

    duration_frac: float
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.duration_frac <= 0.0:
            raise ConfigurationError("phase duration_frac must be positive")
        if any(w < 0 for w in self.weights):
            raise ConfigurationError("phase weights must be non-negative")
        if sum(self.weights) <= 0:
            raise ConfigurationError("phase needs a positive total weight")

    def mix(self) -> list[float]:
        """Normalised selection probabilities during this phase."""
        total = sum(self.weights)
        return [w / total for w in self.weights]


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete benchmark description (Table 1 analogue)."""

    name: str
    segments: tuple[SegmentSpec, ...]
    txn_types: tuple[TransactionTypeSpec, ...]
    data: DataSpec = field(default_factory=DataSpec)
    #: Probability an individual block reference within a segment pass is
    #: skipped (fine-grain control-flow noise).
    block_skip_prob: float = 0.05
    #: Optional phase schedule. Empty = stationary mix drawn from the
    #: type weights; non-empty = the mix follows the phases over arrival
    #: order (see :class:`MixPhase`).
    mix_phases: tuple[MixPhase, ...] = ()

    def __post_init__(self) -> None:
        if not self.txn_types:
            raise ConfigurationError("workload needs at least one txn type")
        seg_ids = {seg.seg_id for seg in self.segments}
        if seg_ids != set(range(len(self.segments))):
            raise ConfigurationError("segment ids must be 0..n-1 in order")
        for txn in self.txn_types:
            missing = txn.distinct_segments() - seg_ids
            if missing:
                raise ConfigurationError(
                    f"type {txn.name!r} references unknown segments {missing}"
                )
        total = sum(t.weight for t in self.txn_types)
        if total <= 0:
            raise ConfigurationError("total type weight must be positive")
        for phase in self.mix_phases:
            if len(phase.weights) != len(self.txn_types):
                raise ConfigurationError(
                    f"phase has {len(phase.weights)} weights for "
                    f"{len(self.txn_types)} transaction types"
                )
        if self.mix_phases:
            span = sum(p.duration_frac for p in self.mix_phases)
            if abs(span - 1.0) > 1e-9:
                raise ConfigurationError(
                    f"phase duration fractions must sum to 1.0, got {span}"
                )

    def type_mix(self) -> list[float]:
        """Normalised selection probabilities of the transaction types."""
        total = sum(t.weight for t in self.txn_types)
        return [t.weight / total for t in self.txn_types]

    def phase_slices(self, n_threads: int) -> list[tuple[int, int, "MixPhase"]]:
        """Partition ``n_threads`` arrival slots over the phase schedule.

        Returns ``(start, end, phase)`` triples covering ``[0, n_threads)``
        contiguously; the last phase absorbs rounding so every thread
        belongs to exactly one phase. Empty for stationary workloads.
        """
        slices: list[tuple[int, int, MixPhase]] = []
        start = 0
        for i, phase in enumerate(self.mix_phases):
            if i == len(self.mix_phases) - 1:
                end = n_threads
            else:
                end = min(
                    n_threads, start + round(phase.duration_frac * n_threads)
                )
            slices.append((start, end, phase))
            start = end
        return slices

    def footprint_blocks(self) -> int:
        """Total distinct instruction blocks across all segments."""
        return sum(seg.n_blocks for seg in self.segments)

    def type_footprint_blocks(self, type_id: int) -> int:
        """Distinct instruction blocks reachable by one type."""
        txn = self.txn_types[type_id]
        return sum(
            self.segments[seg_id].n_blocks
            for seg_id in txn.distinct_segments()
        )


def layout_segments(block_counts: list[int], gap_blocks: int = 64) -> list[SegmentSpec]:
    """Allocate non-overlapping segments with small gaps between them.

    The gap keeps adjacent segments from sharing cache sets in lockstep
    and mirrors the padding real linkers introduce between functions.
    """
    segments = []
    base = 0
    for seg_id, n_blocks in enumerate(block_counts):
        segments.append(SegmentSpec(seg_id=seg_id, base_block=base, n_blocks=n_blocks))
        base += n_blocks + gap_blocks
    return segments
