"""Trace containers.

A trace is the unit of exchange between the workload generators and the
simulation engine: per thread, two parallel numpy arrays of block ids and
access kinds. Encoding one record per *cache block* touched (rather than
per instruction) keeps traces ~12x smaller than instruction-granular ones
at zero loss for cache simulation — consecutive instructions in the same
block cannot change any cache state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TraceError

#: Access kinds (values of ``ThreadTrace.kind``).
KIND_INSTR = 0
KIND_LOAD = 1
KIND_STORE = 2


@dataclass
class ThreadTrace:
    """The replayable access stream of one worker thread.

    Attributes:
        thread_id: unique id within the trace.
        txn_type: transaction type id (ground truth; the type-oblivious
            SLICC variant never reads it).
        addr: int64 block ids, program order.
        kind: int8 access kinds aligned with ``addr``.
    """

    thread_id: int
    txn_type: int
    addr: np.ndarray
    kind: np.ndarray

    def __post_init__(self) -> None:
        if len(self.addr) != len(self.kind):
            raise TraceError(
                f"thread {self.thread_id}: addr/kind length mismatch "
                f"({len(self.addr)} vs {len(self.kind)})"
            )

    def __len__(self) -> int:
        return len(self.addr)

    def replay_tables(self, page_shift: int) -> tuple[list, list, list]:
        """Cached plain-list ``(addr, kind, page)`` tables for the replay
        engine's hot loop.

        Indexing a Python list yields cached small ints where indexing a
        numpy array allocates a numpy scalar that must be unboxed — a
        large per-record cost — and the page id (``addr >> page_shift``)
        is a pure function of the address, so both conversions are done
        once here and memoised on the thread. The tables are read-only
        by contract: the engine never mutates them, so one materialised
        copy serves every simulation of this trace in the process (and,
        under ``fork``-based experiment runners, every worker inherits
        the parent's copy for free). The cache is dropped on pickling —
        shipping redundant list renderings of the numpy arrays would
        bloat ``spawn``-style worker transfers.
        """
        cached = getattr(self, "_replay_tables", None)
        if cached is not None and cached[0] == page_shift:
            return cached[1]
        tables = (
            self.addr.tolist(),
            self.kind.tolist(),
            (self.addr >> page_shift).tolist(),
        )
        self._replay_tables = (page_shift, tables)
        return tables

    def batch_tables(
        self,
        page_shift: int,
        n_i_sets: int,
        n_d_sets: int,
        width: int,
    ) -> tuple:
        """Cached structure-of-arrays tables for the batch replay kernel.

        The batch kernel mirrors both L1s of a core as one combined
        ``(n_i_sets + n_d_sets) x width`` tag matrix (I rows first), so
        the per-record set index becomes a *combined row id* that can be
        gathered in one vectorised lookup. Everything here is a pure
        function of the trace and the cache geometry, so it is computed
        once per ``(page_shift, geometry)`` and memoised on the thread —
        shared zero-copy across every simulation of this trace in the
        process, and inherited for free by ``fork``-based experiment
        workers. Like :meth:`replay_tables`, the cache is dropped on
        pickling (``spawn`` workers rebuild it locally).

        Returns the tuple ``(row, flat, nib, spos, ipos, dpos,
        irun_pos, irun_page, drun_pos, drun_page)``:

        * ``row``: int32 combined row id per record;
        * ``flat``: int32 ``row * width`` (flat index of way 0);
        * ``nib``: int32 prefix array, ``nib[p]`` = number of
          instruction records before position ``p``;
        * ``spos``: list of store-record positions;
        * ``ipos``/``dpos``: int64 positions of instruction / data
          records (for ``searchsorted`` window queries);
        * ``irun_pos``/``irun_page``: start position and page id of each
          maximal same-page run *within the instruction subsequence*
          (``drun_*`` likewise for the data subsequence) — the TLB only
          does work at run boundaries.
        """
        key = (page_shift, n_i_sets, n_d_sets, width)
        cached = getattr(self, "_batch_tables", None)
        if cached is not None and cached[0] == key:
            return cached[1]
        addr = self.addr
        is_i = self.kind == KIND_INSTR
        row = np.where(
            is_i,
            addr & (n_i_sets - 1),
            n_i_sets + (addr & (n_d_sets - 1)),
        ).astype(np.int32)
        flat = row * np.int32(width)
        nib = np.zeros(len(addr) + 1, dtype=np.int32)
        np.cumsum(is_i, out=nib[1:], dtype=np.int32)
        spos = np.nonzero(self.kind == KIND_STORE)[0].tolist()
        ipos = np.nonzero(is_i)[0]
        dpos = np.nonzero(~is_i)[0]
        pages = addr >> page_shift

        def _runs(positions: np.ndarray):
            if len(positions) == 0:
                return [], []
            sub_pages = pages[positions]
            starts = np.nonzero(np.diff(sub_pages) != 0)[0] + 1
            starts = np.concatenate(([0], starts))
            return positions[starts].tolist(), sub_pages[starts].tolist()

        irun_pos, irun_page = _runs(ipos)
        drun_pos, drun_page = _runs(dpos)
        tables = (
            row, flat, nib, spos, ipos, dpos,
            irun_pos, irun_page, drun_pos, drun_page,
        )
        self._batch_tables = (key, tables)
        return tables

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("_replay_tables", None)
        state.pop("_batch_tables", None)
        return state

    @property
    def n_instruction_records(self) -> int:
        """Number of instruction-block records."""
        return int(np.count_nonzero(self.kind == KIND_INSTR))

    @property
    def n_data_records(self) -> int:
        """Number of load/store records."""
        return len(self) - self.n_instruction_records

    def instruction_blocks(self) -> np.ndarray:
        """Distinct instruction block ids this thread touches."""
        return np.unique(self.addr[self.kind == KIND_INSTR])


@dataclass
class Trace:
    """A full workload trace: many threads plus generation metadata."""

    workload: str
    threads: list[ThreadTrace]
    instructions_per_iblock: int
    seed: int
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.threads:
            raise TraceError("trace has no threads")
        ids = [t.thread_id for t in self.threads]
        if len(set(ids)) != len(ids):
            raise TraceError("duplicate thread ids in trace")

    def __len__(self) -> int:
        return len(self.threads)

    @property
    def total_records(self) -> int:
        """Total access records across all threads."""
        return sum(len(t) for t in self.threads)

    @property
    def total_instructions(self) -> int:
        """Retired instructions the trace represents."""
        return sum(
            t.n_instruction_records for t in self.threads
        ) * self.instructions_per_iblock

    def types_present(self) -> list[int]:
        """Sorted distinct transaction type ids."""
        return sorted({t.txn_type for t in self.threads})

    def threads_of_type(self, type_id: int) -> list[ThreadTrace]:
        """All threads running the given transaction type."""
        return [t for t in self.threads if t.txn_type == type_id]
