"""Synthetic trace generation from a :class:`WorkloadSpec`.

The generator is the substitution for the paper's PIN traces of Shore-MT
(DESIGN.md section 3). It is fully deterministic given ``(spec, n_threads,
seed)``: every thread derives its own child RNG from the master seed, so
regenerating a trace always yields bit-identical streams regardless of
generation order.

Instruction streams
-------------------
Each thread instantiates its transaction type's segment path: per
:class:`PathStep`, the visit is taken with ``step.probability`` and the
segment's blocks are walked ``inner_iterations`` times in program order
with a small per-block skip probability (conditional control flow). This
produces exactly the structure SLICC exploits — segment-grain locality,
intra-transaction revisits, inter-thread overlap through shared segments.

Data streams
------------
Data records are drawn from the three-way mixture documented on
:class:`DataSpec` (private hot set / shared hot structures / private cold
stream) and interleaved uniformly among the instruction records. The cold
stream advances to a fresh block every ``cold_run_length`` accesses, which
makes compulsory misses dominate data misses exactly as in Figure 1.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.spec import DATA_BLOCK_BASE, WorkloadSpec
from repro.workloads.trace import (
    KIND_INSTR,
    KIND_LOAD,
    KIND_STORE,
    Trace,
    ThreadTrace,
)

#: Consecutive cold-stream data accesses that land in the same block
#: before advancing (spatial run length of a scan).
COLD_RUN_LENGTH = 3

#: Average sequential-run length within a segment's fetch order. Real code
#: fetches a handful of sequential blocks, then branches elsewhere; this is
#: what keeps a next-line prefetcher from being unrealistically perfect.
FETCH_RUN_LENGTH = 4

#: Shared hot data structures live below the per-thread private regions.
SHARED_DATA_BASE = DATA_BLOCK_BASE // 2

_fetch_order_cache: dict[tuple[str, int], np.ndarray] = {}


def segment_fetch_order(workload: str, seg_id: int, base_block: int, n_blocks: int) -> np.ndarray:
    """The fixed branchy fetch order of one segment's blocks.

    The order is a permutation built from sequential runs (~4 blocks each)
    shuffled among themselves: within a run, fetch is sequential (a
    next-line prefetcher helps); across runs it jumps (it does not). The
    order is a pure function of (workload, seg_id) so every pass by every
    thread walks the segment identically — that determinism *is* the
    inter-thread instruction reuse SLICC harvests.
    """
    key = (workload, seg_id)
    cached = _fetch_order_cache.get(key)
    if cached is not None and len(cached) == n_blocks and cached[0] >= base_block:
        return cached
    # zlib.crc32 rather than hash(): str hashing is salted per process and
    # would silently break cross-run trace determinism.
    rng = np.random.default_rng(zlib.crc32(f"{workload}:{seg_id}".encode()))
    blocks = np.arange(base_block, base_block + n_blocks, dtype=np.int64)
    runs: list[np.ndarray] = []
    i = 0
    while i < n_blocks:
        run_len = int(rng.integers(2, 2 * FETCH_RUN_LENGTH))
        runs.append(blocks[i : i + run_len])
        i += run_len
    order = np.concatenate([runs[j] for j in rng.permutation(len(runs))])
    _fetch_order_cache[key] = order
    return order


def _instruction_stream(
    spec: WorkloadSpec, type_id: int, rng: np.random.Generator
) -> np.ndarray:
    """Generate one thread's instruction-block stream (program order)."""
    txn = spec.txn_types[type_id]
    chunks: list[np.ndarray] = []
    for step in txn.path:
        if step.probability < 1.0 and rng.random() >= step.probability:
            continue
        seg = spec.segments[step.seg_id]
        blocks = segment_fetch_order(
            spec.name, seg.seg_id, seg.base_block, seg.n_blocks
        )
        for _ in range(step.inner_iterations):
            if spec.block_skip_prob > 0.0:
                keep = rng.random(seg.n_blocks) >= spec.block_skip_prob
                chunks.append(blocks[keep])
            else:
                chunks.append(blocks)
    if not chunks:
        # Every visit was skipped (only possible with all-optional paths);
        # fall back to the first segment so the thread is non-empty.
        seg = spec.segments[txn.path[0].seg_id]
        chunks.append(
            segment_fetch_order(
                spec.name, seg.seg_id, seg.base_block, seg.n_blocks
            )
        )
    return np.concatenate(chunks)


def _data_stream(
    spec: WorkloadSpec, thread_id: int, n_data: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Generate ``n_data`` data records: (block ids, kinds)."""
    data = spec.data
    private_base = DATA_BLOCK_BASE + thread_id * data.private_region_blocks

    source = rng.random(n_data)
    hot_mask = source < data.hot_private_frac
    shared_mask = (~hot_mask) & (
        source < data.hot_private_frac + data.shared_frac
    )
    cold_mask = ~(hot_mask | shared_mask)

    addrs = np.empty(n_data, dtype=np.int64)

    n_hot = int(hot_mask.sum())
    if n_hot:
        addrs[hot_mask] = private_base + rng.integers(
            0, data.hot_private_blocks, size=n_hot
        )

    n_shared = int(shared_mask.sum())
    if n_shared:
        # Quadratic skew: low-numbered shared blocks (root pages) are far
        # hotter than high-numbered ones.
        skew = rng.random(n_shared) ** 2
        addrs[shared_mask] = SHARED_DATA_BASE + (
            skew * data.shared_hot_blocks
        ).astype(np.int64)

    n_cold = int(cold_mask.sum())
    if n_cold:
        cold_base = private_base + data.hot_private_blocks
        run = np.arange(n_cold, dtype=np.int64) // COLD_RUN_LENGTH
        addrs[cold_mask] = cold_base + (run % data.private_region_blocks)

    kinds = np.where(
        rng.random(n_data) < data.store_frac, KIND_STORE, KIND_LOAD
    ).astype(np.int8)
    return addrs, kinds


def generate_thread(
    spec: WorkloadSpec,
    thread_id: int,
    type_id: int,
    rng: np.random.Generator,
) -> ThreadTrace:
    """Generate one thread's full interleaved trace."""
    iblocks = _instruction_stream(spec, type_id, rng)
    n_instr = len(iblocks)
    n_data = int(round(n_instr * spec.data.accesses_per_iblock))
    daddrs, dkinds = _data_stream(spec, thread_id, n_data, rng)

    # Interleave: choose the instruction-record index after which each data
    # record occurs, then merge with np.insert (stable, program order kept).
    positions = np.sort(rng.integers(0, n_instr + 1, size=n_data))
    addr = np.insert(iblocks, positions, daddrs)
    kind = np.insert(
        np.zeros(n_instr, dtype=np.int8) + KIND_INSTR, positions, dkinds
    )
    return ThreadTrace(
        thread_id=thread_id, txn_type=type_id, addr=addr, kind=kind
    )


def generate_trace(
    spec: WorkloadSpec,
    n_threads: int,
    seed: int = 1,
    instructions_per_iblock: int = 12,
) -> Trace:
    """Generate a deterministic multi-thread trace for ``spec``.

    Thread ids double as arrival order; transaction types are drawn from
    the spec's weighted mix with the master RNG, then each thread's stream
    comes from an independent child RNG (so traces are stable under
    changes to generation internals of *other* threads).
    """
    if n_threads <= 0:
        raise ConfigurationError("n_threads must be positive")
    master = np.random.default_rng(seed)
    if spec.mix_phases:
        # Phase-shifting mix: each contiguous arrival slice draws from
        # its own phase weights, so the transaction mix changes mid-trace
        # while the per-thread streams stay bit-deterministic by seed.
        type_ids = np.empty(n_threads, dtype=np.int64)
        for start, end, phase in spec.phase_slices(n_threads):
            if end > start:
                type_ids[start:end] = master.choice(
                    len(spec.txn_types),
                    size=end - start,
                    p=np.array(phase.mix()),
                )
        nonzero = [
            i
            for i in range(len(spec.txn_types))
            if any(phase.weights[i] > 0 for phase in spec.mix_phases)
        ]
    else:
        mix = np.array(spec.type_mix())
        type_ids = master.choice(len(spec.txn_types), size=n_threads, p=mix)
        nonzero = [i for i, t in enumerate(spec.txn_types) if t.weight > 0]
    # Guarantee every type with nonzero weight appears at least once when
    # there is room: experiments slice per-type and an absent type would
    # silently produce empty series.
    if n_threads >= len(nonzero):
        present = set(type_ids.tolist())
        missing = [t for t in nonzero if t not in present]
        if spec.mix_phases:
            # Inject only into arrival slots of a phase that actually
            # schedules the type — injecting elsewhere would break the
            # phase invariant (each slice draws from its own weights).
            # A type whose positive-weight phases all rounded to empty
            # slices stays absent: the schedule gave it no slots.
            used: set[int] = set()
            slices = spec.phase_slices(n_threads)
            for type_id in missing:
                slot = next(
                    (
                        s
                        for start, end, phase in slices
                        if phase.weights[type_id] > 0
                        for s in range(start, end)
                        if s not in used
                    ),
                    None,
                )
                if slot is not None:
                    type_ids[slot] = type_id
                    used.add(slot)
        else:
            for slot, type_id in enumerate(missing):
                type_ids[slot] = type_id

    child_seeds = master.integers(0, 2**63 - 1, size=n_threads)
    threads = []
    for thread_id in range(n_threads):
        rng = np.random.default_rng(int(child_seeds[thread_id]))
        threads.append(
            generate_thread(spec, thread_id, int(type_ids[thread_id]), rng)
        )
    return Trace(
        workload=spec.name,
        threads=threads,
        instructions_per_iblock=instructions_per_iblock,
        seed=seed,
        metadata={
            "n_threads": n_threads,
            "footprint_blocks": spec.footprint_blocks(),
            "n_types": len(spec.txn_types),
            "n_phases": len(spec.mix_phases),
        },
    )
