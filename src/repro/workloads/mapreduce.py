"""MapReduce workload model (Table 1: Hadoop/Mahout over Wikipedia).

The paper uses MapReduce as the robustness check: its instruction
footprint *fits* in a 32KB L1-I, so SLICC must neither help nor hurt
(Sections 5.4-5.6), and 71% of its total L1 misses are compulsory
(Section 2.1.1) because it streams over a 12GB dataset.

We model it as a single task type with one small code segment iterated
many times, plus a data stream dominated by a cold scan.
"""

from __future__ import annotations

from repro.params import ScalePreset
from repro.workloads.spec import (
    DataSpec,
    PathStep,
    TransactionTypeSpec,
    WorkloadSpec,
    layout_segments,
)

#: The map/reduce kernel: 200 blocks = 12.5KB, comfortably inside 32KB.
_SEGMENT_BLOCKS = {
    ScalePreset.SMOKE: 32,
    ScalePreset.CI: 200,
    ScalePreset.PAPER: 200,
}


def make_mapreduce(scale: ScalePreset = ScalePreset.CI) -> WorkloadSpec:
    """Build the MapReduce workload spec."""
    seg_blocks = _SEGMENT_BLOCKS[scale]
    segments = layout_segments([seg_blocks])

    # One kernel revisited over and over: high intra-thread reuse, tiny
    # footprint.
    path = tuple(
        PathStep(seg_id=0, inner_iterations=4) for _ in range(6)
    )
    txn_types = (
        TransactionTypeSpec(type_id=0, name="MapTask", weight=1.0, path=path),
    )
    data = DataSpec(
        accesses_per_iblock=0.9,
        hot_private_blocks=8,
        shared_hot_blocks=32,
        hot_private_frac=0.15,
        shared_frac=0.05,
        store_frac=0.25,
        private_region_blocks=65536,
    )
    return WorkloadSpec(
        name="mapreduce",
        segments=tuple(segments),
        txn_types=txn_types,
        data=data,
    )
