"""Web-serving workload model (scenario extension beyond Table 1).

Front-end serving tiers share the OLTP pathology the paper targets —
an instruction footprint several times the L1-I — but with a different
shape: **many short handler threads** (one per request) and **high
instruction-footprint churn**. A request runs its route handler once,
touches the shared middleware (parse, TLS, allocator, response cache,
logging) once, and exits; there is almost no intra-thread segment
revisiting, so nearly all instruction reuse is *inter-thread* — exactly
the component SLICC harvests and STEPS-style batching misses.

Modelled as eight route handlers with the skewed popularity of a real
access log, one private entry segment per route (type-distinct entry
code, so scout-based type detection still works) over five shared
middleware segments. Paths are short and ``inner_iterations=1``
throughout — the churn knob. The data stream is read-mostly (15%
stores): small per-request private state, a hot shared session/response
cache, and a cold stream of request/response body blocks.
"""

from __future__ import annotations

from repro.params import ScalePreset
from repro.workloads.spec import (
    DataSpec,
    PathStep,
    TransactionTypeSpec,
    WorkloadSpec,
    layout_segments,
)

#: Segment name -> index. M* are shared middleware; H* are per-route
#: handlers.
_SEGMENTS = {
    "M0_parse": 0,
    "M1_tls": 1,
    "M2_alloc": 2,
    "M3_cache": 3,
    "M4_log": 4,
    "H0_home": 5,
    "H1_api_list": 6,
    "H2_api_item": 7,
    "H3_search": 8,
    "H4_static": 9,
    "H5_auth": 10,
    "H6_upload": 11,
    "H7_admin": 12,
}

#: (route, weight %) — skewed route popularity.
_ROUTES = (
    ("home", 28.0),
    ("api_list", 18.0),
    ("api_item", 14.0),
    ("search", 10.0),
    ("static", 12.0),
    ("auth", 8.0),
    ("upload", 4.0),
    ("admin", 6.0),
)

#: Blocks per segment. 13 segments x 320 blocks = 260KB at CI scale
#: (several L1-I of footprint); even at smoke the 39KB total exceeds one
#: 32KB L1-I, so churn effects are visible in the unit-test tier.
_SEGMENT_BLOCKS = {
    ScalePreset.SMOKE: 48,
    ScalePreset.CI: 320,
    ScalePreset.PAPER: 320,
}


def _path(steps: list[tuple[str, float]]) -> tuple[PathStep, ...]:
    # inner_iterations=1 everywhere: a handler runs once per request —
    # the high-churn property this workload exists to model.
    return tuple(
        PathStep(seg_id=_SEGMENTS[name], probability=prob, inner_iterations=1)
        for name, prob in steps
    )


def make_webserve(scale: ScalePreset = ScalePreset.CI) -> WorkloadSpec:
    """Build the web-serving workload spec."""
    seg_blocks = _SEGMENT_BLOCKS[scale]
    segments = layout_segments([seg_blocks] * len(_SEGMENTS))

    txn_types = tuple(
        TransactionTypeSpec(
            type_id=type_id,
            name=route.capitalize(),
            weight=weight,
            path=_path(
                [
                    # Private entry first (type-distinctive), then the
                    # shared middleware walk; one optional handler
                    # revisit models template/serialisation code.
                    (f"H{type_id}_{route}", 1.0),
                    ("M1_tls", 0.7),
                    ("M0_parse", 1.0),
                    ("M2_alloc", 1.0),
                    ("M3_cache", 1.0),
                    (f"H{type_id}_{route}", 0.5),
                    ("M4_log", 1.0),
                ]
            ),
        )
        for type_id, (route, weight) in enumerate(_ROUTES)
    )

    data = DataSpec(
        accesses_per_iblock=0.50,
        hot_private_blocks=4,
        shared_hot_blocks=128,
        hot_private_frac=0.30,
        shared_frac=0.25,
        store_frac=0.15,
        private_region_blocks=8192,
    )
    return WorkloadSpec(
        name="webserve",
        segments=tuple(segments),
        txn_types=txn_types,
        data=data,
    )
