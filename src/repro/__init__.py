"""SLICC: Self-Assembly of Instruction Cache Collectives for OLTP Workloads.

A complete trace-driven reproduction of Atta, Tozun, Ailamaki and
Moshovos, MICRO 2012. The public API in one import:

>>> import repro
>>> trace = repro.standard_trace("tpcc-1", repro.ScalePreset.SMOKE)
>>> base = repro.simulate(trace, variant="base")
>>> sw = repro.simulate(trace, variant="slicc-sw")
>>> sw.speedup_over(base) > 0
True

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure and table.
"""

from repro.exp import (
    ExperimentSpec,
    ResultStore,
    Runner,
    grid,
    spec_for,
    summarize,
)
from repro.params import (
    BLOCK_SIZE,
    DEFAULT_SLICC,
    DEFAULT_SYSTEM,
    CacheParams,
    ScalePreset,
    SliccParams,
    SystemParams,
)
from repro.sim import SimConfig, SimulationResult, simulate
from repro.workloads import (
    generate_trace,
    get_workload,
    standard_trace,
    workload_names,
)

__version__ = "1.0.0"

__all__ = [
    "BLOCK_SIZE",
    "CacheParams",
    "DEFAULT_SLICC",
    "DEFAULT_SYSTEM",
    "ExperimentSpec",
    "ResultStore",
    "Runner",
    "ScalePreset",
    "SimConfig",
    "SimulationResult",
    "SliccParams",
    "SystemParams",
    "__version__",
    "generate_trace",
    "get_workload",
    "grid",
    "simulate",
    "spec_for",
    "standard_trace",
    "summarize",
    "workload_names",
]
