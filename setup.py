"""Setup script.

The offline environment ships setuptools 65 without the ``wheel``
package, so PEP 517/660 builds (which need ``bdist_wheel``) fail. All
packaging therefore goes through this classic setup.py so that
``pip install -e .`` uses the legacy develop path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "SLICC: Self-Assembly of Instruction Cache Collectives for OLTP "
        "Workloads (MICRO 2012) - full trace-driven reproduction"
    ),
    python_requires=">=3.9",
    install_requires=["numpy"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
