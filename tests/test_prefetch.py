"""Tests for the next-line prefetcher and the PIF upper-bound model."""

from repro.cache import SetAssociativeCache
from repro.params import CacheParams
from repro.prefetch import (
    PIF_STORAGE_BYTES_PER_CORE,
    NextLinePrefetcher,
    pif_l1i_params,
)


def make():
    cache = SetAssociativeCache(CacheParams(size_bytes=4 * 1024, assoc=4))
    pf = NextLinePrefetcher(cache)
    cache.on_evict = pf.on_evict
    return cache, pf


class TestNextLine:
    def test_miss_prefetches_next_block(self):
        cache, pf = make()
        assert pf.on_demand_miss(10) == 11
        assert cache.probe(11)

    def test_no_prefetch_when_next_resident(self):
        cache, pf = make()
        cache.access(11)
        assert pf.on_demand_miss(10) is None

    def test_consume_marks_useful_once(self):
        cache, pf = make()
        pf.on_demand_miss(10)
        assert pf.consume_if_prefetched(11)
        assert not pf.consume_if_prefetched(11)
        assert pf.useful == 1

    def test_eviction_cancels_pending(self):
        cache, pf = make()
        pf.on_demand_miss(10)
        cache.invalidate(11)
        assert not pf.consume_if_prefetched(11)

    def test_accuracy_metric(self):
        cache, pf = make()
        pf.on_demand_miss(0)
        pf.on_demand_miss(100)
        pf.consume_if_prefetched(1)
        assert pf.accuracy == 0.5

    def test_sequential_stream_mostly_covered(self):
        cache, pf = make()
        misses = 0
        for b in range(200):
            result = cache.access(b)
            if not result.hit:
                misses += 1
                pf.on_demand_miss(b)
        # Every other block arrives via prefetch on a sequential walk.
        assert misses <= 101


class TestPifModel:
    def test_512kb_at_base_latency(self):
        base = CacheParams()
        pif = pif_l1i_params(base)
        assert pif.size_bytes == 512 * 1024
        assert pif.hit_latency == base.hit_latency

    def test_storage_constant(self):
        assert PIF_STORAGE_BYTES_PER_CORE == 40 * 1024

    def test_geometry_still_valid(self):
        pif = pif_l1i_params(CacheParams())
        assert pif.n_sets > 0
