"""Integration tests for the replay engine across all six variants."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.params import ScalePreset, SliccParams
from repro.sim import ReplayEngine, SimConfig, simulate
from repro.workloads import standard_trace

ALL_VARIANTS = ["base", "nextline", "pif", "slicc", "slicc-sw", "slicc-pp"]


class TestConfig:
    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigurationError):
            SimConfig(variant="magic")

    def test_bad_quantum_rejected(self):
        with pytest.raises(ConfigurationError):
            SimConfig(quantum=0)

    def test_simulate_rejects_config_plus_kwargs(self, smoke_tpcc):
        with pytest.raises(ConfigurationError):
            simulate(smoke_tpcc, config=SimConfig(), variant="base")


@pytest.mark.parametrize("variant", ALL_VARIANTS)
class TestVariantsComplete:
    def test_all_threads_complete(self, smoke_tpcc, variant):
        result = simulate(smoke_tpcc, variant=variant)
        assert result.threads_completed == len(smoke_tpcc.threads)

    def test_cycles_positive(self, smoke_tpcc, variant):
        result = simulate(smoke_tpcc, variant=variant)
        assert result.cycles > 0

    def test_instruction_accounting(self, smoke_tpcc, variant):
        result = simulate(smoke_tpcc, variant=variant)
        assert result.instructions == smoke_tpcc.total_instructions

    def test_deterministic(self, smoke_tpcc, variant):
        a = simulate(smoke_tpcc, variant=variant)
        b = simulate(smoke_tpcc, variant=variant)
        assert a.cycles == b.cycles
        assert a.i_misses == b.i_misses
        assert a.d_misses == b.d_misses


class TestEngineMechanics:
    def test_engine_single_use(self, smoke_tpcc):
        engine = ReplayEngine(smoke_tpcc, SimConfig())
        engine.run()
        with pytest.raises(SimulationError):
            engine.run()

    def test_baseline_never_migrates(self, smoke_tpcc):
        result = simulate(smoke_tpcc, variant="base")
        assert result.migrations == 0 and result.broadcasts == 0

    def test_slicc_access_totals_match_baseline(self, smoke_tpcc):
        """Migration changes *where* accesses happen, never how many."""
        base = simulate(smoke_tpcc, variant="base")
        slicc = simulate(smoke_tpcc, variant="slicc")
        assert slicc.i_accesses == base.i_accesses
        assert slicc.d_accesses == base.d_accesses

    def test_pif_reduces_instruction_misses(self, smoke_tpcc):
        base = simulate(smoke_tpcc, variant="base")
        pif = simulate(smoke_tpcc, variant="pif")
        assert pif.i_misses <= base.i_misses

    def test_nextline_reduces_instruction_misses(self, smoke_tpcc):
        base = simulate(smoke_tpcc, variant="base")
        nl = simulate(smoke_tpcc, variant="nextline")
        assert nl.i_misses < base.i_misses

    def test_nextline_data_misses_unchanged(self, smoke_tpcc):
        base = simulate(smoke_tpcc, variant="base")
        nl = simulate(smoke_tpcc, variant="nextline")
        assert nl.d_misses == pytest.approx(base.d_misses, rel=0.02)

    def test_speedup_over_self_is_one(self, smoke_tpcc):
        r = simulate(smoke_tpcc, variant="base")
        assert r.speedup_over(r) == pytest.approx(1.0)

    def test_speedup_across_workloads_rejected(self, smoke_tpcc, smoke_tpce):
        a = simulate(smoke_tpcc, variant="base")
        b = simulate(smoke_tpce, variant="base")
        with pytest.raises(ValueError):
            a.speedup_over(b)

    def test_synchronised_arrivals_option(self, smoke_tpcc):
        result = simulate(
            smoke_tpcc, config=SimConfig(variant="base", arrival_spacing=0)
        )
        assert result.threads_completed == len(smoke_tpcc.threads)

    def test_miss_class_collection(self, smoke_tpcc):
        result = simulate(
            smoke_tpcc,
            config=SimConfig(variant="base", collect_miss_classes=True),
        )
        classes = result.miss_class_mpki
        assert set(classes) == {"instruction", "data"}
        total = sum(classes["instruction"].values())
        assert total == pytest.approx(result.i_mpki, rel=0.01)

    def test_utilization_bounded(self, smoke_tpcc):
        result = simulate(smoke_tpcc, variant="slicc")
        assert 0.0 < result.utilization <= 1.0

    def test_cycle_breakdown_consistent(self, smoke_tpcc):
        r = simulate(smoke_tpcc, variant="slicc")
        parts = (
            r.cycles_base
            + r.cycles_i_stall
            + r.cycles_d_stall
            + r.cycles_tlb
        )
        assert parts > 0
        assert r.instruction_stall_share > 0.5  # OLTP is fetch-bound


class TestSliccBehaviour:
    def test_slicc_migrates_on_oltp(self):
        trace = standard_trace("tpcc-1", ScalePreset.CI, n_threads=16)
        result = simulate(trace, variant="slicc")
        assert result.migrations > 0
        assert result.broadcasts > 0

    def test_slicc_reduces_tpcc_instruction_misses(self):
        trace = standard_trace("tpcc-1", ScalePreset.CI, n_threads=16)
        base = simulate(trace, variant="base")
        slicc = simulate(trace, variant="slicc")
        assert slicc.i_mpki < base.i_mpki

    def test_slicc_increases_data_misses(self):
        trace = standard_trace("tpcc-1", ScalePreset.CI, n_threads=16)
        base = simulate(trace, variant="base")
        slicc = simulate(trace, variant="slicc")
        assert slicc.d_mpki >= base.d_mpki

    def test_mapreduce_unaffected_by_slicc(self, smoke_mapreduce):
        """The paper's robustness result: a small instruction footprint
        means no migrations and unchanged miss rates."""
        base = simulate(smoke_mapreduce, variant="base")
        slicc = simulate(smoke_mapreduce, variant="slicc")
        assert slicc.migrations == 0
        assert slicc.i_mpki == pytest.approx(base.i_mpki, rel=0.05)

    def test_dilution_zero_allows_more_migrations(self):
        trace = standard_trace("tpcc-1", ScalePreset.CI, n_threads=16)
        eager = simulate(
            trace,
            config=SimConfig(variant="slicc", slicc=SliccParams(dilution_t=0)),
        )
        lazy = simulate(
            trace,
            config=SimConfig(
                variant="slicc", slicc=SliccParams(dilution_t=30)
            ),
        )
        assert eager.migrations > lazy.migrations

    def test_pp_uses_one_fewer_worker(self, smoke_tpcc):
        engine = ReplayEngine(smoke_tpcc, SimConfig(variant="slicc-pp"))
        assert len(engine.worker_cores) == 15

    def test_partition_covers_all_types(self, smoke_tpcc):
        engine = ReplayEngine(smoke_tpcc, SimConfig(variant="slicc-sw"))
        for thread in smoke_tpcc.threads:
            allowed = engine._allowed_for(thread.thread_id)
            assert allowed  # never empty
