"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    ConfigurationError,
    ReproError,
    SimulationError,
    TraceError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc", [ConfigurationError, SimulationError, TraceError]
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_catchable_as_family(self):
        with pytest.raises(ReproError):
            raise ConfigurationError("bad config")

    def test_not_bare_exception_aliases(self):
        # Library errors must be distinguishable from builtins.
        assert not issubclass(ConfigurationError, ValueError)

    def test_messages_preserved(self):
        err = TraceError("thread 3: addr/kind mismatch")
        assert "thread 3" in str(err)
