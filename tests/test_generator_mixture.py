"""Statistical tests on the generator's data-stream mixture.

The DataSpec fractions drive the Figure 1 data-miss shape (compulsory
domination) and the Section 5.5 migration costs, so the generator must
honour them within sampling error.
"""

import numpy as np
import pytest

from repro.params import ScalePreset
from repro.workloads import get_workload
from repro.workloads.generator import (
    COLD_RUN_LENGTH,
    SHARED_DATA_BASE,
    _data_stream,
)
from repro.workloads.spec import DATA_BLOCK_BASE
from repro.workloads.trace import KIND_STORE


@pytest.fixture
def spec():
    return get_workload("tpcc-1", ScalePreset.CI)


def classify(spec, thread_id, addrs):
    data = spec.data
    private_base = DATA_BLOCK_BASE + thread_id * data.private_region_blocks
    hot_end = private_base + data.hot_private_blocks
    hot = ((addrs >= private_base) & (addrs < hot_end)).sum()
    shared = (
        (addrs >= SHARED_DATA_BASE)
        & (addrs < SHARED_DATA_BASE + data.shared_hot_blocks)
    ).sum()
    cold = len(addrs) - hot - shared
    return int(hot), int(shared), int(cold)


class TestDataMixture:
    def test_fractions_respected(self, spec):
        rng = np.random.default_rng(0)
        n = 20000
        addrs, _ = _data_stream(spec, thread_id=3, n_data=n, rng=rng)
        hot, shared, cold = classify(spec, 3, addrs)
        assert hot / n == pytest.approx(spec.data.hot_private_frac, abs=0.02)
        assert shared / n == pytest.approx(spec.data.shared_frac, abs=0.02)

    def test_store_fraction(self, spec):
        rng = np.random.default_rng(1)
        _, kinds = _data_stream(spec, thread_id=0, n_data=20000, rng=rng)
        frac = (kinds == KIND_STORE).mean()
        assert frac == pytest.approx(spec.data.store_frac, abs=0.02)

    def test_cold_stream_run_length(self, spec):
        """Cold blocks repeat COLD_RUN_LENGTH times before advancing, so
        unique cold blocks ~= cold accesses / run length."""
        rng = np.random.default_rng(2)
        n = 30000
        addrs, _ = _data_stream(spec, thread_id=0, n_data=n, rng=rng)
        data = spec.data
        cold_base = (
            DATA_BLOCK_BASE + 0 * data.private_region_blocks
            + data.hot_private_blocks
        )
        cold = addrs[addrs >= cold_base]
        cold = cold[cold < DATA_BLOCK_BASE + data.private_region_blocks]
        expected_unique = len(cold) / COLD_RUN_LENGTH
        assert len(np.unique(cold)) == pytest.approx(expected_unique, rel=0.1)

    def test_threads_have_disjoint_private_regions(self, spec):
        rng = np.random.default_rng(3)
        a, _ = _data_stream(spec, thread_id=0, n_data=5000, rng=rng)
        b, _ = _data_stream(spec, thread_id=1, n_data=5000, rng=rng)
        shared_top = SHARED_DATA_BASE + spec.data.shared_hot_blocks
        a_private = set(a[a >= DATA_BLOCK_BASE].tolist())
        b_private = set(b[b >= DATA_BLOCK_BASE].tolist())
        assert not (a_private & b_private)
        # Shared region genuinely shared.
        assert set(a[(a >= SHARED_DATA_BASE) & (a < shared_top)].tolist()) & set(
            b[(b >= SHARED_DATA_BASE) & (b < shared_top)].tolist()
        )

    def test_zero_data_records(self, spec):
        rng = np.random.default_rng(4)
        addrs, kinds = _data_stream(spec, thread_id=0, n_data=0, rng=rng)
        assert len(addrs) == 0 and len(kinds) == 0
