"""Tests for the banked NUCA L2 model."""

import pytest

from repro.cache.nuca import NucaL2
from repro.errors import ConfigurationError
from repro.interconnect import Torus2D
from repro.params import ScalePreset
from repro.sim import SimConfig, simulate
from repro.workloads import standard_trace


def make_nuca(**kw):
    return NucaL2(Torus2D(4), **kw)


class TestNucaL2:
    def test_capacity_is_16mb(self):
        nuca = make_nuca()
        assert nuca.capacity_blocks == 16 * 1024 * 1024 // 64

    def test_bank_interleaving(self):
        nuca = make_nuca()
        assert nuca.bank_of(0) == 0
        assert nuca.bank_of(1) == 1
        assert nuca.bank_of(16) == 0

    def test_first_access_misses_then_hits(self):
        nuca = make_nuca()
        hit, _ = nuca.access(core=0, block=100)
        assert not hit
        hit, _ = nuca.access(core=0, block=100)
        assert hit

    def test_latency_includes_round_trip(self):
        nuca = make_nuca()
        nuca.access(0, 0)  # bank 0, local to core 0
        _, local = nuca.access(0, 0)
        # Block 10 homes in bank 10; core 0 <-> node 10 is 3 hops.
        nuca.access(0, 10)
        _, remote = nuca.access(0, 10)
        assert remote > local
        assert local == 16  # zero-distance round trip

    def test_distinct_blocks_same_bank_coexist(self):
        nuca = make_nuca()
        nuca.access(0, 0)
        nuca.access(0, 16)
        assert nuca.probe(0) and nuca.probe(16)

    def test_bank_count_must_match_torus(self):
        with pytest.raises(ConfigurationError):
            NucaL2(Torus2D(4), n_banks=8)

    def test_stats_aggregate(self):
        nuca = make_nuca()
        nuca.access(0, 0)
        nuca.access(0, 0)
        stats = nuca.stats()
        assert stats.accesses == 2 and stats.misses == 1


class TestEngineWithNuca:
    def test_results_close_to_infinite_l2(self):
        """Footprints are far below 16MB, so the finite model must agree
        closely with the infinite approximation on miss counts. (Not
        exactly: different L2 latencies shift the thread interleaving,
        which perturbs placement and coherence timing slightly.)"""
        trace = standard_trace("tpcc-1", ScalePreset.SMOKE)
        flat = simulate(trace, config=SimConfig(variant="base"))
        nuca = simulate(
            trace, config=SimConfig(variant="base", model_l2_capacity=True)
        )
        assert nuca.i_misses == pytest.approx(flat.i_misses, rel=0.05)
        assert nuca.d_misses == pytest.approx(flat.d_misses, rel=0.05)
        assert nuca.threads_completed == flat.threads_completed

    def test_nuca_distance_costs_cycles(self):
        trace = standard_trace("tpcc-1", ScalePreset.SMOKE)
        flat = simulate(trace, config=SimConfig(variant="base"))
        nuca = simulate(
            trace, config=SimConfig(variant="base", model_l2_capacity=True)
        )
        # Remote-bank round trips make the NUCA run at least as slow.
        assert nuca.cycles >= flat.cycles
