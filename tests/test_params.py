"""Tests for parameter validation and the public package surface."""

import pytest

import repro
from repro.errors import ConfigurationError
from repro.params import (
    CacheParams,
    ScalePreset,
    SliccParams,
    SystemParams,
)


class TestSystemParams:
    def test_defaults_match_table2(self):
        s = SystemParams()
        assert s.n_cores == 16
        assert s.torus_width == 4
        assert s.l1i.size_bytes == 32 * 1024
        assert s.l1i.assoc == 8
        assert s.l1i.block_size == 64
        assert s.l2_hit_latency == 16

    def test_torus_core_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemParams(n_cores=16, torus_width=3)

    def test_overlap_bounds_enforced(self):
        with pytest.raises(ConfigurationError):
            SystemParams(load_overlap=1.5)


class TestSliccParams:
    def test_defaults_match_section_52(self):
        p = SliccParams()
        assert p.fill_up_t == 256
        assert p.matched_t == 4
        assert p.dilution_t == 10
        assert p.bloom_bits == 2048
        assert p.msv_window == 100

    def test_bad_thresholds_rejected(self):
        with pytest.raises(ConfigurationError):
            SliccParams(fill_up_t=0)
        with pytest.raises(ConfigurationError):
            SliccParams(matched_t=0)
        with pytest.raises(ConfigurationError):
            SliccParams(dilution_t=200)
        with pytest.raises(ConfigurationError):
            SliccParams(bloom_bits=1000)


class TestCacheParamsScaled:
    def test_scaled_changes_size(self):
        p = CacheParams().scaled(64 * 1024)
        assert p.size_bytes == 64 * 1024
        assert p.hit_latency == 3

    def test_scaled_with_latency(self):
        p = CacheParams().scaled(64 * 1024, hit_latency=5)
        assert p.hit_latency == 5


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_surface(self):
        trace = repro.standard_trace("mapreduce", ScalePreset.SMOKE)
        result = repro.simulate(trace, variant="base")
        assert result.cycles > 0

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name
