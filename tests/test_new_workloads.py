"""Tests for the scenario-extension workloads: webserve and phased.

Covers the ISSUE-4 requirements: determinism by seed, and shape
assertions on the instruction footprint (webserve churn) and the
transaction mix (phased mid-trace shift).
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.params import ScalePreset
from repro.workloads import (
    KIND_INSTR,
    KIND_STORE,
    MixPhase,
    generate_trace,
    get_workload,
    standard_trace,
)
from repro.workloads.phased import PHASE_SCHEDULE


def _reuse_factor(trace) -> float:
    """Mean instruction-record count per distinct instruction block —
    low means churn (each block fetched few times per thread)."""
    records = 0
    distinct = set()
    for thread in trace.threads:
        instr = thread.addr[thread.kind == KIND_INSTR]
        records += len(instr)
        distinct.update(int(b) for b in np.unique(instr))
    return records / len(distinct)


class TestWebserve:
    def test_deterministic_by_seed(self):
        a = standard_trace("webserve", ScalePreset.SMOKE, seed=13)
        b = standard_trace("webserve", ScalePreset.SMOKE, seed=13)
        for ta, tb in zip(a.threads, b.threads):
            assert np.array_equal(ta.addr, tb.addr)
            assert np.array_equal(ta.kind, tb.kind)
        c = standard_trace("webserve", ScalePreset.SMOKE, seed=14)
        assert any(
            not np.array_equal(ta.addr, tc.addr)
            for ta, tc in zip(a.threads, c.threads)
        )

    def test_footprint_exceeds_one_l1_even_at_smoke(self):
        for scale in (ScalePreset.SMOKE, ScalePreset.CI):
            spec = get_workload("webserve", scale)
            assert spec.footprint_blocks() > 512  # > one 32KB L1-I

    def test_many_short_handler_types(self):
        spec = get_workload("webserve", ScalePreset.CI)
        assert len(spec.txn_types) == 8
        # "Short handler" = single-pass segments, no inner-loop reuse.
        for txn in spec.txn_types:
            assert all(step.inner_iterations == 1 for step in txn.path)
            assert len(txn.path) <= 8

    def test_type_distinct_entry_segments(self):
        spec = get_workload("webserve", ScalePreset.CI)
        entries = {t.path[0].seg_id for t in spec.txn_types}
        assert len(entries) == len(spec.txn_types)

    def test_higher_churn_than_tpcc(self):
        """The workload's reason to exist: far less per-block reuse than
        the loopy OLTP instruction streams."""
        web = standard_trace("webserve", ScalePreset.SMOKE, seed=3)
        tpcc = standard_trace("tpcc-1", ScalePreset.SMOKE, seed=3)
        assert _reuse_factor(web) < 0.5 * _reuse_factor(tpcc)

    def test_read_mostly_data_stream(self):
        trace = standard_trace("webserve", ScalePreset.SMOKE, seed=5)
        stores = sum(int((t.kind == KIND_STORE).sum()) for t in trace.threads)
        data = sum(int((t.kind != KIND_INSTR).sum()) for t in trace.threads)
        assert data > 0
        assert stores / data < 0.25  # spec pins 15%


class TestPhased:
    def test_deterministic_by_seed(self):
        a = standard_trace("phased", ScalePreset.SMOKE, seed=21)
        b = standard_trace("phased", ScalePreset.SMOKE, seed=21)
        for ta, tb in zip(a.threads, b.threads):
            assert ta.txn_type == tb.txn_type
            assert np.array_equal(ta.addr, tb.addr)
            assert np.array_equal(ta.kind, tb.kind)

    def test_shares_tpcc_code_segments(self):
        phased = get_workload("phased", ScalePreset.CI)
        tpcc = get_workload("tpcc-1", ScalePreset.CI)
        assert phased.segments == tpcc.segments
        assert [t.name for t in phased.txn_types] == [
            t.name for t in tpcc.txn_types
        ]

    def test_mix_shifts_mid_trace(self):
        spec = get_workload("phased", ScalePreset.SMOKE)
        trace = generate_trace(spec, n_threads=60, seed=3)
        types = [t.txn_type for t in trace.threads]
        first, second = types[:30], types[30:]
        entry_heavy = {0, 1}  # NewOrder, Payment
        assert sum(t in entry_heavy for t in first) / len(first) > 0.6
        assert sum(t not in entry_heavy for t in second) / len(second) > 0.6

    def test_phase_slices_cover_all_threads(self):
        spec = get_workload("phased", ScalePreset.SMOKE)
        for n in (1, 2, 7, 48):
            slices = spec.phase_slices(n)
            assert slices[0][0] == 0 and slices[-1][1] == n
            for (_, a_end, _), (b_start, _, _) in zip(slices, slices[1:]):
                assert a_end == b_start

    def test_missing_type_injection_respects_phase_schedule(self):
        """A type scheduled only in one phase must never be force-injected
        into a phase whose weight for it is zero."""
        from dataclasses import replace

        base = get_workload("tpcc-1", ScalePreset.SMOKE)
        spec = replace(
            base,
            mix_phases=(
                MixPhase(0.95, (1.0, 1.0, 1.0, 1.0, 0.0)),
                MixPhase(0.05, (0.0, 0.0, 0.0, 0.0, 1.0)),
            ),
        )
        # Phase 2 rounds to an empty slice: type 4 has no slot, so it
        # stays absent rather than landing inside phase 1.
        trace = generate_trace(spec, n_threads=10, seed=1)
        assert all(t.txn_type != 4 for t in trace.threads)
        # With enough threads the phase-2 slice exists and type 4 only
        # ever appears there.
        trace = generate_trace(spec, n_threads=40, seed=1)
        slices = spec.phase_slices(40)
        phase2_start = slices[1][0]
        for thread in trace.threads:
            if thread.txn_type == 4:
                assert thread.thread_id >= phase2_start
        assert any(t.txn_type == 4 for t in trace.threads)

    def test_phase_metadata_recorded(self):
        trace = standard_trace("phased", ScalePreset.SMOKE, seed=1)
        assert trace.metadata["n_phases"] == len(PHASE_SCHEDULE)
        assert standard_trace(
            "tpcc-1", ScalePreset.SMOKE, seed=1
        ).metadata["n_phases"] == 0


class TestMixPhaseValidation:
    def test_weights_must_match_type_count(self):
        spec = get_workload("tpcc-1", ScalePreset.SMOKE)
        from dataclasses import replace

        with pytest.raises(ConfigurationError):
            replace(spec, mix_phases=(MixPhase(1.0, (1.0, 2.0)),))

    def test_durations_must_sum_to_one(self):
        spec = get_workload("tpcc-1", ScalePreset.SMOKE)
        from dataclasses import replace

        phases = (
            MixPhase(0.5, (1.0, 1.0, 1.0, 1.0, 1.0)),
            MixPhase(0.3, (1.0, 1.0, 1.0, 1.0, 1.0)),
        )
        with pytest.raises(ConfigurationError):
            replace(spec, mix_phases=phases)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            MixPhase(0.0, (1.0,))

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            MixPhase(1.0, (1.0, -0.5))

    def test_zero_total_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            MixPhase(1.0, (0.0, 0.0))
