"""End-to-end tests for the experiment-layer CLI surface."""

import json

from repro.cli import main


def write_specfile(tmp_path, payload):
    path = tmp_path / "exp.json"
    path.write_text(json.dumps(payload))
    return str(path)


SMOKE_EXP = {
    "workload": "tpcc-1",
    "scale": "smoke",
    "seed": 7,
    "variant": "slicc-sw",
    "axes": {"slicc.dilution_t": [5, 10]},
    "baseline": True,
}


class TestExpCommand:
    def test_exp_runs_spec_file(self, tmp_path, capsys):
        rc = main(["exp", write_specfile(tmp_path, SMOKE_EXP)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "dilution_t=5" in out and "dilution_t=10" in out
        assert "speedup" in out

    def test_exp_store_makes_rerun_incremental(self, tmp_path, capsys):
        specfile = write_specfile(tmp_path, SMOKE_EXP)
        store = str(tmp_path / "results")
        assert main(["exp", specfile, "--store", store]) == 0
        capsys.readouterr()
        assert main(["exp", specfile, "--store", store]) == 0
        out = capsys.readouterr().out
        assert "[0 simulated, 3 cached]" in out

    def test_exp_parallel_jobs(self, tmp_path, capsys):
        rc = main(["exp", write_specfile(tmp_path, SMOKE_EXP), "--jobs", "2"])
        assert rc == 0
        assert "dilution_t=10" in capsys.readouterr().out

    def test_exp_without_baseline_has_no_speedup_column(self, tmp_path, capsys):
        payload = dict(SMOKE_EXP)
        payload.pop("baseline")
        rc = main(["exp", write_specfile(tmp_path, payload)])
        assert rc == 0
        assert "speedup" not in capsys.readouterr().out

    def test_exp_bad_axis_is_a_clean_error(self, tmp_path, capsys):
        payload = dict(SMOKE_EXP, axes={"slicc.dillution_t": [5]})
        rc = main(["exp", write_specfile(tmp_path, payload)])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "dillution_t" in err

    def test_exp_missing_file_is_a_clean_error(self, tmp_path, capsys):
        rc = main(["exp", str(tmp_path / "absent.json")])
        assert rc == 2
        assert capsys.readouterr().err.startswith("error:")


class TestJobsFlag:
    def test_run_with_jobs(self, capsys):
        rc = main(
            [
                "run",
                "mapreduce",
                "--scale",
                "smoke",
                "--threads",
                "4",
                "--variants",
                "nextline",
                "--jobs",
                "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "base" in out and "nextline" in out

    def test_sweep_with_store_and_jobs(self, tmp_path, capsys):
        argv = [
            "sweep",
            "tpcc-1",
            "--scale",
            "smoke",
            "--seed",
            "7",
            "--kind",
            "dilution",
            "--jobs",
            "2",
            "--store",
            str(tmp_path / "sweepstore"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "dilution_t" in out
        capsys.readouterr()
        # Rerun: everything cached from the JSONL store.
        assert main(argv) == 0
        assert "[0 simulated, 16 cached]" in capsys.readouterr().out
