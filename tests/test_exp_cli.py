"""End-to-end tests for the experiment-layer CLI surface."""

import json

import pytest

from repro.cli import main


def write_specfile(tmp_path, payload):
    path = tmp_path / "exp.json"
    path.write_text(json.dumps(payload))
    return str(path)


SMOKE_EXP = {
    "workload": "tpcc-1",
    "scale": "smoke",
    "seed": 7,
    "variant": "slicc-sw",
    "axes": {"slicc.dilution_t": [5, 10]},
    "baseline": True,
}


class TestExpCommand:
    def test_exp_runs_spec_file(self, tmp_path, capsys):
        rc = main(["exp", write_specfile(tmp_path, SMOKE_EXP)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "dilution_t=5" in out and "dilution_t=10" in out
        assert "speedup" in out

    def test_exp_store_makes_rerun_incremental(self, tmp_path, capsys):
        specfile = write_specfile(tmp_path, SMOKE_EXP)
        store = str(tmp_path / "results")
        assert main(["exp", specfile, "--store", store]) == 0
        capsys.readouterr()
        assert main(["exp", specfile, "--store", store]) == 0
        out = capsys.readouterr().out
        assert "[0 simulated, 3 cached]" in out

    def test_exp_parallel_jobs(self, tmp_path, capsys):
        rc = main(["exp", write_specfile(tmp_path, SMOKE_EXP), "--jobs", "2"])
        assert rc == 0
        assert "dilution_t=10" in capsys.readouterr().out

    def test_exp_without_baseline_has_no_speedup_column(self, tmp_path, capsys):
        payload = dict(SMOKE_EXP)
        payload.pop("baseline")
        rc = main(["exp", write_specfile(tmp_path, payload)])
        assert rc == 0
        assert "speedup" not in capsys.readouterr().out

    def test_exp_bad_axis_is_a_clean_error(self, tmp_path, capsys):
        payload = dict(SMOKE_EXP, axes={"slicc.dillution_t": [5]})
        rc = main(["exp", write_specfile(tmp_path, payload)])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "dillution_t" in err

    def test_exp_missing_file_is_a_clean_error(self, tmp_path, capsys):
        rc = main(["exp", str(tmp_path / "absent.json")])
        assert rc == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_exp_accepts_retry_and_timeout_flags(self, tmp_path, capsys):
        rc = main(
            [
                "exp",
                write_specfile(tmp_path, SMOKE_EXP),
                "--retries",
                "1",
                "--timeout",
                "120",
            ]
        )
        assert rc == 0
        assert "dilution_t=10" in capsys.readouterr().out

    def test_exp_exit_code_contract_documented(self, capsys):
        with pytest.raises(SystemExit):
            main(["exp", "--help"])
        out = capsys.readouterr().out
        assert "exit code is 3" in out.lower() or "exit codes" in out.lower()

    def test_failed_specs_exit_3_with_failure_table(
        self, tmp_path, monkeypatch, capsys
    ):
        """Under an always-crash fault plan every spec exhausts its
        retries: the run exits 3 and tabulates the losses on stderr."""
        monkeypatch.setenv("REPRO_FAULT", "crash:1")
        specfile = write_specfile(tmp_path, SMOKE_EXP)
        store = str(tmp_path / "results")
        rc = main(["exp", specfile, "--store", store, "--retries", "0"])
        assert rc == 3
        captured = capsys.readouterr()
        assert "3 spec(s) failed after retries" in captured.err
        assert "worker-death" in captured.err
        assert "3 failed" in captured.out
        # The failures are provenance in the store: a fault-free rerun
        # retries and succeeds.
        monkeypatch.delenv("REPRO_FAULT")
        assert main(["exp", specfile, "--store", store]) == 0
        assert "[3 simulated" in capsys.readouterr().out


class TestStoreCommand:
    def fill_store(self, tmp_path, torn=False):
        specfile = write_specfile(tmp_path, SMOKE_EXP)
        store = tmp_path / "results.jsonl"
        assert main(["exp", specfile, "--store", str(store)]) == 0
        if torn:
            with store.open("a") as fh:
                fh.write('{"key": "bad", "result": {"torn')
        return store

    def test_verify_clean_store(self, tmp_path, capsys):
        store = self.fill_store(tmp_path)
        capsys.readouterr()
        assert main(["store", "verify", str(store)]) == 0
        out = capsys.readouterr().out
        assert "clean (3 results" in out
        assert "corrupt lines" in out  # the audit table

    def test_verify_corrupt_store_exits_1(self, tmp_path, capsys):
        store = self.fill_store(tmp_path, torn=True)
        capsys.readouterr()
        assert main(["store", "verify", str(store)]) == 1
        captured = capsys.readouterr()
        assert "CORRUPT: 1 unparseable line(s)" in captured.err
        assert "store compact" in captured.err

    def test_compact_scrubs_corruption(self, tmp_path, capsys):
        store = self.fill_store(tmp_path, torn=True)
        capsys.readouterr()
        with pytest.warns(UserWarning):
            assert main(["store", "compact", str(store)]) == 0
        out = capsys.readouterr().out
        assert "compacted" in out and "1 corrupt" in out
        assert main(["store", "verify", str(store)]) == 0
        assert "clean (3 results" in capsys.readouterr().out
        assert (tmp_path / "results.jsonl.quarantine").exists()

    def test_verify_accepts_directory(self, tmp_path, capsys):
        self.fill_store(tmp_path)
        capsys.readouterr()
        assert main(["store", "verify", str(tmp_path)]) == 0

    def test_verify_json_clean(self, tmp_path, capsys):
        store = self.fill_store(tmp_path)
        capsys.readouterr()
        assert main(["store", "verify", str(store), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["keys"] == 3 and payload["result_rows"] == 3
        assert payload["corrupt"] == 0 and payload["live_failures"] == 0
        assert payload["reclaimable"] == 0
        assert payload["path"] == str(store)

    def test_verify_json_corrupt_exits_1(self, tmp_path, capsys):
        store = self.fill_store(tmp_path, torn=True)
        capsys.readouterr()
        assert main(["store", "verify", str(store), "--json"]) == 1
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["clean"] is False and payload["corrupt"] == 1
        assert payload["reclaimable"] == 1
        assert captured.err == ""  # diagnostics live in the JSON


class TestJobsFlag:
    def test_run_with_jobs(self, capsys):
        rc = main(
            [
                "run",
                "mapreduce",
                "--scale",
                "smoke",
                "--threads",
                "4",
                "--variants",
                "nextline",
                "--jobs",
                "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "base" in out and "nextline" in out

    def test_sweep_with_store_and_jobs(self, tmp_path, capsys):
        argv = [
            "sweep",
            "tpcc-1",
            "--scale",
            "smoke",
            "--seed",
            "7",
            "--kind",
            "dilution",
            "--jobs",
            "2",
            "--store",
            str(tmp_path / "sweepstore"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "dilution_t" in out
        capsys.readouterr()
        # Rerun: everything cached from the JSONL store.
        assert main(argv) == 0
        assert "[0 simulated, 16 cached]" in capsys.readouterr().out
