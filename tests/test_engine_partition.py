"""Edge-case tests for ReplayEngine._build_partition (Section 4.3.2).

The partition splits worker cores among transaction types by thread
count. These tests drive it with synthetic count maps to pin the three
tricky regimes: more types than worker cores, one dominant type, and the
everything-is-a-stray pool path.
"""

import pytest

from repro.sim.engine import ReplayEngine, SimConfig


@pytest.fixture
def engine(smoke_tpcc):
    """A slicc-sw engine on 16 cores; only _build_partition is exercised."""
    return ReplayEngine(smoke_tpcc, SimConfig(variant="slicc-sw"))


class TestBuildPartition:
    def test_more_types_than_worker_cores(self, engine):
        """With 20 one-thread types on 16 cores, nobody earns 2 cores:
        every type collapses into the shared stray pool spanning all
        workers."""
        counts = {type_id: 1 for type_id in range(20)}
        partition = engine._build_partition(counts)
        workers = frozenset(engine.worker_cores)
        assert partition[-1] == workers
        for type_id in counts:
            assert partition[type_id] == workers

    def test_single_dominant_type(self, engine):
        """One type with ~99% of threads takes the lion's share; the tiny
        type shares the reserved pool with the strays."""
        counts = {0: 100, 1: 1}
        partition = engine._build_partition(counts)
        workers = set(engine.worker_cores)
        assert len(partition[0]) == len(workers) - 2  # 2 cores reserved
        assert partition[1] == partition[-1]
        assert len(partition[-1]) == 2
        assert partition[0].isdisjoint(partition[-1])
        assert partition[0] | partition[-1] == workers

    def test_exact_fill_leaves_strays_roaming(self, engine):
        """Two equal types split all 16 cores exactly; with no leftover
        pool, strays (-1) may roam the whole chip."""
        counts = {0: 10, 1: 10}
        partition = engine._build_partition(counts)
        workers = frozenset(engine.worker_cores)
        assert len(partition[0]) == len(partition[1]) == 8
        assert partition[0].isdisjoint(partition[1])
        assert partition[0] | partition[1] == workers
        assert partition[-1] == workers

    def test_all_stray_pool_used_for_unknown_threads(self, engine):
        """_allowed_for falls back to the -1 pool for threads whose type
        was never counted (the stray path)."""
        counts = {0: 100, 1: 1}
        engine._partition = engine._build_partition(counts)
        engine._thread_type_key = {0: 0}  # thread 0 known, others stray
        assert engine._allowed_for(0) == engine._partition[0]
        assert engine._allowed_for(999) == engine._partition[-1]

    def test_partition_always_covers_every_small_type(self, engine):
        """Mixed regime: two big types plus several small ones — small
        types all land in one shared pool, and regions never overlap."""
        counts = {0: 40, 1: 40, 2: 1, 3: 1, 4: 1}
        partition = engine._build_partition(counts)
        assert partition[2] == partition[3] == partition[4] == partition[-1]
        assert len(partition[-1]) >= 2
        assert partition[0].isdisjoint(partition[1])
        # Big-type regions never overlap the stray pool.
        assert partition[0].isdisjoint(partition[-1])
        assert partition[1].isdisjoint(partition[-1])

    def test_slicc_pp_reserves_scout_core(self, smoke_tpcc):
        """SLICC-Pp partitions only the 15 worker cores (core 15 scouts)."""
        engine = ReplayEngine(smoke_tpcc, SimConfig(variant="slicc-pp"))
        counts = {0: 10, 1: 10}
        partition = engine._build_partition(counts)
        scout = engine.config.system.n_cores - 1
        for region in partition.values():
            assert scout not in region
