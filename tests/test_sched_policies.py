"""Tests for the scheduling-policy subsystem (``repro.sched``).

Covers the registry contract (unknown names fail loudly, every
registered policy simulates end-to-end), the extension policies'
semantics (tmi migrates without broadcasting, affinity never migrates,
random-migrate is deterministic), and the idle-core adoption path: the
IDLE_CORE rung of the SLICC migration decision resets the *target*
agent's MissCounter while the SEGMENT_MATCH rung leaves it frozen.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.exp.store import result_to_json
from repro.params import ScalePreset
from repro.sched import (
    SchedulingPolicy,
    get_policy,
    has_policy,
    policy_descriptions,
    policy_names,
    register_policy,
)
from repro.sim.engine import (
    SLICC_VARIANTS,
    VARIANTS,
    ReplayEngine,
    SimConfig,
    simulate,
)
from repro.workloads import standard_trace


@pytest.fixture(scope="module")
def smoke_trace():
    return standard_trace("tpcc-1", ScalePreset.SMOKE, seed=3)


@pytest.fixture(scope="module")
def phased_trace():
    return standard_trace("phased", ScalePreset.SMOKE, seed=3)


class TestRegistry:
    def test_legacy_variants_come_first(self):
        """The deprecated VARIANTS tuple is a prefix of the registry, so
        positional assumptions in older callers keep holding."""
        assert policy_names()[: len(VARIANTS)] == VARIANTS

    def test_extension_policies_registered(self):
        assert {"tmi", "affinity", "random-migrate"} <= set(policy_names())

    def test_unknown_policy_is_config_error(self):
        with pytest.raises(ConfigurationError):
            get_policy("fifo-9000")
        assert not has_policy("fifo-9000")

    def test_unknown_variant_rejected_by_config(self):
        with pytest.raises(ConfigurationError):
            SimConfig(variant="fifo-9000")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_policy(get_policy("slicc"))

    def test_unnamed_policy_rejected(self):
        class Nameless(SchedulingPolicy):
            pass

        with pytest.raises(ConfigurationError):
            register_policy(Nameless)

    def test_every_policy_has_a_description(self):
        for name, description in policy_descriptions().items():
            assert description, f"policy {name!r} has no description"

    def test_legacy_flags_match_deprecated_tuples(self):
        """The capability flags reproduce the old membership tuples."""
        for name in VARIANTS:
            cls = get_policy(name)
            assert cls.slicc_machinery == (name in SLICC_VARIANTS)
            assert cls.time_multiplexes == (name == "steps")


class TestEveryPolicySimulates:
    @pytest.mark.parametrize("policy", policy_names())
    def test_smoke_run_completes(self, smoke_trace, policy):
        result = simulate(smoke_trace, variant=policy)
        assert result.threads_completed == len(smoke_trace.threads)
        assert result.cycles > 0
        assert result.variant == policy

    @pytest.mark.parametrize("policy", ("tmi", "affinity", "random-migrate"))
    def test_extensions_on_phased(self, phased_trace, policy):
        result = simulate(phased_trace, variant=policy)
        assert result.threads_completed == len(phased_trace.threads)


class TestExtensionSemantics:
    def test_tmi_migrates_without_broadcasting(self, smoke_trace):
        result = simulate(smoke_trace, variant="tmi")
        assert result.migrations > 0
        # No Q.3 machinery: every migration is an idle-core hop and no
        # remote segment search is ever broadcast.
        assert result.broadcasts == 0
        assert result.idle_core_migrations == result.migrations

    def test_affinity_never_migrates(self, smoke_trace):
        result = simulate(smoke_trace, variant="affinity")
        assert result.migrations == 0
        assert result.context_switches == 0
        # The static partition is reported like the team variants'.
        assert result.teams_completed > 0

    def test_affinity_restricts_placement_to_partition(self, smoke_trace):
        engine = ReplayEngine(smoke_trace, SimConfig(variant="affinity"))
        assert engine._partition is not None
        for thread in smoke_trace.threads:
            allowed = engine._allowed_for(thread.thread_id)
            assert allowed <= engine._worker_set
        engine.run()

    def test_random_migrate_is_deterministic(self, smoke_trace):
        a = simulate(smoke_trace, variant="random-migrate")
        b = simulate(smoke_trace, variant="random-migrate")
        assert result_to_json(a) == result_to_json(b)
        assert a.migrations > 0

    def test_extension_policies_differ_from_base_and_each_other(
        self, smoke_trace
    ):
        base = simulate(smoke_trace, variant="base")
        tmi = simulate(smoke_trace, variant="tmi")
        rnd = simulate(smoke_trace, variant="random-migrate")
        assert tmi.cycles != base.cycles
        assert rnd.cycles != base.cycles
        assert tmi.cycles != rnd.cycles

    def test_quantum_hooks_stay_out_of_the_record_loop(self, smoke_trace):
        """Extension policies must not reintroduce per-record dispatch:
        the engine consults them at most once per quantum."""
        config = SimConfig(variant="tmi")
        engine = ReplayEngine(smoke_trace, config)
        calls = 0
        quantum_end = engine.policy.quantum_end

        def counting_quantum_end(core):
            nonlocal calls
            calls += 1
            return quantum_end(core)

        engine.policy.quantum_end = counting_quantum_end
        # Rebind the hoisted hook reference the way run() reads it.
        engine._policy_quantum_hook = True
        engine.run()
        total_records = smoke_trace.total_records
        quanta_lower_bound = total_records // config.quantum
        # One call per quantum at most (plus scheduling-event slack),
        # nowhere near one per record.
        assert calls <= quanta_lower_bound + 10 * len(smoke_trace.threads)
        assert calls < total_records / 2


class TestRegistryDrivenSurfaces:
    """New policies surface in the CLI and spec files without edits."""

    def test_cli_variant_choices_track_registry(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "phased", "--variants", "affinity", "tmi",
             "random-migrate"]
        )
        assert args.variants == ["affinity", "tmi", "random-migrate"]

    def test_cli_rejects_unregistered_variant(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "phased", "--variants", "fifo-9000"]
            )

    def test_spec_file_accepts_extension_policy(self, tmp_path):
        import json

        from repro.exp import load_spec_file

        path = tmp_path / "tmi.json"
        path.write_text(json.dumps(
            {"workload": "tpcc-1", "scale": "smoke", "variant": "tmi"}
        ))
        specs, baseline = load_spec_file(path)
        assert [spec.variant for spec in specs] == ["tmi"]

    def test_spec_file_rejects_unknown_policy(self, tmp_path):
        import json

        from repro.exp import load_spec_file

        path = tmp_path / "bad.json"
        path.write_text(json.dumps(
            {"workload": "tpcc-1", "variant": "fifo-9000"}
        ))
        with pytest.raises(ConfigurationError):
            load_spec_file(path)


class TestIdleCoreAdoption:
    """The IDLE_CORE migration rung resets the target agent's MC (the
    idle cache adopts the incoming segment); the SEGMENT_MATCH rung
    leaves the target's MC frozen (the segment is already there)."""

    def _armed_engine(self, smoke_trace, presence_mask: int):
        engine = ReplayEngine(smoke_trace, SimConfig(variant="slicc"))
        agent = engine.agents[0]
        engine.running[0] = 0
        params = engine.config.slicc
        for _ in range(params.fill_up_t):
            agent.mc.record_miss()
        for _ in range(params.dilution_t):
            agent.msv.record(True)
        for _ in range(params.matched_t):
            agent.mtq.record(presence_mask)
        assert agent.migration_enabled
        return engine, agent

    def test_idle_core_migration_resets_target_mc(self, smoke_trace):
        engine, agent = self._armed_engine(smoke_trace, presence_mask=0)
        # Pre-fill every possible target so the reset is observable.
        for other in engine.worker_cores[1:]:
            engine.agents[other].mc.record_miss()
        assert engine._evaluate_migration(0, agent) is True
        target = engine._pending_target
        assert target is not None and target != 0
        assert engine.agents[target].mc.count == 0, (
            "idle-core adoption must unfreeze the target's fill path"
        )

    def test_segment_match_keeps_target_mc_frozen(self, smoke_trace):
        # Presence mask names core 2: the MTQ AND yields a segment match.
        engine, agent = self._armed_engine(smoke_trace, presence_mask=1 << 2)
        for _ in range(5):
            engine.agents[2].mc.record_miss()
        assert engine._evaluate_migration(0, agent) is True
        assert engine._pending_target == 2
        assert engine.agents[2].mc.count == 5, (
            "a segment-match target's MC must stay frozen — its cache "
            "already holds the segment"
        )

    def test_stay_decision_stages_no_target(self, smoke_trace):
        engine, agent = self._armed_engine(smoke_trace, presence_mask=0)
        # Make every other core non-idle so the idle rung has no
        # candidates: queue one thread everywhere.
        for i, core in enumerate(engine.worker_cores[1:], start=1):
            engine.queues.enqueue(core, i)
        engine._pending_target = None
        assert engine._evaluate_migration(0, agent) is False
        assert engine._pending_target is None
        # STAY resets the local trackers (the cache refills in place).
        assert agent.mc.count == 0
