"""Tests for the reuse analysis, sweeps and report formatting."""

import numpy as np
import pytest

from repro.analysis import (
    format_table,
    global_reuse,
    paper_vs_measured,
    per_transaction_reuse,
    sweep_dilution,
)
from repro.params import ScalePreset
from repro.workloads import standard_trace
from repro.workloads.trace import KIND_INSTR, Trace, ThreadTrace


def make_trace(streams, types):
    threads = [
        ThreadTrace(
            thread_id=i,
            txn_type=types[i],
            addr=np.array(stream, dtype=np.int64),
            kind=np.zeros(len(stream), dtype=np.int8) + KIND_INSTR,
        )
        for i, stream in enumerate(streams)
    ]
    return Trace(
        workload="synthetic", threads=threads,
        instructions_per_iblock=12, seed=0,
    )


class TestReuse:
    def test_disjoint_blocks_all_single(self):
        trace = make_trace([[1, 2], [3, 4]], [0, 1])
        breakdown = global_reuse(trace)
        assert breakdown.single == pytest.approx(1.0)

    def test_fully_shared_blocks_all_most(self):
        trace = make_trace([[1, 2], [1, 2], [1, 2]], [0, 0, 0])
        breakdown = global_reuse(trace)
        assert breakdown.most == pytest.approx(1.0)

    def test_fractions_sum_to_one(self, smoke_tpcc):
        b = global_reuse(smoke_tpcc)
        assert b.single + b.few + b.most == pytest.approx(1.0)

    def test_per_transaction_sharing_exceeds_global(self):
        """The Figure 3 headline: same-type threads share more."""
        trace = standard_trace("tpcc-1", ScalePreset.SMOKE, n_threads=12)
        global_b = global_reuse(trace)
        per_txn = per_transaction_reuse(trace)
        assert per_txn.most >= global_b.most

    def test_per_transaction_mostly_shared_on_tpcc(self):
        # One-thread type groups contribute "single" accesses, so the
        # fraction rises with thread count; the CI-scale bench reproduces
        # the paper's ~98%, here we check the structural property.
        trace = standard_trace("tpcc-1", ScalePreset.SMOKE, n_threads=24)
        per_txn = per_transaction_reuse(trace)
        assert per_txn.most > 0.8


class TestSweeps:
    def test_dilution_sweep_rows(self, smoke_tpcc):
        points = sweep_dilution(smoke_tpcc, dilution_values=[5, 10])
        assert [p.dilution_t for p in points] == [5, 10]
        assert all(p.i_mpki >= 0 for p in points)
        assert all(p.speedup > 0 for p in points)


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "2.500" in out and "3.250" in out

    def test_paper_vs_measured_line(self):
        line = paper_vs_measured("speedup", 1.68, 1.2)
        assert "paper=1.680" in line and "measured=1.200" in line
