"""Tests for thread queues and the dynamic team scheduler."""

import pytest

from repro.core import TeamScheduler, ThreadQueues
from repro.errors import SimulationError


class TestThreadQueues:
    def test_fifo_order(self):
        q = ThreadQueues(2)
        q.enqueue(0, 10)
        q.enqueue(0, 11)
        assert q.dequeue(0) == 10
        assert q.dequeue(0) == 11

    def test_empty_dequeue_returns_none(self):
        q = ThreadQueues(2)
        assert q.dequeue(1) is None

    def test_double_enqueue_rejected(self):
        q = ThreadQueues(2)
        q.enqueue(0, 1)
        with pytest.raises(SimulationError):
            q.enqueue(1, 1)

    def test_least_congested_prefers_shortest(self):
        q = ThreadQueues(3)
        q.enqueue(0, 1)
        q.enqueue(0, 2)
        q.enqueue(1, 3)
        assert q.least_congested() == 2

    def test_least_congested_restricted(self):
        q = ThreadQueues(3)
        q.enqueue(2, 1)
        assert q.least_congested(allowed=[0, 2]) == 0

    def test_steal_tail_takes_newest(self):
        q = ThreadQueues(2)
        q.enqueue(0, 1)
        q.enqueue(0, 2)
        assert q.steal_tail(0) == 2
        assert q.dequeue(0) == 1

    def test_steal_empty_returns_none(self):
        q = ThreadQueues(2)
        assert q.steal_tail(0) is None

    def test_stolen_thread_can_requeue(self):
        q = ThreadQueues(2)
        q.enqueue(0, 1)
        t = q.steal_tail(0)
        q.enqueue(1, t)  # must not raise
        assert q.depth(1) == 1

    def test_deepest_cores_ordering(self):
        q = ThreadQueues(3)
        for t in (1, 2, 3):
            q.enqueue(2, t)
        q.enqueue(0, 4)
        assert q.deepest_cores(min_depth=1) == [2, 0]

    def test_total_waiting(self):
        q = ThreadQueues(2)
        q.enqueue(0, 1)
        q.enqueue(1, 2)
        assert q.total_waiting() == 2


class TestTeamScheduler:
    """The dynamic team-formation algorithm of Section 4.3.2.

    The replay engine defaults to the static type-partition (see
    engine docs); TeamScheduler remains the library's implementation of
    the paper's dynamic grouping rules and is validated here.
    """

    def test_large_group_forms_team_on_all_free_cores(self):
        ts = TeamScheduler(list(range(16)))
        q = ThreadQueues(16)
        for i in range(24):  # >= 1.5 * 16
            ts.thread_arrived(i, type_key=0, arrival=i)
        dispatches = ts.dispatch(q, idle_cores=list(range(16)))
        assert len(dispatches) == 24
        team_cores = {ts.allowed_cores(d.thread_id) for d in dispatches}
        assert team_cores == {frozenset(range(16))}

    def test_small_groups_are_strays_limited_to_idle(self):
        ts = TeamScheduler(list(range(16)), small_threshold=8)
        q = ThreadQueues(16)
        for i in range(3):
            ts.thread_arrived(i, type_key=i, arrival=i)
        dispatches = ts.dispatch(q, idle_cores=[4, 5])
        assert len(dispatches) == 2  # only as many as idle cores
        assert all(ts.allowed_cores(d.thread_id) is None for d in dispatches)

    def test_two_medium_teams_get_disjoint_cores(self):
        ts = TeamScheduler(list(range(16)), small_threshold=5)
        q = ThreadQueues(16)
        for i in range(10):
            ts.thread_arrived(i, type_key=0, arrival=i)
        for i in range(10, 20):
            ts.thread_arrived(i, type_key=1, arrival=i)
        dispatches = ts.dispatch(q, idle_cores=list(range(16)))
        cores0 = ts.allowed_cores(0)
        cores1 = ts.allowed_cores(10)
        assert cores0 and cores1
        assert not (cores0 & cores1)

    def test_absorption_into_active_team(self):
        ts = TeamScheduler(list(range(16)), small_threshold=5)
        q = ThreadQueues(16)
        for i in range(8):
            ts.thread_arrived(i, type_key=0, arrival=i)
        ts.dispatch(q, idle_cores=list(range(16)))
        ts.thread_arrived(99, type_key=0, arrival=99)
        dispatches = ts.dispatch(q, idle_cores=[])
        assert [d.thread_id for d in dispatches] == [99]
        assert ts.allowed_cores(99) == ts.allowed_cores(0)

    def test_team_completion_detected(self):
        ts = TeamScheduler(list(range(4)), small_threshold=2)
        q = ThreadQueues(4)
        ts.thread_arrived(0, 0, 0)
        ts.thread_arrived(1, 0, 1)
        ts.dispatch(q, idle_cores=list(range(4)))
        assert not ts.thread_completed(0)
        assert ts.thread_completed(1)
        assert ts.teams_completed == 1

    def test_stray_completion_returns_false(self):
        ts = TeamScheduler(list(range(4)))
        assert not ts.thread_completed(123)

    def test_needs_worker_cores(self):
        with pytest.raises(SimulationError):
            TeamScheduler([])
