"""Tests for workload specs and the trace generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.params import ScalePreset
from repro.workloads import (
    KIND_INSTR,
    KIND_LOAD,
    KIND_STORE,
    DataSpec,
    PathStep,
    TransactionTypeSpec,
    WorkloadSpec,
    generate_trace,
    get_workload,
    layout_segments,
    standard_trace,
    workload_names,
)
from repro.workloads.generator import segment_fetch_order
from repro.workloads.spec import DATA_BLOCK_BASE


class TestSpecValidation:
    def test_layout_segments_non_overlapping(self):
        segs = layout_segments([100, 200, 50])
        for a, b in zip(segs, segs[1:]):
            assert a.base_block + a.n_blocks <= b.base_block

    def test_empty_path_rejected(self):
        with pytest.raises(ConfigurationError):
            TransactionTypeSpec(0, "t", 1.0, path=())

    def test_bad_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            PathStep(seg_id=0, probability=1.5)

    def test_unknown_segment_rejected(self):
        segs = tuple(layout_segments([10]))
        txn = TransactionTypeSpec(0, "t", 1.0, (PathStep(seg_id=5),))
        with pytest.raises(ConfigurationError):
            WorkloadSpec(name="w", segments=segs, txn_types=(txn,))

    def test_data_fraction_overflow_rejected(self):
        with pytest.raises(ConfigurationError):
            DataSpec(hot_private_frac=0.7, shared_frac=0.5)

    def test_type_mix_normalised(self):
        spec = get_workload("tpcc-1")
        assert sum(spec.type_mix()) == pytest.approx(1.0)


class TestStandardWorkloads:
    def test_registered_workloads_in_order(self):
        assert workload_names() == [
            "tpcc-1",
            "tpcc-10",
            "tpce",
            "mapreduce",
            "webserve",
            "phased",
        ]

    def test_unknown_workload_raises(self):
        with pytest.raises(ConfigurationError):
            get_workload("tpch")

    def test_tpcc_footprint_exceeds_one_l1(self):
        spec = get_workload("tpcc-1", ScalePreset.CI)
        assert spec.footprint_blocks() > 512  # > one 32KB L1-I

    def test_tpcc_total_fits_pif_cache(self):
        spec = get_workload("tpcc-1", ScalePreset.CI)
        assert spec.footprint_blocks() < 8192  # < 512KB

    def test_mapreduce_fits_one_l1(self):
        spec = get_workload("mapreduce", ScalePreset.CI)
        assert spec.footprint_blocks() <= 512

    def test_tpcc10_same_code_different_data(self):
        one = get_workload("tpcc-1", ScalePreset.CI)
        ten = get_workload("tpcc-10", ScalePreset.CI)
        assert one.segments == ten.segments
        assert one.data != ten.data

    def test_types_start_with_distinct_segments(self):
        """SLICC-Pp's scout relies on type-distinct entry code."""
        for name in ("tpcc-1", "tpce"):
            spec = get_workload(name, ScalePreset.CI)
            entries = {t.path[0].seg_id for t in spec.txn_types}
            assert len(entries) == len(spec.txn_types)


class TestGenerator:
    def test_deterministic_given_seed(self):
        a = standard_trace("tpcc-1", ScalePreset.SMOKE, seed=11)
        b = standard_trace("tpcc-1", ScalePreset.SMOKE, seed=11)
        for ta, tb in zip(a.threads, b.threads):
            assert np.array_equal(ta.addr, tb.addr)
            assert np.array_equal(ta.kind, tb.kind)

    def test_different_seeds_differ(self):
        a = standard_trace("tpcc-1", ScalePreset.SMOKE, seed=1)
        b = standard_trace("tpcc-1", ScalePreset.SMOKE, seed=2)
        assert any(
            not np.array_equal(ta.addr, tb.addr)
            for ta, tb in zip(a.threads, b.threads)
        )

    def test_every_weighted_type_present(self):
        trace = standard_trace("tpcc-1", ScalePreset.SMOKE, n_threads=8)
        assert trace.types_present() == [0, 1, 2, 3, 4]

    def test_instruction_blocks_within_segments(self):
        spec = get_workload("tpcc-1", ScalePreset.SMOKE)
        trace = generate_trace(spec, n_threads=4, seed=5)
        valid = set()
        for seg in spec.segments:
            valid.update(range(seg.base_block, seg.base_block + seg.n_blocks))
        for thread in trace.threads:
            instr = thread.addr[thread.kind == KIND_INSTR]
            assert set(int(b) for b in np.unique(instr)) <= valid

    def test_data_blocks_disjoint_from_instructions(self):
        trace = standard_trace("tpcc-1", ScalePreset.SMOKE)
        for thread in trace.threads:
            data = thread.addr[thread.kind != KIND_INSTR]
            if len(data):
                assert int(data.min()) >= DATA_BLOCK_BASE // 2

    def test_store_fraction_near_spec(self):
        spec = get_workload("tpcc-1", ScalePreset.CI)
        trace = generate_trace(spec, n_threads=8, seed=3)
        stores = loads = 0
        for thread in trace.threads:
            stores += int((thread.kind == KIND_STORE).sum())
            loads += int((thread.kind == KIND_LOAD).sum())
        frac = stores / (stores + loads)
        assert abs(frac - spec.data.store_frac) < 0.05

    def test_total_instructions_accounting(self):
        trace = standard_trace("tpcc-1", ScalePreset.SMOKE)
        records = sum(t.n_instruction_records for t in trace.threads)
        assert trace.total_instructions == records * trace.instructions_per_iblock

    def test_rejects_nonpositive_threads(self):
        spec = get_workload("tpcc-1", ScalePreset.SMOKE)
        with pytest.raises(ConfigurationError):
            generate_trace(spec, n_threads=0)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=12))
    def test_thread_count_respected(self, n):
        spec = get_workload("mapreduce", ScalePreset.SMOKE)
        trace = generate_trace(spec, n_threads=n, seed=1)
        assert len(trace.threads) == n


class TestFetchOrder:
    def test_permutation_of_segment_blocks(self):
        order = segment_fetch_order("w", 0, base_block=100, n_blocks=64)
        assert sorted(order) == list(range(100, 164))

    def test_stable_across_calls(self):
        a = segment_fetch_order("w2", 1, 0, 128)
        b = segment_fetch_order("w2", 1, 0, 128)
        assert np.array_equal(a, b)

    def test_contains_sequential_runs_and_jumps(self):
        order = segment_fetch_order("w3", 2, 0, 448)
        deltas = np.diff(order)
        sequential = int((deltas == 1).sum())
        jumps = int((deltas != 1).sum())
        assert sequential > jumps  # mostly sequential runs...
        assert jumps > 20  # ...but with plenty of branches
