"""Tests for the partial-address bloom-filter cache signature."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import SetAssociativeCache
from repro.core import BloomSignature
from repro.errors import ConfigurationError
from repro.params import CacheParams


def make_pair(bits=512, size=4 * 1024, assoc=4):
    cache = SetAssociativeCache(CacheParams(size_bytes=size, assoc=assoc))
    sig = BloomSignature(bits, cache)
    cache.on_evict = sig.on_evict
    return cache, sig


def wired_access(cache, sig, block):
    result = cache.access(block)
    if not result.hit:
        sig.insert(block)
    return result


class TestBasics:
    def test_insert_then_probe(self):
        cache, sig = make_pair()
        wired_access(cache, sig, 5)
        assert sig.probe(5)

    def test_absent_block_usually_absent(self):
        _, sig = make_pair()
        assert not sig.probe(5)

    def test_no_false_negatives_on_small_fill(self):
        cache, sig = make_pair()
        for b in range(32):
            wired_access(cache, sig, b)
        for b in range(32):
            assert sig.probe(b)

    def test_eviction_clears_bit(self):
        cache, sig = make_pair(assoc=1)
        n_sets = cache.n_sets
        wired_access(cache, sig, 0)
        # Same cache set as block 0, but a distinct filter index (the
        # filter has more bits than the cache has sets), so the eviction
        # of 0 must clear its bit.
        wired_access(cache, sig, n_sets)
        assert not sig.probe(0)

    def test_eviction_keeps_bit_on_filter_collision(self):
        cache, sig = make_pair(bits=512, assoc=2)
        # bits=512: blocks 0 and 512 share filter index 0 *and* live in
        # the same set; evicting one must keep the bit for the survivor.
        wired_access(cache, sig, 0)
        wired_access(cache, sig, 512)
        cache.invalidate(0)
        assert sig.probe(512)

    def test_rejects_bits_below_set_count(self):
        cache = SetAssociativeCache(CacheParams(size_bytes=32 * 1024, assoc=8))
        with pytest.raises(ConfigurationError):
            BloomSignature(32, cache)

    def test_rejects_non_power_of_two(self):
        cache = SetAssociativeCache(CacheParams(size_bytes=4 * 1024, assoc=4))
        with pytest.raises(ConfigurationError):
            BloomSignature(500, cache)

    def test_rebuild_matches_contents(self):
        cache, sig = make_pair()
        for b in range(100):
            wired_access(cache, sig, b)
        sig.rebuild()
        for b in cache.resident_blocks():
            assert sig.probe(b)


class TestNoFalseNegativesProperty:
    """The signature is a superset of the cache: a resident block must
    always probe positive — SLICC's migration predictor relies on it."""

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=4095), max_size=400))
    def test_resident_implies_probe(self, stream):
        cache, sig = make_pair(bits=512)
        for block in stream:
            wired_access(cache, sig, block)
        for block in cache.resident_blocks():
            assert sig.probe(block)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=4095), max_size=300))
    def test_accuracy_improves_with_size(self, stream):
        small_cache, small_sig = make_pair(bits=128)
        big_cache, big_sig = make_pair(bits=4096)
        for block in stream:
            wired_access(small_cache, small_sig, block)
            wired_access(big_cache, big_sig, block)
        probes = range(0, 4096, 7)
        small_ok = sum(small_sig.agreement_check(b) for b in probes)
        big_ok = sum(big_sig.agreement_check(b) for b in probes)
        assert big_ok >= small_ok
