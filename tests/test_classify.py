"""Tests for three-C miss classification (Figure 1 substrate)."""

import pytest

from repro.cache import MissClass, MissClassifier, SetAssociativeCache
from repro.params import CacheParams


class TestClassifier:
    def test_first_touch_is_compulsory(self):
        c = MissClassifier(capacity_blocks=4)
        assert c.observe(1, hit=False) is MissClass.COMPULSORY

    def test_hit_returns_none(self):
        c = MissClassifier(capacity_blocks=4)
        c.observe(1, hit=False)
        assert c.observe(1, hit=True) is None

    def test_capacity_miss_when_shadow_also_evicted(self):
        c = MissClassifier(capacity_blocks=2)
        c.observe(1, hit=False)
        c.observe(2, hit=False)
        c.observe(3, hit=False)  # evicts 1 from the shadow
        assert c.observe(1, hit=False) is MissClass.CAPACITY

    def test_conflict_miss_when_shadow_retains(self):
        c = MissClassifier(capacity_blocks=8)
        c.observe(1, hit=False)
        c.observe(2, hit=False)
        # Real cache missed (set conflict) but the fully-assoc shadow of
        # capacity 8 still holds block 1.
        assert c.observe(1, hit=False) is MissClass.CONFLICT

    def test_counts_and_total(self):
        c = MissClassifier(capacity_blocks=2)
        c.observe(1, hit=False)
        c.observe(2, hit=False)
        c.observe(1, hit=False)
        assert c.total_misses == 3
        assert c.counts[MissClass.COMPULSORY] == 2

    def test_mpki(self):
        c = MissClassifier(capacity_blocks=2)
        c.observe(1, hit=False)
        assert c.mpki(MissClass.COMPULSORY, instructions=1000) == 1.0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            MissClassifier(capacity_blocks=0)


class TestAgainstRealCache:
    def test_direct_mapped_conflicts_detected(self):
        """A direct-mapped cache over an alternating two-block stream that
        maps to one set produces conflict misses, not capacity misses."""
        params = CacheParams(size_bytes=1024, assoc=1)
        cache = SetAssociativeCache(params)
        classifier = MissClassifier(params.n_blocks)
        a, b = 0, params.n_sets  # same set, direct mapped
        for _ in range(10):
            for block in (a, b):
                result = cache.access(block)
                classifier.observe(block, result.hit)
        assert classifier.counts[MissClass.COMPULSORY] == 2
        assert classifier.counts[MissClass.CONFLICT] == 18
        assert classifier.counts[MissClass.CAPACITY] == 0

    def test_cyclic_overflow_is_capacity(self):
        """A cyclic stream 1.5x the cache produces capacity misses under
        full associativity pressure — the OLTP instruction pattern."""
        params = CacheParams(size_bytes=1024, assoc=4)
        cache = SetAssociativeCache(params)
        classifier = MissClassifier(params.n_blocks)
        footprint = int(params.n_blocks * 1.5)
        for _ in range(5):
            for block in range(footprint):
                result = cache.access(block)
                classifier.observe(block, result.hit)
        counts = classifier.counts
        assert counts[MissClass.CAPACITY] > counts[MissClass.CONFLICT]
        assert counts[MissClass.COMPULSORY] == footprint
