"""Unit + property tests for the replacement policies (Figure 2 set)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import SetAssociativeCache
from repro.cache.policies import make_policy, policy_names
from repro.params import CacheParams

ALL_POLICIES = ["lru", "lip", "bip", "dip", "srrip", "brrip", "drrip"]


def make(policy, size=4 * 1024, assoc=4):
    return SetAssociativeCache(
        CacheParams(size_bytes=size, assoc=assoc, policy=policy)
    )


class TestRegistry:
    def test_all_seven_policies_registered(self):
        assert set(ALL_POLICIES) <= set(policy_names())

    def test_unknown_policy_raises(self):
        with pytest.raises(KeyError):
            make_policy("clock", 16, 4)


@pytest.mark.parametrize("policy", ALL_POLICIES)
class TestPolicyContract:
    """Behavioural contract every policy must obey."""

    def test_resident_block_always_hits(self, policy):
        cache = make(policy)
        cache.access(0)
        assert cache.access(0).hit

    def test_full_set_evicts_exactly_one(self, policy):
        cache = make(policy, assoc=2)
        n_sets = cache.n_sets
        cache.access(0)
        cache.access(n_sets)
        result = cache.access(2 * n_sets)
        assert result.victim in (0, n_sets)

    def test_occupancy_bounded(self, policy):
        cache = make(policy)
        for b in range(500):
            cache.access(b)
        assert cache.occupancy() <= cache.params.n_blocks

    def test_invalidate_then_refill(self, policy):
        cache = make(policy)
        cache.access(3)
        cache.invalidate(3)
        assert not cache.access(3).hit
        assert cache.access(3).hit

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=255), max_size=300))
    def test_random_streams_keep_invariants(self, policy, stream):
        cache = make(policy, assoc=4)
        resident = set()
        for block in stream:
            result = cache.access(block)
            assert result.hit == (block in resident)
            if not result.hit:
                resident.add(block)
                if result.victim is not None:
                    resident.discard(result.victim)
        assert resident == set(cache.resident_blocks())


class TestThrashBehaviour:
    """LIP/BIP must beat LRU on a cyclic working set larger than the
    cache — the scenario Qureshi et al. designed them for, and the reason
    the paper evaluates them (Section 2.1.2)."""

    def _cyclic_misses(self, policy, laps=40):
        cache = make(policy, size=4 * 1024, assoc=4)
        footprint = int(cache.params.n_blocks * 1.5)
        for _ in range(laps):
            for b in range(footprint):
                cache.access(b * cache.n_sets)  # same set pressure
        return cache.stats.misses

    def test_lip_beats_lru_on_thrash(self):
        assert self._cyclic_misses("lip") < self._cyclic_misses("lru")

    def test_bip_beats_lru_on_thrash(self):
        assert self._cyclic_misses("bip") < self._cyclic_misses("lru")

    def test_brrip_beats_srrip_on_thrash(self):
        assert self._cyclic_misses("brrip") < self._cyclic_misses("srrip")

    def test_lru_perfect_on_fitting_set(self):
        cache = make("lru")
        blocks = range(cache.params.n_blocks)
        for _ in range(3):
            for b in blocks:
                cache.access(b)
        # Only the cold pass misses.
        assert cache.stats.misses == cache.params.n_blocks


class TestDueling:
    def test_dip_tracks_winner_on_thrash(self):
        # On a thrashing stream DIP should not do worse than LRU by more
        # than the leader-set overhead.
        lru = make("lru", assoc=4)
        dip = make("dip", assoc=4)
        footprint = int(lru.params.n_blocks * 1.5)
        for _ in range(30):
            for b in range(footprint):
                lru.access(b)
                dip.access(b)
        assert dip.stats.misses <= lru.stats.misses * 1.05

    def test_drrip_prefers_brrip_on_thrash(self):
        cache = make("drrip", assoc=4)
        footprint = int(cache.params.n_blocks * 1.5)
        for _ in range(30):
            for b in range(footprint):
                cache.access(b)
        # The paper observes DRRIP choosing BRRIP for OLTP-like thrash.
        assert cache.policy.chose_brrip_fraction() == 1.0
