"""Property-based integration tests on the replay engine.

Random miniature workloads, replayed under every variant, must preserve
the conservation invariants that hold regardless of scheduling: access
totals, completion counts, and determinism.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import SimConfig, simulate
from repro.workloads import (
    DataSpec,
    PathStep,
    TransactionTypeSpec,
    WorkloadSpec,
    generate_trace,
    layout_segments,
)

workload_params = st.fixed_dictionaries(
    {
        "n_segments": st.integers(min_value=1, max_value=4),
        "seg_blocks": st.integers(min_value=8, max_value=96),
        "n_types": st.integers(min_value=1, max_value=3),
        "path_len": st.integers(min_value=1, max_value=4),
        "n_threads": st.integers(min_value=2, max_value=10),
        "seed": st.integers(min_value=0, max_value=2**16),
    }
)


def build_trace(p):
    segments = layout_segments([p["seg_blocks"]] * p["n_segments"])
    types = []
    for t in range(p["n_types"]):
        path = tuple(
            PathStep(seg_id=(t + i) % p["n_segments"], inner_iterations=1)
            for i in range(p["path_len"])
        )
        types.append(
            TransactionTypeSpec(type_id=t, name=f"t{t}", weight=1.0, path=path)
        )
    spec = WorkloadSpec(
        name="prop",
        segments=tuple(segments),
        txn_types=tuple(types),
        data=DataSpec(accesses_per_iblock=0.3),
    )
    return generate_trace(spec, n_threads=p["n_threads"], seed=p["seed"])


@settings(max_examples=15, deadline=None)
@given(workload_params)
def test_access_conservation_across_variants(p):
    """Scheduling moves accesses between cores but conserves totals."""
    trace = build_trace(p)
    base = simulate(trace, variant="base")
    for variant in ("slicc", "slicc-sw"):
        r = simulate(trace, variant=variant)
        assert r.i_accesses == base.i_accesses
        assert r.d_accesses == base.d_accesses
        assert r.threads_completed == len(trace.threads)
        assert r.instructions == base.instructions


@settings(max_examples=10, deadline=None)
@given(workload_params)
def test_engine_determinism(p):
    trace = build_trace(p)
    a = simulate(trace, variant="slicc")
    b = simulate(trace, variant="slicc")
    assert (a.cycles, a.i_misses, a.d_misses, a.migrations) == (
        b.cycles,
        b.i_misses,
        b.d_misses,
        b.migrations,
    )


@settings(max_examples=10, deadline=None)
@given(workload_params, st.integers(min_value=1, max_value=200))
def test_quantum_does_not_break_completion(p, quantum):
    """Any quantum size must still complete every thread."""
    trace = build_trace(p)
    r = simulate(trace, config=SimConfig(variant="slicc", quantum=quantum))
    assert r.threads_completed == len(trace.threads)


@settings(max_examples=10, deadline=None)
@given(workload_params)
def test_miss_bounds(p):
    """Misses can never exceed accesses; MPKI is finite and non-negative."""
    trace = build_trace(p)
    for variant in ("base", "nextline", "slicc"):
        r = simulate(trace, variant=variant)
        assert 0 <= r.i_misses <= r.i_accesses
        assert 0 <= r.d_misses <= r.d_accesses
        assert r.i_mpki >= 0 and r.d_mpki >= 0
