"""Tests for trace containers and the results dataclass."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.sim.results import SimulationResult
from repro.workloads.trace import (
    KIND_INSTR,
    KIND_LOAD,
    KIND_STORE,
    Trace,
    ThreadTrace,
)


def make_thread(thread_id=0, txn_type=0, addrs=(1, 2, 3), kinds=None):
    addrs = np.array(addrs, dtype=np.int64)
    if kinds is None:
        kinds = np.zeros(len(addrs), dtype=np.int8) + KIND_INSTR
    else:
        kinds = np.array(kinds, dtype=np.int8)
    return ThreadTrace(thread_id=thread_id, txn_type=txn_type, addr=addrs, kind=kinds)


class TestThreadTrace:
    def test_length_mismatch_rejected(self):
        with pytest.raises(TraceError):
            ThreadTrace(
                0, 0,
                addr=np.array([1, 2], dtype=np.int64),
                kind=np.array([0], dtype=np.int8),
            )

    def test_record_counts(self):
        t = make_thread(addrs=(1, 2, 3), kinds=(KIND_INSTR, KIND_LOAD, KIND_STORE))
        assert len(t) == 3
        assert t.n_instruction_records == 1
        assert t.n_data_records == 2

    def test_instruction_blocks_unique(self):
        t = make_thread(addrs=(5, 5, 7))
        assert list(t.instruction_blocks()) == [5, 7]


class TestTrace:
    def test_empty_trace_rejected(self):
        with pytest.raises(TraceError):
            Trace("w", [], instructions_per_iblock=12, seed=0)

    def test_duplicate_thread_ids_rejected(self):
        with pytest.raises(TraceError):
            Trace(
                "w",
                [make_thread(0), make_thread(0)],
                instructions_per_iblock=12,
                seed=0,
            )

    def test_aggregates(self):
        trace = Trace(
            "w",
            [make_thread(0), make_thread(1, txn_type=2)],
            instructions_per_iblock=10,
            seed=0,
        )
        assert len(trace) == 2
        assert trace.total_records == 6
        assert trace.total_instructions == 60
        assert trace.types_present() == [0, 2]
        assert len(trace.threads_of_type(2)) == 1


class TestSimulationResult:
    def _result(self, **kw):
        defaults = dict(
            variant="base", workload="w", cycles=1000, instructions=10000,
            i_accesses=800, i_misses=40, d_accesses=400, d_misses=10,
        )
        defaults.update(kw)
        return SimulationResult(**defaults)

    def test_mpki_derivation(self):
        r = self._result()
        assert r.i_mpki == pytest.approx(4.0)
        assert r.d_mpki == pytest.approx(1.0)
        assert r.total_mpki == pytest.approx(5.0)

    def test_zero_instruction_guards(self):
        r = self._result(instructions=0)
        assert r.i_mpki == 0.0 and r.bpki == 0.0

    def test_speedup(self):
        base = self._result(cycles=2000)
        fast = self._result(cycles=1000)
        assert fast.speedup_over(base) == pytest.approx(2.0)

    def test_ipc(self):
        assert self._result().ipc == pytest.approx(10.0)

    def test_instructions_per_migration_infinite_without_migrations(self):
        assert self._result().instructions_per_migration() == float("inf")

    def test_instruction_stall_share(self):
        r = self._result(cycles_i_stall=300, cycles_d_stall=100)
        assert r.instruction_stall_share == pytest.approx(0.75)

    def test_summary_mentions_key_metrics(self):
        s = self._result().summary()
        assert "I-MPKI" in s and "w/base" in s
