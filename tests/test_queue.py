"""Tests for the durable lease-based work queue (``repro queue``).

Three layers: in-process protocol unit tests (enqueue/claim/lease
fold rules), drain-loop integration against the real Runner, and the
two acceptance scenarios — double-completion idempotence and the
multi-process chaos proof (three concurrent ``repro queue work``
processes, one SIGKILL'd mid-sweep, byte-identical recovery).
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.exp import (
    ExperimentSpec,
    ResultStore,
    Runner,
    WorkQueue,
    audit_store,
    drain,
    grid,
    resolve_queue_path,
    result_to_json,
    spec_for,
    spec_from_dict,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

linux_only = pytest.mark.skipif(
    sys.platform != "linux", reason="subprocess chaos relies on fork workers"
)


def smoke_specs(variants=("base", "slicc", "steps")):
    base = ExperimentSpec("tpcc-1", scale="smoke", seed=7)
    return grid(base, {"variant": list(variants)})


def write_specfile(tmp_path, axes=None):
    payload = {
        "workload": "tpcc-1",
        "scale": "smoke",
        "seed": 7,
        "variant": "slicc-sw",
        "axes": axes or {"slicc.dilution_t": [5, 10]},
        "baseline": True,
    }
    path = tmp_path / "exp.json"
    path.write_text(json.dumps(payload))
    return str(path)


def queue_events(path):
    events = []
    for line in resolve_queue_path(path).read_bytes().splitlines():
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            continue  # torn fragment
    return events


class TestQueueProtocol:
    def test_enqueue_is_idempotent(self, tmp_path):
        queue = WorkQueue(tmp_path)
        specs = smoke_specs()
        assert queue.enqueue(specs) == 3
        assert queue.enqueue(specs) == 0
        # A grown grid only adds the new points.
        more = smoke_specs(variants=("base", "slicc", "steps", "nextline"))
        assert queue.enqueue(more) == 1
        assert queue.snapshot().pending == 4

    def test_enqueue_rejects_explicit_trace_specs(self, tmp_path, smoke_tpcc):
        queue = WorkQueue(tmp_path)
        with pytest.raises(ConfigurationError, match="trace"):
            queue.enqueue([spec_for(smoke_tpcc, variant="base")])

    def test_enqueue_shares_campaign_dir_with_store(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.enqueue(smoke_specs())
        assert queue.path == tmp_path / "queue.jsonl"
        assert queue.lock_path.name == "queue.jsonl.lock"

    def test_claim_is_fifo_and_exclusive_across_instances(self, tmp_path):
        specs = smoke_specs()
        keys = [s.key() for s in specs]
        a = WorkQueue(tmp_path, worker_id="a")
        a.enqueue(specs)
        first = a.claim(limit=2)
        assert [c.key for c in first] == keys[:2]
        assert all(c.attempt == 1 and not c.reclaimed for c in first)
        # A second worker (separate instance, same file) only sees what
        # is left — live leases are exclusive.
        b = WorkQueue(tmp_path, worker_id="b")
        second = b.claim(limit=3)
        assert [c.key for c in second] == keys[2:]
        assert b.claim(limit=3) == []
        status = a.snapshot()
        assert status.leased == 3 and status.pending == 0
        assert status.workers == {"a": 2, "b": 1}

    def test_claim_payload_rebuilds_the_exact_spec(self, tmp_path):
        (spec,) = smoke_specs(variants=("slicc-sw",))
        queue = WorkQueue(tmp_path)
        queue.enqueue([spec])
        (claim,) = queue.claim()
        rebuilt = spec_from_dict(claim.payload)
        assert rebuilt.key() == spec.key() == claim.key
        assert rebuilt.config == spec.config

    def test_expired_lease_is_reclaimed_with_attempt_count(self, tmp_path):
        specs = smoke_specs(variants=("base",))
        a = WorkQueue(tmp_path, worker_id="a", lease_seconds=0.05)
        a.enqueue(specs)
        assert len(a.claim()) == 1
        time.sleep(0.2)  # past deadline + worker-b's small stagger
        b = WorkQueue(tmp_path, worker_id="b", backoff=0.001)
        deadline = time.monotonic() + 10
        claims = []
        while not claims and time.monotonic() < deadline:
            claims = b.claim()
            time.sleep(0.02)
        (claim,) = claims
        assert claim.reclaimed and claim.attempt == 2
        # The original holder discovers the loss on its next heartbeat.
        assert a.renew([claim.key]) == [claim.key]
        events = queue_events(tmp_path)
        assert any(
            e["event"] == "abandoned" and e["reason"] == "lease-expired"
            for e in events
        )

    def test_live_lease_is_not_reclaimable(self, tmp_path):
        a = WorkQueue(tmp_path, worker_id="a", lease_seconds=60)
        a.enqueue(smoke_specs(variants=("base",)))
        a.claim()
        b = WorkQueue(tmp_path, worker_id="b", backoff=0.001)
        assert b.claim() == []

    def test_claim_budget_exhaustion_fails_terminally(self, tmp_path):
        a = WorkQueue(
            tmp_path, worker_id="a", lease_seconds=0.05, max_claims=1
        )
        a.enqueue(smoke_specs(variants=("base",)))
        (claim,) = a.claim()
        time.sleep(0.1)
        b = WorkQueue(tmp_path, worker_id="b", backoff=0.001, max_claims=1)
        assert b.claim() == []
        status = b.snapshot()
        assert status.failed == 1 and status.leased == 0
        events = queue_events(tmp_path)
        (failure,) = [e for e in events if e["event"] == "failed"]
        assert failure["kind"] == "lease-expired"
        assert failure["key"] == claim.key

    def test_release_returns_leases_to_pending(self, tmp_path):
        queue = WorkQueue(tmp_path, worker_id="a")
        queue.enqueue(smoke_specs())
        claims = queue.claim(limit=3)
        queue.release([c.key for c in claims[:2]])
        status = queue.snapshot()
        assert status.pending == 2 and status.leased == 1

    def test_renew_extends_only_own_live_leases(self, tmp_path):
        queue = WorkQueue(tmp_path, worker_id="a", lease_seconds=60)
        queue.enqueue(smoke_specs(variants=("base", "slicc")))
        claims = queue.claim(limit=1)
        held = claims[0].key
        other = [s.key() for s in smoke_specs(variants=("slicc",))][0]
        lost = queue.renew([held, other, "no-such-key"])
        assert held not in lost
        assert set(lost) == {other, "no-such-key"}

    def test_mark_done_is_idempotent_and_supersedes_failed(self, tmp_path):
        queue = WorkQueue(tmp_path, worker_id="a")
        queue.enqueue(smoke_specs(variants=("base",)))
        (claim,) = queue.claim()
        assert queue.mark_failed(claim.key, error="boom") is True
        assert queue.snapshot().failed == 1
        # The result exists after all: done supersedes failed …
        assert queue.mark_done(claim.key) is True
        status = queue.snapshot()
        assert status.done == 1 and status.failed == 0
        # … a second finish is a no-op, and failed never undoes done.
        assert queue.mark_done(claim.key) is False
        assert queue.mark_failed(claim.key, error="late loser") is False
        assert queue.snapshot().done == 1

    def test_torn_tail_heals_into_one_corrupt_event(self, tmp_path):
        queue = WorkQueue(tmp_path, worker_id="a")
        queue.enqueue(smoke_specs(variants=("base", "slicc")))
        with queue.path.open("ab") as fh:  # power loss mid-append
            fh.write(b'{"event": "claimed", "key": "tor')
        fresh = WorkQueue(tmp_path, worker_id="b")
        fresh.enqueue(smoke_specs(variants=("steps",)))  # heals the tail
        status = fresh.snapshot()
        assert status.corrupt_events == 1
        assert status.pending == 3  # the torn claim never took
        lines = queue.path.read_bytes().splitlines()
        json.loads(lines[-1])  # the post-heal append is parseable

    def test_reclaim_expired_splits_released_and_exhausted(self, tmp_path):
        specs = smoke_specs(variants=("base", "slicc"))
        a = WorkQueue(
            tmp_path, worker_id="a", lease_seconds=0.05, max_claims=1
        )
        a.enqueue(specs)
        a.claim(limit=1)
        b = WorkQueue(tmp_path, worker_id="b", lease_seconds=0.05)
        b.claim(limit=1)
        time.sleep(0.1)
        # max_claims=1 for the operator instance: key a holds is over
        # budget; use a generous budget so b's key goes back to pending.
        op = WorkQueue(tmp_path, worker_id="op", max_claims=3)
        released, exhausted = op.reclaim_expired()
        assert len(released) == 2 and exhausted == []
        status = op.snapshot()
        assert status.pending == 2 and status.leased == 0

    def test_snapshot_payload_shape(self, tmp_path):
        queue = WorkQueue(tmp_path, worker_id="a", lease_seconds=0.01)
        queue.enqueue(smoke_specs())
        queue.claim(limit=1)
        time.sleep(0.05)
        payload = queue.snapshot().to_payload()
        assert payload["total"] == 3
        assert payload["pending"] == 2 and payload["leased"] == 1
        assert payload["stale_leases"] == 1
        assert payload["stale"][0]["worker"] == "a"
        assert payload["stale"][0]["overdue_seconds"] > 0
        assert payload["drained"] is False
        assert payload["workers"] == {"a": 1}

    def test_spec_from_dict_round_trip(self):
        for spec in smoke_specs(variants=("base", "slicc-sw")):
            rebuilt = spec_from_dict(spec.to_dict())
            assert rebuilt.key() == spec.key()

    def test_spec_from_dict_rejects_junk(self):
        with pytest.raises(ConfigurationError):
            spec_from_dict({"workload": "tpcc-1", "warp_drive": True})
        with pytest.raises(ConfigurationError):
            spec_from_dict("not a mapping")


class TestDrain:
    def test_drain_completes_a_queue(self, tmp_path):
        specs = smoke_specs()
        queue = WorkQueue(tmp_path, worker_id="solo")
        queue.enqueue(specs)
        runner = Runner(store=ResultStore(tmp_path), jobs=1)
        report = drain(queue, runner, poll_seconds=0.05)
        assert report.completed == 3 and report.failed == 0
        assert report.claimed == 3 and report.reclaimed == 0
        status = queue.snapshot()
        assert status.drained and status.done == 3
        assert set(runner.store.keys()) == {s.key() for s in specs}
        # A second worker arriving late finds nothing to do.
        again = drain(queue, Runner(store=ResultStore(tmp_path)), poll_seconds=0.05)
        assert again.claimed == 0

    def test_drain_reclaims_a_dead_workers_leases(self, tmp_path):
        specs = smoke_specs()
        dead = WorkQueue(tmp_path, worker_id="dead", lease_seconds=0.05)
        dead.enqueue(specs)
        assert len(dead.claim(limit=3)) == 3  # then "SIGKILL": no beats
        time.sleep(0.2)
        queue = WorkQueue(tmp_path, worker_id="live", backoff=0.001)
        runner = Runner(store=ResultStore(tmp_path), jobs=1)
        report = drain(queue, runner, poll_seconds=0.05)
        assert report.completed == 3
        assert report.reclaimed == 3
        assert runner.stats.reclaimed == 3  # surfaced in CLI summaries
        status = queue.snapshot()
        assert status.drained and status.done == 3 and not status.stale

    def test_drain_fails_bad_payload_entries_terminally(self, tmp_path):
        queue = WorkQueue(tmp_path, worker_id="w")
        queue.enqueue(smoke_specs(variants=("base",)))
        # A hand-edited / truncated queue can reference keys with no
        # payload; drain must fail them, not spin on them.
        queue._append_locked(
            {"event": "enqueued", "key": "deadbeef" * 8, "t": 0.0}
        )
        runner = Runner(store=ResultStore(tmp_path), jobs=1)
        report = drain(queue, runner, poll_seconds=0.05)
        assert report.completed == 1
        status = queue.snapshot()
        assert status.drained and status.done == 1 and status.failed == 1
        events = queue_events(tmp_path)
        (failure,) = [e for e in events if e["event"] == "failed"]
        assert failure["kind"] == "bad-spec"


class TestDoubleCompletion:
    def test_double_finish_is_byte_identical_and_collapses(self, tmp_path):
        """ACCEPTANCE: two workers race the same spec to completion; the
        store gains two byte-identical rows, loads one canonical result,
        and ``store verify`` stays clean."""
        (spec,) = smoke_specs(variants=("slicc-sw",))
        store_path = tmp_path / "results.jsonl"
        a = WorkQueue(tmp_path, worker_id="a", lease_seconds=0.05)
        a.enqueue([spec])
        # Both workers open the store before either has written: the
        # in-memory views are the pre-race snapshot, as they would be in
        # two processes.
        store_a = ResultStore(store_path)
        store_b = ResultStore(store_path)
        (claim_a,) = a.claim()
        time.sleep(0.2)  # a's lease expires (its heartbeats "stopped")
        b = WorkQueue(tmp_path, worker_id="b", backoff=0.001)
        deadline = time.monotonic() + 10
        claims_b = []
        while not claims_b and time.monotonic() < deadline:
            claims_b = b.claim()
            time.sleep(0.02)
        (claim_b,) = claims_b
        assert claim_b.reclaimed

        Runner(store=store_b, jobs=1).run([spec])
        assert b.mark_done(claim_b.key) is True
        # Worker a was only paused, not dead: it finishes late and
        # double-writes, never having observed b's row.
        Runner(store=store_a, jobs=1).run([spec])
        assert a.mark_done(claim_a.key) is False  # late half: no-op

        lines = store_path.read_bytes().splitlines()
        assert len(lines) == 2
        assert lines[0] == lines[1]  # byte-identical duplicate row
        final = ResultStore(store_path)
        assert list(final.keys()) == [spec.key()]
        audit = audit_store(store_path)
        assert audit.clean and audit.superseded == 1
        assert main(["store", "verify", str(store_path)]) == 0
        status = b.snapshot()
        assert status.done == 1 and status.drained


class TestQueueCLI:
    def test_enqueue_then_status(self, tmp_path, capsys):
        specfile = write_specfile(tmp_path)
        qdir = tmp_path / "campaign"
        assert main(["queue", "enqueue", specfile, str(qdir)]) == 0
        out = capsys.readouterr().out
        assert "enqueued 3 new spec(s)" in out
        assert main(["queue", "enqueue", specfile, str(qdir)]) == 0
        out = capsys.readouterr().out
        assert "enqueued 0 new spec(s)" in out and "already queued" in out
        assert main(["queue", "status", str(qdir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["pending"] == 3 and payload["drained"] is False
        assert payload["stale_leases"] == 0

    def test_work_drains_and_store_verifies(self, tmp_path, capsys):
        specfile = write_specfile(tmp_path)
        qdir = tmp_path / "campaign"
        assert main(["queue", "enqueue", specfile, str(qdir)]) == 0
        capsys.readouterr()
        assert main(["queue", "work", str(qdir), "--poll", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "3 claimed (0 reclaimed)" in out
        assert "3 simulated" in out
        assert "3 done" in out
        assert main(["queue", "status", str(qdir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["done"] == 3 and payload["drained"] is True
        # The store lands next to the queue and verifies clean.
        assert main(["store", "verify", str(qdir), "--json"]) == 0
        audit = json.loads(capsys.readouterr().out)
        assert audit["clean"] is True and audit["keys"] == 3

    def test_work_reports_terminal_failures_as_exit_3(self, tmp_path, capsys):
        specfile = write_specfile(tmp_path, axes={"slicc.dilution_t": [5]})
        qdir = tmp_path / "campaign"
        assert main(["queue", "enqueue", specfile, str(qdir)]) == 0
        # Corrupt campaign: an entry whose payload cannot run.
        WorkQueue(qdir)._append_locked(
            {"event": "enqueued", "key": "deadbeef" * 8, "t": 0.0}
        )
        capsys.readouterr()
        assert main(["queue", "work", str(qdir), "--poll", "0.05"]) == 3
        captured = capsys.readouterr()
        assert "1 failed" in captured.out
        assert main(["queue", "status", str(qdir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] == 1 and payload["done"] == 2

    def test_status_diagnoses_stale_leases_and_reclaim_heals(
        self, tmp_path, capsys
    ):
        specfile = write_specfile(tmp_path)
        qdir = tmp_path / "campaign"
        assert main(["queue", "enqueue", specfile, str(qdir)]) == 0
        dead = WorkQueue(qdir, worker_id="dead", lease_seconds=0.05)
        assert len(dead.claim(limit=2)) == 2
        time.sleep(0.1)
        capsys.readouterr()
        assert main(["queue", "status", str(qdir)]) == 0
        out = capsys.readouterr().out
        assert "STALE" in out and "dead" in out
        assert main(["queue", "reclaim", str(qdir)]) == 0
        out = capsys.readouterr().out
        assert "reclaimed 2 expired lease(s)" in out
        assert main(["queue", "status", str(qdir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["pending"] == 3 and payload["stale_leases"] == 0

    def test_missing_queue_is_a_usage_error(self, tmp_path, capsys):
        rc = main(["queue", "status", str(tmp_path / "nowhere")])
        assert rc == 2
        err = capsys.readouterr().err
        assert "no queue at" in err and "queue enqueue" in err

    def test_enqueue_bad_specfile_is_a_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "exp.json"
        bad.write_text(json.dumps({"workload": "tpcc-1", "axes": {"nope": [1]}}))
        rc = main(["queue", "enqueue", str(bad), str(tmp_path / "q")])
        assert rc == 2
        assert capsys.readouterr().err.startswith("error:")


@linux_only
class TestMultiProcessChaos:
    def test_three_workers_one_sigkilled_recover_byte_identical(
        self, tmp_path
    ):
        """ACCEPTANCE: three concurrent ``repro queue work`` processes
        drain one campaign; the one holding leases is SIGKILL'd
        mid-sweep. The survivors (who themselves crash-and-retry every
        first attempt in-process) reclaim its orphans and finish; the
        recovered store is byte-identical per key to a fault-free
        in-process reference, with no row lost and zero stale leases."""
        axes = {"slicc.dilution_t": [2, 4, 6, 8, 10]}
        specfile = write_specfile(tmp_path, axes=axes)
        campaign = tmp_path / "campaign"

        # Fault-free reference, entirely in this process.
        from repro.exp import load_spec_file

        specs, baseline = load_spec_file(specfile)
        all_specs = list(specs) + ([baseline] if baseline else [])
        keys = {s.key() for s in all_specs}
        ref = ResultStore(tmp_path / "reference.jsonl")
        Runner(store=ref, jobs=2).run(all_specs)

        assert main(["queue", "enqueue", specfile, str(campaign)]) == 0

        base_env = dict(
            os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src")
        )
        base_env.pop("REPRO_FAULT", None)
        base_env.pop("REPRO_FAULT_HANG_S", None)

        def work(worker_id, fault=None, hang_s=None):
            env = dict(base_env)
            if fault:
                env["REPRO_FAULT"] = fault
            if hang_s:
                env["REPRO_FAULT_HANG_S"] = hang_s
            return subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "queue",
                    "work",
                    str(campaign),
                    "--jobs",
                    "1",
                    "--lease",
                    "1.5",
                    "--retries",
                    "2",
                    "--poll",
                    "0.1",
                    "--worker-id",
                    worker_id,
                ],
                env=env,
                cwd=REPO_ROOT,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )

        # The victim hangs inside every simulation, so it reliably sits
        # on a lease; heartbeats keep the lease live until the kill.
        victim = work("victim", fault="hang:1", hang_s="5")
        survivors = []
        try:
            queue = WorkQueue(campaign, worker_id="observer")
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if queue.snapshot().workers.get("victim"):
                    break
                assert victim.poll() is None, victim.communicate()[1]
                time.sleep(0.05)
            else:  # pragma: no cover - victim never claimed
                pytest.fail("victim never took a lease")

            # Survivors crash every first in-process attempt (retries
            # heal it) — the multi-process regime stacks on PR 7's.
            survivors = [
                work(w, fault="crash:1@1") for w in ("s1", "s2")
            ]
            time.sleep(0.3)  # let them start claiming alongside the victim
            victim.send_signal(signal.SIGKILL)
            # wait(), not communicate(): the victim's hung fork-worker
            # inherited its output pipes and keeps them open until the
            # injected hang elapses.
            assert victim.wait(timeout=30) == -signal.SIGKILL

            for proc in survivors:
                stdout, stderr = proc.communicate(timeout=300)
                assert proc.returncode == 0, stderr
        finally:
            for proc in [victim, *survivors]:
                if proc.poll() is None:  # pragma: no cover - hung child
                    proc.kill()
                    proc.wait(timeout=30)
                for pipe in (proc.stdout, proc.stderr):
                    if pipe is not None:
                        pipe.close()

        status = WorkQueue(campaign, worker_id="check").snapshot()
        assert status.drained
        assert status.done == len(keys) and status.failed == 0
        assert not status.stale

        # The victim's orphaned lease was explicitly reclaimed.
        events = queue_events(campaign)
        assert any(
            e["event"] == "abandoned"
            and e["worker"] == "victim"
            and e["reason"] == "lease-expired"
            for e in events
        )

        # No row lost, every row byte-identical to the reference.
        final = ResultStore(campaign)
        assert set(final.keys()) == keys
        for key in keys:
            assert result_to_json(final.get(key)) == result_to_json(
                ref.get(key)
            )
        assert audit_store(campaign).clean
