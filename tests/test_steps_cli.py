"""Tests for the STEPS extension variant and the CLI."""

import pytest

from repro.cli import build_parser, main
from repro.params import ScalePreset
from repro.sim import SimConfig, simulate
from repro.workloads import standard_trace


class TestStepsVariant:
    def test_steps_without_peers_equals_base(self, smoke_tpcc):
        """With no queued peers, STEPS never switches and must behave
        exactly like the baseline."""
        base = simulate(
            smoke_tpcc, config=SimConfig(variant="base")
        )
        steps = simulate(
            smoke_tpcc, config=SimConfig(variant="steps")
        )
        # Smoke traces (8 threads / 16 cores) never co-queue threads.
        assert steps.context_switches == 0
        assert steps.i_misses == base.i_misses

    def test_steps_never_migrates(self):
        trace = standard_trace("tpcc-1", ScalePreset.CI, n_threads=32)
        steps = simulate(
            trace, config=SimConfig(variant="steps", arrival_spacing=0)
        )
        assert steps.migrations == 0
        assert steps.context_switches > 0

    def test_steps_reduces_instruction_misses_without_data_cost(self):
        """STEPS's signature (Section 6): time-multiplexing same-type
        threads on one core reuses cached chunks — instruction misses
        drop and, unlike SLICC, data misses do *not* rise (no thread
        leaves its data behind)."""
        trace = standard_trace("tpcc-1", ScalePreset.CI, n_threads=32)
        base = simulate(
            trace, config=SimConfig(variant="base", arrival_spacing=0)
        )
        steps = simulate(
            trace, config=SimConfig(variant="steps", arrival_spacing=0)
        )
        assert steps.i_mpki < base.i_mpki
        assert steps.d_mpki <= base.d_mpki * 1.02

    def test_steps_completes_all_threads(self):
        trace = standard_trace("tpce", ScalePreset.SMOKE, n_threads=12)
        r = simulate(trace, config=SimConfig(variant="steps"))
        assert r.threads_completed == 12


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["run", "tpcc-1", "--variants", "base"])
        assert args.workload == "tpcc-1"

    def test_info_command(self, capsys):
        rc = main(["info", "tpcc-1", "--scale", "smoke"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "transaction types" in out
        assert "NewOrder" in out

    def test_run_command(self, capsys):
        rc = main(
            [
                "run",
                "mapreduce",
                "--scale",
                "smoke",
                "--threads",
                "4",
                "--variants",
                "base",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "I-MPKI" in out

    def test_run_adds_base_automatically(self, capsys):
        rc = main(
            [
                "run",
                "mapreduce",
                "--scale",
                "smoke",
                "--threads",
                "4",
                "--variants",
                "nextline",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "base" in out and "nextline" in out

    def test_bad_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "tpch"])
