"""Unit + property tests for MC, MSV and MTQ (Section 4.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MissCounter, MissShiftVector, MissedTagQueue
from repro.errors import ConfigurationError


class TestMissCounter:
    def test_starts_empty(self):
        mc = MissCounter(4)
        assert mc.count == 0 and not mc.full

    def test_saturates_at_threshold(self):
        mc = MissCounter(3)
        for _ in range(10):
            mc.record_miss()
        assert mc.count == 3 and mc.full

    def test_record_returns_full_state(self):
        mc = MissCounter(2)
        assert not mc.record_miss()
        assert mc.record_miss()

    def test_reset(self):
        mc = MissCounter(2)
        mc.record_miss(), mc.record_miss()
        mc.reset()
        assert mc.count == 0 and not mc.full

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ConfigurationError):
            MissCounter(0)

    @given(st.integers(min_value=1, max_value=100), st.integers(min_value=0, max_value=300))
    def test_count_never_exceeds_threshold(self, threshold, n):
        mc = MissCounter(threshold)
        for _ in range(n):
            mc.record_miss()
        assert mc.count == min(n, threshold)


class TestMissShiftVector:
    def test_dilution_threshold(self):
        msv = MissShiftVector(window=10, dilution_t=3)
        msv.record(True), msv.record(True)
        assert not msv.dilution_reached
        msv.record(True)
        assert msv.dilution_reached

    def test_old_entries_fall_out(self):
        msv = MissShiftVector(window=3, dilution_t=2)
        msv.record(True), msv.record(True)
        assert msv.dilution_reached
        msv.record(False), msv.record(False)
        assert msv.miss_count == 1
        assert not msv.dilution_reached

    def test_zero_dilution_always_enabled(self):
        msv = MissShiftVector(window=10, dilution_t=0)
        assert msv.dilution_reached

    def test_reset(self):
        msv = MissShiftVector(window=5, dilution_t=1)
        msv.record(True)
        msv.reset()
        assert msv.miss_count == 0 and msv.occupancy == 0

    def test_rejects_dilution_above_window(self):
        with pytest.raises(ConfigurationError):
            MissShiftVector(window=10, dilution_t=11)

    @settings(max_examples=50)
    @given(st.lists(st.booleans(), max_size=250))
    def test_running_popcount_matches_window(self, bits):
        msv = MissShiftVector(window=100, dilution_t=10)
        for bit in bits:
            msv.record(bit)
        expected = sum(bits[-100:])
        assert msv.miss_count == expected


class TestMissedTagQueue:
    def test_not_full_returns_no_candidates(self):
        mtq = MissedTagQueue(matched_t=3, n_cores=4)
        mtq.record(0b1111)
        assert mtq.common_cores() == []

    def test_intersection_of_presence_vectors(self):
        mtq = MissedTagQueue(matched_t=2, n_cores=4)
        mtq.record(0b0110)
        mtq.record(0b0011)
        assert mtq.common_cores() == [1]

    def test_exclude_local_core(self):
        mtq = MissedTagQueue(matched_t=1, n_cores=4)
        mtq.record(0b0110)
        assert mtq.common_cores(exclude=1) == [2]

    def test_fifo_discards_oldest(self):
        mtq = MissedTagQueue(matched_t=2, n_cores=4)
        mtq.record(0b0001)
        mtq.record(0b1110)
        mtq.record(0b1110)
        assert mtq.common_cores() == [1, 2, 3]

    def test_empty_intersection(self):
        mtq = MissedTagQueue(matched_t=2, n_cores=4)
        mtq.record(0b0001)
        mtq.record(0b0010)
        assert mtq.common_cores() == []

    def test_reset(self):
        mtq = MissedTagQueue(matched_t=1, n_cores=2)
        mtq.record(0b11)
        mtq.reset()
        assert not mtq.full

    @given(
        st.lists(st.integers(min_value=0, max_value=15), min_size=3, max_size=3)
    )
    def test_common_cores_is_and_of_entries(self, masks):
        mtq = MissedTagQueue(matched_t=3, n_cores=4)
        for m in masks:
            mtq.record(m)
        expected_mask = masks[0] & masks[1] & masks[2]
        expected = [c for c in range(4) if expected_mask & (1 << c)]
        assert mtq.common_cores() == expected
