"""Tests for the DDR3 DRAM timing model (Table 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.memory import DdrTimings, DramModel


class TestTimings:
    def test_table2_defaults(self):
        t = DdrTimings()
        assert t.tCAS == 10 and t.tRCD == 10 and t.tRP == 10
        assert t.tRAS == 35 and t.tRC == 47.5

    def test_row_hit_cheapest(self):
        t = DdrTimings()
        assert t.row_hit_cycles() < t.row_empty_cycles()
        assert t.row_empty_cycles() < t.row_miss_cycles()


class TestDramModel:
    def test_first_access_is_row_empty(self):
        dram = DramModel()
        dram.access(0)
        assert dram.row_empties == 1

    def test_same_row_hits(self):
        dram = DramModel()
        dram.access(0)
        latency = dram.access(2)  # same channel/bank/row neighbourhood?
        # Block 2 maps to channel 0, bank 1 — use stride matching mapping:
        assert dram.row_hits + dram.row_empties == 2

    def test_row_conflict_detected(self):
        dram = DramModel(n_channels=1, n_banks=1)
        dram.access(0)
        dram.access(DramModel.ROW_BLOCKS)  # next row, same bank
        assert dram.row_misses == 1

    def test_open_page_policy_keeps_row(self):
        dram = DramModel(n_channels=1, n_banks=1)
        dram.access(0)
        dram.access(1)
        assert dram.row_hits == 1

    def test_latency_in_core_cycles_near_42ns(self):
        """Table 2 quotes ~42ns; a cold row-empty access at 2.5GHz core /
        800MHz bus lands in the same neighbourhood (~75 cycles) and a row
        miss above it."""
        dram = DramModel()
        cold = dram.access(0)
        assert 50 <= cold <= 160

    def test_row_hit_rate(self):
        dram = DramModel(n_channels=1, n_banks=1)
        for block in (0, 1, 2, 3):
            dram.access(block)
        assert dram.row_hit_rate == pytest.approx(0.75)

    def test_average_latency_reflects_mix(self):
        dram = DramModel(n_channels=1, n_banks=1)
        sequential = DramModel(n_channels=1, n_banks=1)
        for i in range(64):
            dram.access(i * DramModel.ROW_BLOCKS)  # all conflicts
            sequential.access(i)  # all hits after the first
        assert sequential.average_latency() < dram.average_latency()

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            DramModel(n_channels=0)

    @settings(max_examples=20)
    @given(st.lists(st.integers(min_value=0, max_value=100000), max_size=200))
    def test_accounting_conserved(self, blocks):
        dram = DramModel()
        for b in blocks:
            dram.access(b)
        assert dram.row_hits + dram.row_misses + dram.row_empties == len(blocks)
