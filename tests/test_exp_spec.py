"""Tests for declarative experiment specs, hashing and grid expansion."""

import pytest

from repro.errors import ConfigurationError
from repro.exp import (
    ExperimentSpec,
    grid,
    load_spec_file,
    product,
    spec_for,
    trace_fingerprint,
    with_overrides,
)
from repro.params import SliccParams
from repro.sim import SimConfig


class TestSpecIdentity:
    def test_frozen_and_hashable(self):
        spec = ExperimentSpec("tpcc-1")
        assert spec in {spec}
        with pytest.raises(AttributeError):
            spec.workload = "tpce"

    def test_key_is_stable_and_label_free(self):
        a = ExperimentSpec("tpcc-1", seed=3, label="first")
        b = ExperimentSpec("tpcc-1", seed=3, label="second")
        assert a.key() == b.key()

    def test_key_varies_with_trace_fields(self):
        a = ExperimentSpec("tpcc-1", seed=3)
        assert a.key() != ExperimentSpec("tpcc-1", seed=4).key()
        assert a.key() != ExperimentSpec("tpce", seed=3).key()
        assert a.key() != ExperimentSpec("tpcc-1", seed=3, n_threads=8).key()

    def test_key_varies_with_config(self):
        a = ExperimentSpec("tpcc-1", config=SimConfig(variant="slicc"))
        b = ExperimentSpec("tpcc-1", config=SimConfig(variant="slicc-sw"))
        assert a.key() != b.key()

    def test_base_variant_canonicalises_slicc_params(self):
        """slicc thresholds cannot affect a base run, so they must not
        fragment its cache key."""
        plain = ExperimentSpec("tpcc-1", config=SimConfig(variant="base"))
        tweaked = ExperimentSpec(
            "tpcc-1",
            config=SimConfig(
                variant="base", slicc=SliccParams(dilution_t=25)
            ),
        )
        assert plain.key() == tweaked.key()

    def test_slicc_variant_keeps_slicc_params_in_key(self):
        a = ExperimentSpec("tpcc-1", config=SimConfig(variant="slicc"))
        b = ExperimentSpec(
            "tpcc-1",
            config=SimConfig(variant="slicc", slicc=SliccParams(dilution_t=25)),
        )
        assert a.key() != b.key()

    def test_steps_keeps_slicc_but_not_steal_knobs(self):
        a = ExperimentSpec("tpcc-1", config=SimConfig(variant="steps"))
        b = ExperimentSpec(
            "tpcc-1",
            config=SimConfig(variant="steps", slicc=SliccParams(dilution_t=25)),
        )
        c = ExperimentSpec(
            "tpcc-1", config=SimConfig(variant="steps", steal_min_depth=9)
        )
        assert a.key() != b.key()
        assert a.key() == c.key()

    @pytest.mark.parametrize("variant", ["tmi", "random-migrate"])
    def test_migrating_extensions_keep_migration_knobs_in_key(self, variant):
        """tmi/random-migrate migrate without SLICC's machinery; their
        relevant_fields declaration must keep the steal/threshold knobs
        in the cache key so sweeps do not collide on store keys."""
        plain = ExperimentSpec("tpcc-1", config=SimConfig(variant=variant))
        for tweaked_config in (
            SimConfig(variant=variant, slicc=SliccParams(fill_up_t=64)),
            SimConfig(variant=variant, steal_min_depth=9),
            SimConfig(variant=variant, work_stealing=False),
            SimConfig(variant=variant, data_prefetch_n=4),
        ):
            tweaked = ExperimentSpec("tpcc-1", config=tweaked_config)
            assert plain.key() != tweaked.key(), tweaked_config

    def test_affinity_canonicalises_all_migration_knobs(self):
        """affinity never migrates, so neither the slicc thresholds nor
        the steal knobs may fragment its cache key."""
        plain = ExperimentSpec("tpcc-1", config=SimConfig(variant="affinity"))
        tweaked = ExperimentSpec(
            "tpcc-1",
            config=SimConfig(
                variant="affinity",
                slicc=SliccParams(dilution_t=25),
                steal_min_depth=9,
                data_prefetch_n=4,
            ),
        )
        assert plain.key() == tweaked.key()

    def test_bad_scale_rejected_eagerly(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec("tpcc-1", scale="galactic")

    def test_bad_workload_rejected_eagerly(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec("tpch")

    def test_synthetic_workload_allowed_with_explicit_trace(self, smoke_tpcc):
        """spec_for traces skip name validation (names may be synthetic)."""
        spec = spec_for(smoke_tpcc, variant="base")
        assert ExperimentSpec(
            "anything-goes", trace_id=spec.trace_id
        ).trace_key() == spec.trace_id

    def test_trace_id_not_overridable(self):
        with pytest.raises(ConfigurationError):
            with_overrides(ExperimentSpec("tpcc-1"), {"trace_id": "abc"})

    def test_trace_fields_not_overridable_on_explicit_spec(self, smoke_tpcc):
        """Overriding seed/workload on a pinned-trace spec would silently
        keep replaying the pinned trace under a new name."""
        spec = spec_for(smoke_tpcc, variant="base")
        with pytest.raises(ConfigurationError):
            with_overrides(spec, {"seed": 2})
        with pytest.raises(ConfigurationError):
            grid(spec, {"seed": [1, 2, 3]})
        # Config axes remain fine on explicit-trace specs.
        assert len(grid(spec, {"slicc.matched_t": [2, 4]})) == 2

    def test_baseline_spec(self):
        spec = ExperimentSpec(
            "tpcc-1", config=SimConfig(variant="slicc-sw", quantum=25)
        )
        base = spec.baseline()
        assert base.variant == "base"
        assert base.config.quantum == 25
        assert base.trace_key() == spec.trace_key()


class TestExplicitTraces:
    def test_spec_for_uses_content_fingerprint(self, smoke_tpcc):
        a = spec_for(smoke_tpcc, SimConfig(variant="base"))
        b = spec_for(smoke_tpcc, variant="base")
        assert a.trace_id == trace_fingerprint(smoke_tpcc)
        assert a.key() == b.key()

    def test_different_traces_differ(self, smoke_tpcc, smoke_tpce):
        a = spec_for(smoke_tpcc, variant="base")
        b = spec_for(smoke_tpce, variant="base")
        assert a.key() != b.key()

    def test_config_and_kwargs_are_exclusive(self, smoke_tpcc):
        with pytest.raises(ConfigurationError):
            spec_for(smoke_tpcc, SimConfig(), variant="base")


class TestOverridesAndGrid:
    def test_product_preserves_axis_order(self):
        points = product({"a": [1, 2], "b": [3, 4]})
        assert points == [
            {"a": 1, "b": 3},
            {"a": 1, "b": 4},
            {"a": 2, "b": 3},
            {"a": 2, "b": 4},
        ]

    def test_with_overrides_paths(self):
        spec = ExperimentSpec("tpcc-1")
        out = with_overrides(
            spec,
            {
                "variant": "slicc-sw",
                "quantum": 25,
                "slicc.dilution_t": 8,
                "system.l2_hit_latency": 20,
                "seed": 9,
            },
        )
        assert out.variant == "slicc-sw"
        assert out.config.quantum == 25
        assert out.config.slicc.dilution_t == 8
        assert out.config.system.l2_hit_latency == 20
        assert out.seed == 9
        # The original is untouched.
        assert spec.variant == "base" and spec.seed == 1

    @pytest.mark.parametrize(
        "path", ["nope", "slicc.nope", "system.nope", "quantum.nope"]
    )
    def test_unknown_override_rejected(self, path):
        with pytest.raises(ConfigurationError):
            with_overrides(ExperimentSpec("tpcc-1"), {path: 1})

    def test_whole_object_override_accepts_dict(self):
        """JSON spec files can only spell SliccParams as a dict."""
        out = with_overrides(
            ExperimentSpec("tpcc-1"), {"slicc": {"dilution_t": 5}}
        )
        assert out.config.slicc == SliccParams(dilution_t=5)

    def test_nested_dataclass_dicts_coerced(self):
        """system.l1i written as a dict (JSON spelling) must become a
        CacheParams, not reach the engine as a raw dict."""
        from repro.params import CacheParams

        out = with_overrides(
            ExperimentSpec("tpcc-1"),
            {"system": {"l1i": {"size_bytes": 65536}}},
        )
        assert out.config.system.l1i == CacheParams(size_bytes=65536)
        dotted = with_overrides(
            ExperimentSpec("tpcc-1"), {"system.l1d": {"assoc": 4}}
        )
        assert dotted.config.system.l1d == CacheParams(assoc=4)

    def test_nested_dataclass_bad_field_rejected(self):
        with pytest.raises(ConfigurationError):
            with_overrides(
                ExperimentSpec("tpcc-1"),
                {"system": {"l1i": {"size": 65536}}},
            )

    def test_whole_object_override_rejects_bad_fields(self):
        with pytest.raises(ConfigurationError):
            with_overrides(ExperimentSpec("tpcc-1"), {"slicc": {"warp": 1}})
        with pytest.raises(ConfigurationError):
            with_overrides(ExperimentSpec("tpcc-1"), {"system": 42})

    def test_whole_object_plus_dotted_conflict_rejected(self):
        with pytest.raises(ConfigurationError):
            with_overrides(
                ExperimentSpec("tpcc-1"),
                {"slicc": {"dilution_t": 5}, "slicc.matched_t": 2},
            )

    def test_grid_expands_and_labels(self):
        specs = grid(
            ExperimentSpec("tpcc-1"),
            {"variant": ["slicc"], "slicc.matched_t": [2, 4]},
        )
        assert len(specs) == 2
        assert specs[0].label == "variant=slicc,matched_t=2"
        assert specs[1].config.slicc.matched_t == 4
        assert all(s.variant == "slicc" for s in specs)

    def test_grid_custom_label(self):
        specs = grid(
            ExperimentSpec("tpcc-1"),
            {"slicc.matched_t": [2]},
            label=lambda p: f"m{p['slicc.matched_t']}",
        )
        assert specs[0].label == "m2"


class TestSpecFile:
    def test_load_spec_file(self, tmp_path):
        path = tmp_path / "exp.json"
        path.write_text(
            '{"workload": "tpcc-1", "scale": "smoke", "seed": 7,'
            ' "variant": "slicc-sw",'
            ' "axes": {"slicc.dilution_t": [5, 10]}, "baseline": true}'
        )
        specs, baseline = load_spec_file(path)
        assert [s.config.slicc.dilution_t for s in specs] == [5, 10]
        assert all(s.variant == "slicc-sw" for s in specs)
        assert baseline is not None and baseline.variant == "base"
        assert baseline.trace_key() == specs[0].trace_key()

    def test_load_spec_file_rejects_unknown_keys(self, tmp_path):
        path = tmp_path / "exp.json"
        path.write_text('{"workload": "tpcc-1", "warp_factor": 9}')
        with pytest.raises(ConfigurationError):
            load_spec_file(path)

    def test_load_spec_file_requires_workload(self, tmp_path):
        path = tmp_path / "exp.json"
        path.write_text('{"scale": "smoke"}')
        with pytest.raises(ConfigurationError):
            load_spec_file(path)

    def test_load_spec_file_nested_overrides_dict(self, tmp_path):
        path = tmp_path / "exp.json"
        path.write_text(
            '{"workload": "tpcc-1", "scale": "smoke", "variant": "slicc",'
            ' "overrides": {"slicc": {"dilution_t": 5}}}'
        )
        specs, _ = load_spec_file(path)
        assert specs[0].config.slicc.dilution_t == 5

    def test_baseline_with_trace_axis_rejected(self, tmp_path):
        """One shared baseline is meaningless across different traces."""
        path = tmp_path / "exp.json"
        path.write_text(
            '{"workload": "tpcc-1", "scale": "smoke", "baseline": true,'
            ' "axes": {"workload": ["tpcc-1", "tpce"]}}'
        )
        with pytest.raises(ConfigurationError):
            load_spec_file(path)

    @pytest.mark.parametrize(
        "axis", ['"quantum": [25, 50]', '"system.l2_hit_latency": [8, 16]']
    )
    def test_baseline_with_shared_config_axis_rejected(self, tmp_path, axis):
        """Axes over fields the baseline inherits would compare grid
        points against a mismatched-machine baseline."""
        path = tmp_path / "exp.json"
        path.write_text(
            '{"workload": "tpcc-1", "scale": "smoke", "baseline": true,'
            ' "axes": {%s}}' % axis
        )
        with pytest.raises(ConfigurationError):
            load_spec_file(path)

    def test_conflicting_variant_spellings_rejected(self, tmp_path):
        path = tmp_path / "exp.json"
        path.write_text(
            '{"workload": "tpcc-1", "scale": "smoke", "variant": "slicc",'
            ' "overrides": {"variant": "slicc-sw"}}'
        )
        with pytest.raises(ConfigurationError):
            load_spec_file(path)

    def test_matching_variant_spellings_accepted(self, tmp_path):
        path = tmp_path / "exp.json"
        path.write_text(
            '{"workload": "tpcc-1", "scale": "smoke", "variant": "slicc",'
            ' "overrides": {"variant": "slicc"}}'
        )
        specs, _ = load_spec_file(path)
        assert specs[0].variant == "slicc"

    def test_top_level_label_prefixes_grid_labels(self, tmp_path):
        path = tmp_path / "exp.json"
        path.write_text(
            '{"workload": "tpcc-1", "scale": "smoke", "label": "tuneA",'
            ' "axes": {"slicc.dilution_t": [5, 10]}}'
        )
        specs, _ = load_spec_file(path)
        assert [s.label for s in specs] == [
            "tuneA:dilution_t=5",
            "tuneA:dilution_t=10",
        ]

    def test_multi_workload_axis_fine_without_baseline(self, tmp_path):
        path = tmp_path / "exp.json"
        path.write_text(
            '{"workload": "tpcc-1", "scale": "smoke",'
            ' "axes": {"workload": ["tpcc-1", "tpce"]}}'
        )
        specs, baseline = load_spec_file(path)
        assert [s.workload for s in specs] == ["tpcc-1", "tpce"]
        assert baseline is None


class TestFingerprintMemo:
    def test_fingerprint_cached_on_trace(self, smoke_tpcc):
        first = trace_fingerprint(smoke_tpcc)
        assert getattr(smoke_tpcc, "_exp_fingerprint") == first
        assert trace_fingerprint(smoke_tpcc) == first
