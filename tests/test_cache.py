"""Unit tests for the set-associative cache model."""

import pytest

from repro.cache import SetAssociativeCache
from repro.errors import ConfigurationError
from repro.params import CacheParams


def make(size=4 * 1024, assoc=4, policy="lru"):
    return SetAssociativeCache(
        CacheParams(size_bytes=size, assoc=assoc, policy=policy)
    )


class TestGeometry:
    def test_sets_and_blocks(self):
        cache = make()
        assert cache.n_sets == 16
        assert cache.params.n_blocks == 64

    def test_invalid_size_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheParams(size_bytes=1000, assoc=4)

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheParams(size_bytes=3 * 64 * 4, assoc=4)

    def test_negative_params_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheParams(size_bytes=-64)


class TestAccess:
    def test_first_access_misses(self):
        cache = make()
        assert not cache.access(0).hit

    def test_second_access_hits(self):
        cache = make()
        cache.access(0)
        assert cache.access(0).hit

    def test_distinct_blocks_tracked_separately(self):
        cache = make()
        cache.access(0)
        assert not cache.access(16).hit
        assert cache.access(0).hit
        assert cache.access(16).hit

    def test_miss_fills_empty_way_without_victim(self):
        cache = make()
        result = cache.access(5)
        assert result.victim is None

    def test_eviction_after_set_overflow(self):
        cache = make(assoc=2)
        # Blocks 0, 32, 64 all map to set 0 of a 32-set, 2-way cache.
        n_sets = cache.n_sets
        cache.access(0)
        cache.access(n_sets)
        result = cache.access(2 * n_sets)
        assert result.victim == 0  # LRU victim

    def test_lru_order_respects_hits(self):
        cache = make(assoc=2)
        n_sets = cache.n_sets
        cache.access(0)
        cache.access(n_sets)
        cache.access(0)  # 0 becomes MRU
        result = cache.access(2 * n_sets)
        assert result.victim == n_sets

    def test_bypass_access_counts_miss_but_does_not_fill(self):
        cache = make()
        result = cache.access(7, fill=False)
        assert not result.hit
        assert not cache.probe(7)
        assert cache.stats.misses == 1

    def test_stats_accumulate(self):
        cache = make()
        cache.access(0)
        cache.access(0)
        cache.access(1)
        assert cache.stats.accesses == 3
        assert cache.stats.misses == 2
        assert cache.stats.hits == 1


class TestSideChannels:
    def test_probe_is_non_modifying(self):
        cache = make()
        assert not cache.probe(3)
        assert cache.stats.accesses == 0

    def test_install_counts_as_prefetch(self):
        cache = make()
        cache.install(9)
        assert cache.probe(9)
        assert cache.stats.prefetch_fills == 1
        assert cache.stats.accesses == 0

    def test_install_resident_block_is_noop(self):
        cache = make()
        cache.access(9)
        assert cache.install(9) is None
        assert cache.stats.prefetch_fills == 0

    def test_invalidate_removes_block(self):
        cache = make()
        cache.access(4)
        assert cache.invalidate(4)
        assert not cache.probe(4)
        assert cache.stats.invalidations == 1

    def test_invalidate_absent_block_returns_false(self):
        cache = make()
        assert not cache.invalidate(4)

    def test_eviction_callback_fires(self):
        evicted = []
        cache = SetAssociativeCache(
            CacheParams(size_bytes=4 * 1024, assoc=2),
            on_evict=evicted.append,
        )
        n_sets = cache.n_sets
        cache.access(0)
        cache.access(n_sets)
        cache.access(2 * n_sets)
        assert evicted == [0]

    def test_flush_empties_cache(self):
        cache = make()
        for b in range(10):
            cache.access(b)
        cache.flush()
        assert cache.occupancy() == 0

    def test_resident_blocks_iterates_contents(self):
        cache = make()
        for b in (1, 2, 3):
            cache.access(b)
        assert sorted(cache.resident_blocks()) == [1, 2, 3]

    def test_contains_dunder(self):
        cache = make()
        cache.access(12)
        assert 12 in cache
        assert 13 not in cache


class TestCapacity:
    def test_occupancy_never_exceeds_capacity(self):
        cache = make()
        for b in range(1000):
            cache.access(b)
        assert cache.occupancy() <= cache.params.n_blocks

    def test_working_set_within_capacity_never_evicts(self):
        cache = make()
        blocks = range(cache.params.n_blocks)
        for b in blocks:
            cache.access(b)
        for b in blocks:
            assert cache.access(b).hit
        assert cache.stats.evictions == 0
