"""Cross-backend store tests: resolution, behavior parity, migration.

``test_exp_store.py`` pins the JSONL on-disk format; this module covers
what must hold for *any* backend (the behavior contract, parameterized
over both), what is SQLite-specific (single-row upserts, schema
versioning, WAL-file rejection), and the migration invariants that let
a campaign hop between formats byte-identically.
"""

import json
import multiprocessing
import random
import sqlite3

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.exp import (
    STORE_BACKENDS,
    ResultStore,
    audit_store,
    compact_store,
    describe_store,
    migrate_store,
    resolve_backend,
    resolve_store_path,
    result_to_json,
)
from repro.sim.results import SimulationResult


@pytest.fixture(autouse=True)
def _no_env_backend(monkeypatch):
    """Resolution tests need a clean slate; parameterized tests pass
    the backend explicitly, so the CI sqlite leg adds nothing here."""
    monkeypatch.delenv("REPRO_STORE_BACKEND", raising=False)


def make_result(variant="base", cycles=1000):
    return SimulationResult(
        variant=variant,
        workload="tpcc-1",
        cycles=cycles,
        instructions=5000,
        i_accesses=400,
        i_misses=40,
        d_accesses=200,
        d_misses=10,
        migrations=3,
        utilization=0.625,
        miss_class_mpki={"instruction": {"cold": 1.5}},
    )


both_backends = pytest.mark.parametrize("backend", list(STORE_BACKENDS))


class TestResolution:
    def test_suffix_selects_backend(self, tmp_path):
        assert resolve_backend(tmp_path / "r.jsonl") == "jsonl"
        assert resolve_backend(tmp_path / "r.sqlite") == "sqlite"
        assert resolve_backend(tmp_path / "r.sqlite3") == "sqlite"
        assert resolve_backend(tmp_path / "r.db") == "sqlite"

    def test_directory_defaults_to_jsonl(self, tmp_path):
        assert resolve_backend(tmp_path) == "jsonl"
        assert resolve_store_path(tmp_path) == tmp_path / "results.jsonl"

    def test_env_overrides_directory_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_BACKEND", "sqlite")
        assert resolve_backend(tmp_path) == "sqlite"
        assert resolve_store_path(tmp_path) == tmp_path / "results.sqlite"

    def test_unknown_env_backend_rejected(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_BACKEND", "parquet")
        with pytest.raises(ConfigurationError, match="parquet"):
            resolve_backend(tmp_path)

    def test_explicit_backend_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_BACKEND", "sqlite")
        assert resolve_backend(tmp_path, "jsonl") == "jsonl"

    def test_suffix_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_BACKEND", "sqlite")
        assert resolve_backend(tmp_path / "r.jsonl") == "jsonl"

    def test_explicit_conflicting_with_suffix_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            resolve_backend(tmp_path / "r.jsonl", "sqlite")

    def test_existing_store_detected(self, tmp_path, monkeypatch):
        """A directory already holding a sqlite store keeps resolving
        to it even without the env var — reopening a campaign must not
        silently fork a second store in the other format."""
        monkeypatch.setenv("REPRO_STORE_BACKEND", "sqlite")
        ResultStore(tmp_path).put("k", make_result())
        monkeypatch.delenv("REPRO_STORE_BACKEND")
        assert resolve_backend(tmp_path) == "sqlite"
        assert ResultStore(tmp_path).get("k") == make_result()

    def test_describe_store(self, tmp_path):
        assert describe_store(tmp_path) is None
        ResultStore(tmp_path, backend="sqlite").put("k", make_result())
        info = describe_store(tmp_path)
        assert info["backend"] == "sqlite"
        assert info["schema_version"] == 1

    def test_memory_store_requires_jsonl_semantics(self):
        with pytest.raises(ConfigurationError):
            ResultStore(backend="sqlite")


class TestBehaviorParity:
    """The store contract, parameterized over both backends."""

    @both_backends
    def test_roundtrip_through_disk(self, tmp_path, backend):
        store = ResultStore(tmp_path, backend=backend)
        result = make_result(variant="slicc-sw")
        store.put("deadbeef", result, spec={"workload": "tpcc-1"})
        store.close()

        reloaded = ResultStore(tmp_path, backend=backend)
        assert reloaded.get("deadbeef") == result
        assert reloaded.spec_info("deadbeef") == {"workload": "tpcc-1"}
        assert reloaded.backend == backend
        assert "deadbeef" in reloaded and len(reloaded) == 1

    @both_backends
    def test_overwrite_last_wins(self, tmp_path, backend):
        store = ResultStore(tmp_path, backend=backend)
        store.put("k", make_result(cycles=1))
        store.put("k", make_result(cycles=2))
        store.close()
        assert ResultStore(tmp_path, backend=backend).get("k").cycles == 2

    @both_backends
    def test_failure_recorded_but_never_served(self, tmp_path, backend):
        store = ResultStore(tmp_path, backend=backend)
        failure = {"kind": "timeout", "error": "killed", "attempts": 1}
        store.put_failure("k", failure, spec={"workload": "tpcc-1"})
        store.close()
        reloaded = ResultStore(tmp_path, backend=backend)
        assert reloaded.get("k") is None
        assert reloaded.failure_info("k") == failure
        assert reloaded.failures() == {"k": failure}
        assert reloaded.load_report.failures == 1

    @both_backends
    def test_result_supersedes_failure(self, tmp_path, backend):
        """A result written after a failure clears it — the retry-then-
        succeed path must leave no live failure behind."""
        store = ResultStore(tmp_path, backend=backend)
        store.put_failure("k", {"kind": "error", "error": "boom"})
        store.put("k", make_result())
        store.close()
        reloaded = ResultStore(tmp_path, backend=backend)
        assert reloaded.get("k") == make_result()
        assert reloaded.failure_info("k") is None
        assert reloaded.load_report.failures == 0

    @both_backends
    def test_keys_preserve_insertion_order(self, tmp_path, backend):
        store = ResultStore(tmp_path, backend=backend)
        for name in ("c", "a", "b"):
            store.put(name, make_result())
        store.put("a", make_result(cycles=2))  # rewrite keeps its slot
        assert list(store.keys()) == ["c", "a", "b"]
        store.close()
        reloaded = ResultStore(tmp_path, backend=backend)
        assert list(reloaded.keys()) == ["c", "a", "b"]

    @both_backends
    def test_audit_clean_store(self, tmp_path, backend):
        store = ResultStore(tmp_path, backend=backend)
        store.put("a", make_result())
        store.put_failure("b", {"kind": "error", "error": "boom"})
        store.close()
        audit = audit_store(tmp_path, backend=backend)
        assert audit.backend == backend
        assert audit.clean
        assert audit.keys == 1 and audit.live_failures == 1
        assert audit.integrity == "ok"


class TestSqliteSpecifics:
    def test_later_failure_never_displaces_result(self, tmp_path):
        """The failure upsert carries ``WHERE kind != 'result'``: a
        stored result always outranks failure provenance, matching what
        export/migration keeps of the equivalent JSONL history (a
        result-shadowed failure never crosses a backend boundary)."""
        store = ResultStore(tmp_path, backend="sqlite")
        store.put("k", make_result())
        store.put_failure("k", {"kind": "error", "error": "late"})
        store.close()
        reloaded = ResultStore(tmp_path, backend="sqlite")
        assert reloaded.get("k") == make_result()
        assert reloaded.failure_info("k") is None
        assert reloaded.failures() == {}

    def test_overwrite_is_single_row(self, tmp_path):
        """The UNIQUE upsert rewrites in place — no append-and-fold."""
        store = ResultStore(tmp_path, backend="sqlite")
        for cycles in range(5):
            store.put("k", make_result(cycles=cycles))
        conn = sqlite3.connect(store.path)
        assert conn.execute("SELECT COUNT(*) FROM results").fetchone()[0] == 1
        conn.close()

    def test_failure_columns_are_structured(self, tmp_path):
        store = ResultStore(tmp_path, backend="sqlite")
        store.put_failure(
            "k", {"kind": "timeout", "error": "killed", "attempts": 3}
        )
        conn = sqlite3.connect(store.path)
        row = conn.execute(
            "SELECT failure_kind, failure_error, failure_attempts "
            "FROM results WHERE key = 'k'"
        ).fetchone()
        conn.close()
        assert row == ("timeout", "killed", 3)

    def test_wrong_schema_version_rejected(self, tmp_path):
        store = ResultStore(tmp_path, backend="sqlite")
        store.put("k", make_result())
        path = store.path
        store.close()
        conn = sqlite3.connect(path)
        conn.execute("UPDATE meta SET v = '999' WHERE k = 'schema_version'")
        conn.commit()
        conn.close()
        with pytest.raises(ConfigurationError, match="schema"):
            ResultStore(path)

    def test_non_database_file_rejected(self, tmp_path):
        path = tmp_path / "results.sqlite"
        path.write_text("this is not a database\n")
        with pytest.raises(ConfigurationError):
            ResultStore(path)

    def test_compact_is_idempotent_reupsert(self, tmp_path):
        store = ResultStore(tmp_path, backend="sqlite")
        store.put("a", make_result(cycles=1))
        store.put("b", make_result(cycles=2))
        store.close()
        before = list(
            ResultStore(tmp_path, backend="sqlite").export_rows()
        )
        _, kept = compact_store(tmp_path, backend="sqlite")
        assert kept == 2
        after_store = ResultStore(tmp_path, backend="sqlite")
        assert list(after_store.export_rows()) == before
        assert audit_store(tmp_path, backend="sqlite").clean

    def test_multiprocess_writers(self, tmp_path):
        """Four forked processes upserting into one database: SQLite's
        own locking must serialise them without lost rows."""
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_hammer_sqlite, args=(tmp_path, w, 20))
            for w in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(60)
            assert p.exitcode == 0
        store = ResultStore(tmp_path, backend="sqlite")
        assert len(store) == 80
        assert store.get("w3-r19").cycles == 3019
        assert audit_store(tmp_path, backend="sqlite").clean


def _hammer_sqlite(path, writer, n_rows):
    store = ResultStore(path, backend="sqlite")
    for i in range(n_rows):
        store.put(f"w{writer}-r{i}", make_result(cycles=writer * 1000 + i))


class TestMigration:
    def populate(self, tmp_path, backend):
        store = ResultStore(tmp_path, backend=backend)
        store.put("a", make_result(cycles=1))
        store.put("a", make_result(cycles=2))
        store.put("b", make_result(cycles=3), spec={"workload": "tpcc-1"})
        store.put_failure(
            "c", {"kind": "timeout", "error": "killed", "attempts": 2}
        )
        store.close()
        return store.path

    def test_jsonl_to_sqlite_and_back_is_byte_identical(self, tmp_path):
        src = self.populate(tmp_path / "src", "jsonl")
        compact_store(src)  # canonical form: one live row per key
        hop = tmp_path / "hop.sqlite"
        back = tmp_path / "back.jsonl"
        report = migrate_store(src, hop)
        assert (report.results, report.failures) == (2, 1)
        migrate_store(hop, back)
        assert back.read_bytes() == src.read_bytes()

    def test_sqlite_to_jsonl_and_back_preserves_rows(self, tmp_path):
        src = self.populate(tmp_path / "src", "sqlite")
        hop = tmp_path / "hop.jsonl"
        back = tmp_path / "back.sqlite"
        migrate_store(src, hop)
        migrate_store(hop, back)
        rows_src = list(ResultStore(src).export_rows())
        rows_back = list(ResultStore(back).export_rows())
        assert rows_src == rows_back
        a = ResultStore(back)
        assert a.get("a").cycles == 2
        assert a.failure_info("c")["attempts"] == 2

    def test_quarantine_survives_round_trip(self, tmp_path):
        src = self.populate(tmp_path / "src", "jsonl")
        junk = '{"key": "torn", "result": {"cy'
        with src.open("a") as fh:
            fh.write(junk)
        with pytest.warns(UserWarning):
            compact_store(src)  # moves the fragment to the sidecar
        hop = tmp_path / "hop.sqlite"
        back = tmp_path / "back.jsonl"
        migrate_store(src, hop)
        migrate_store(hop, back)
        sidecar = back.parent / (back.name + ".quarantine")
        assert sidecar.read_text().splitlines() == [junk]
        assert back.read_bytes() == src.read_bytes()

    def test_migrating_missing_store_fails(self, tmp_path):
        with pytest.raises(ConfigurationError):
            migrate_store(tmp_path / "absent.jsonl", tmp_path / "out.sqlite")

    def test_migrating_onto_itself_fails(self, tmp_path):
        src = self.populate(tmp_path, "jsonl")
        with pytest.raises(ConfigurationError):
            migrate_store(src, src)

    @pytest.mark.parametrize("start", list(STORE_BACKENDS))
    def test_random_op_sequences_round_trip(self, start, tmp_path):
        """Property-style: arbitrary mixes of results, failures and
        duplicate keys must survive a hop through the other backend
        with identical live content."""
        rng = random.Random(20260808 if start == "jsonl" else 42)
        store = ResultStore(tmp_path / "src", backend=start)
        for i in range(60):
            key = f"k{rng.randrange(15)}"
            if rng.random() < 0.3:
                store.put_failure(
                    key,
                    {
                        "kind": rng.choice(["timeout", "error"]),
                        "error": f"boom-{i}",
                        "attempts": rng.randrange(1, 4),
                    },
                )
            else:
                store.put(
                    key,
                    make_result(cycles=i),
                    spec={"index": i} if rng.random() < 0.5 else None,
                )
        store.close()

        other = "sqlite" if start == "jsonl" else "jsonl"
        hop = tmp_path / ("hop.sqlite" if other == "sqlite" else "hop.jsonl")
        back = tmp_path / ("b.jsonl" if start == "jsonl" else "b.sqlite")
        migrate_store(store.path, hop)
        migrate_store(hop, back)

        src, dst = ResultStore(store.path), ResultStore(back)
        assert list(src.keys()) == list(dst.keys())
        for key in src.keys():
            assert result_to_json(src.get(key)) == result_to_json(
                dst.get(key)
            )
            assert src.spec_info(key) == dst.spec_info(key)
        # Result-shadowed failures are export-dropped by design, so the
        # round trip preserves exactly the unshadowed ones.
        live = {
            key: failure
            for key, failure in src.failures().items()
            if key not in src
        }
        assert dst.failures() == live


class TestCli:
    def run_sweep(self, tmp_path, backend=None):
        payload = {
            "workload": "tpcc-1",
            "scale": "smoke",
            "seed": 7,
            "variant": "slicc-sw",
            "axes": {"slicc.dilution_t": [5, 10]},
        }
        specfile = tmp_path / "exp.json"
        specfile.write_text(json.dumps(payload))
        store = tmp_path / "campaign"
        argv = ["exp", str(specfile), "--store", str(store)]
        if backend:
            argv += ["--backend", backend]
        assert main(argv) == 0
        return store

    def test_exp_backend_flag_creates_sqlite_store(self, tmp_path):
        store = self.run_sweep(tmp_path, backend="sqlite")
        assert (store / "results.sqlite").exists()
        assert not (store / "results.jsonl").exists()
        assert len(ResultStore(store)) == 2

    def test_store_migrate_cli_round_trip(self, tmp_path, capsys):
        store = self.run_sweep(tmp_path)
        src = store / "results.jsonl"
        hop = tmp_path / "hop.sqlite"
        back = tmp_path / "back.jsonl"
        assert main(["store", "migrate", str(src), str(hop)]) == 0
        capsys.readouterr()
        assert main(["store", "verify", str(hop), "--json"]) == 0
        audit = json.loads(capsys.readouterr().out)
        assert audit["backend"] == "sqlite" and audit["clean"] is True
        assert main(["store", "migrate", str(hop), str(back)]) == 0
        assert back.read_bytes() == src.read_bytes()

    def test_store_verify_json_names_backend(self, tmp_path, capsys):
        store = self.run_sweep(tmp_path, backend="sqlite")
        capsys.readouterr()
        assert main(["store", "verify", str(store), "--json"]) == 0
        audit = json.loads(capsys.readouterr().out)
        assert audit["backend"] == "sqlite"
        assert audit["schema_version"] == 1
        assert audit["clean"] is True

    def test_queue_status_json_names_backend(self, tmp_path, capsys):
        payload = {
            "workload": "tpcc-1",
            "scale": "smoke",
            "seed": 7,
            "variant": "slicc-sw",
            "axes": {"slicc.dilution_t": [5]},
        }
        specfile = tmp_path / "exp.json"
        specfile.write_text(json.dumps(payload))
        qdir = tmp_path / "campaign"
        assert main(["queue", "enqueue", str(specfile), str(qdir)]) == 0
        assert (
            main(
                [
                    "queue",
                    "work",
                    str(qdir),
                    "--poll",
                    "0.05",
                    "--backend",
                    "sqlite",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["queue", "status", str(qdir), "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["store_backend"] == "sqlite"
        assert status["store_schema_version"] == 1
        assert status["store_path"].endswith("results.sqlite")
