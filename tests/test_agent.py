"""Tests for the SLICC agent's Q1/Q2/Q3 decision logic."""

from repro.core import MigrationReason, SliccAgent
from repro.params import SliccParams


def make_agent(fill_up_t=4, matched_t=2, dilution_t=2, core_id=0, n_cores=4):
    params = SliccParams(
        fill_up_t=fill_up_t, matched_t=matched_t, dilution_t=dilution_t,
        msv_window=100, bloom_bits=2048,
    )
    return SliccAgent(core_id, params, n_cores)


def fill_cache(agent):
    for _ in range(agent.params.fill_up_t):
        agent.observe_access(hit=False)


class TestQ1CacheFull:
    def test_not_full_initially(self):
        assert not make_agent().cache_full

    def test_full_after_fill_up_misses(self):
        agent = make_agent(fill_up_t=3)
        for _ in range(3):
            agent.observe_access(hit=False)
        assert agent.cache_full

    def test_hits_do_not_fill(self):
        agent = make_agent(fill_up_t=2)
        for _ in range(10):
            agent.observe_access(hit=True)
        assert not agent.cache_full

    def test_no_gather_before_full(self):
        agent = make_agent(fill_up_t=5)
        assert not agent.observe_access(hit=False)

    def test_gather_on_miss_when_full(self):
        agent = make_agent(fill_up_t=1)
        agent.observe_access(hit=False)
        assert agent.observe_access(hit=False)

    def test_no_gather_on_hit_when_full(self):
        agent = make_agent(fill_up_t=1)
        agent.observe_access(hit=False)
        assert not agent.observe_access(hit=True)


class TestQ2Dilution:
    def test_migration_needs_dilution_and_mtq(self):
        agent = make_agent(fill_up_t=1, matched_t=2, dilution_t=2)
        agent.observe_access(hit=False)  # fills
        agent.observe_access(hit=False)
        agent.note_miss_presence(0b0010)
        assert not agent.migration_enabled  # MTQ not full yet
        agent.observe_access(hit=False)
        agent.note_miss_presence(0b0010)
        assert agent.migration_enabled

    def test_hits_dilute_misses(self):
        agent = make_agent(fill_up_t=1, matched_t=1, dilution_t=3)
        agent.observe_access(hit=False)
        for _ in range(50):
            agent.observe_access(hit=True)
        agent.observe_access(hit=False)
        agent.note_miss_presence(0b0010)
        assert not agent.migration_enabled


class TestQ3Decide:
    def _armed_agent(self, mask):
        agent = make_agent(fill_up_t=1, matched_t=1, dilution_t=0)
        agent.observe_access(hit=False)
        agent.observe_access(hit=False)
        agent.note_miss_presence(mask)
        return agent

    def test_segment_match_preferred(self):
        agent = self._armed_agent(0b0110)
        decision = agent.decide(idle_cores=[3])
        assert decision.reason is MigrationReason.SEGMENT_MATCH
        assert decision.target in (1, 2)

    def test_idle_core_second(self):
        agent = self._armed_agent(0b0000)
        decision = agent.decide(idle_cores=[3])
        assert decision.reason is MigrationReason.IDLE_CORE
        assert decision.target == 3

    def test_stay_last(self):
        agent = self._armed_agent(0b0000)
        decision = agent.decide(idle_cores=[])
        assert decision.reason is MigrationReason.STAY
        assert decision.target is None

    def test_stay_resets_mc(self):
        agent = self._armed_agent(0b0000)
        agent.decide(idle_cores=[])
        assert not agent.cache_full

    def test_self_match_excluded(self):
        agent = self._armed_agent(0b0001)  # only the local core matches
        decision = agent.decide(idle_cores=[])
        assert decision.reason is MigrationReason.STAY

    def test_allowed_cores_filter(self):
        agent = self._armed_agent(0b0110)
        decision = agent.decide(idle_cores=[], allowed_cores=frozenset({2}))
        assert decision.target == 2

    def test_nearest_tiebreak(self):
        agent = self._armed_agent(0b0110)
        decision = agent.decide(idle_cores=[], nearest=lambda c: max(c))
        assert decision.target == 2

    def test_broadcast_counted_per_decision(self):
        agent = self._armed_agent(0b0110)
        before = agent.stats.broadcasts
        agent.decide(idle_cores=[])
        assert agent.stats.broadcasts == before + 1


class TestResets:
    def test_thread_switch_clears_msv_mtq_not_mc(self):
        agent = make_agent(fill_up_t=1, matched_t=1, dilution_t=1)
        agent.observe_access(hit=False)
        agent.observe_access(hit=False)
        agent.note_miss_presence(0b0010)
        agent.on_thread_switch()
        assert agent.cache_full
        assert not agent.migration_enabled

    def test_full_reset_clears_everything(self):
        agent = make_agent(fill_up_t=1)
        agent.observe_access(hit=False)
        agent.full_reset()
        assert not agent.cache_full
