"""Tests for the parallel experiment runner.

Covers the acceptance criteria of the orchestration layer: the Runner
grid reproduces the seed's serial sweep loop exactly, repeated sweeps are
served from the ResultStore with zero new simulations, back-to-back
sweeps share one baseline run per trace hash, and results are
byte-identical between ``jobs=1`` and ``jobs=4``.
"""

import pytest

from repro.analysis.sweeps import SweepPoint, sweep_dilution, sweep_fillup_matched
from repro.errors import ConfigurationError
from repro.exp import (
    ExperimentSpec,
    ResultStore,
    Runner,
    grid,
    result_to_json,
    spec_for,
)
from repro.params import SliccParams
from repro.sim import SimConfig, simulate

FILL_VALUES = (128, 256, 384, 512)
MATCH_VALUES = (2, 4, 6, 8, 10)


def serial_sweep_fillup_matched(trace, variant="slicc-sw"):
    """The seed's original hand-rolled serial loop, kept verbatim as the
    reference the Runner-backed sweep must reproduce."""
    baseline = simulate(trace, variant="base")
    points = []
    for fill_up in FILL_VALUES:
        for matched in MATCH_VALUES:
            slicc = SliccParams(
                fill_up_t=fill_up, matched_t=matched, dilution_t=0
            )
            result = simulate(
                trace, config=SimConfig(variant=variant, slicc=slicc)
            )
            points.append(
                SweepPoint(
                    label=f"fill={fill_up},match={matched}",
                    fill_up_t=fill_up,
                    matched_t=matched,
                    dilution_t=0,
                    i_mpki=result.i_mpki,
                    d_mpki=result.d_mpki,
                    speedup=result.speedup_over(baseline),
                    migrations=result.migrations,
                )
            )
    return points


class TestRunnerBasics:
    def test_matches_direct_simulate(self, smoke_tpcc):
        spec = spec_for(smoke_tpcc, variant="slicc-sw")
        runner = Runner()
        (result,) = runner.run([spec], trace=smoke_tpcc)
        direct = simulate(smoke_tpcc, variant="slicc-sw")
        assert result_to_json(result) == result_to_json(direct)
        assert runner.last_stats.simulated == 1

    def test_stats_record_wall_and_per_spec_timing(self, smoke_tpcc):
        specs = [
            spec_for(smoke_tpcc, variant=v, label=v)
            for v in ("base", "slicc")
        ]
        runner = Runner()
        runner.run(specs, trace=smoke_tpcc)
        stats = runner.last_stats
        assert stats.simulated == 2
        assert stats.wall_seconds > 0
        assert stats.sim_seconds > 0
        assert set(stats.spec_seconds) == {spec.key() for spec in specs}
        assert all(s > 0 for s in stats.spec_seconds.values())
        # Cumulative stats aggregate per-call timings.
        assert runner.stats.sim_seconds == pytest.approx(stats.sim_seconds)
        # A fully cached rerun simulates nothing and times nothing new.
        runner.run(specs, trace=smoke_tpcc)
        assert runner.last_stats.simulated == 0
        assert runner.last_stats.sim_seconds == 0

    def test_declarative_spec_builds_its_own_trace(self):
        spec = ExperimentSpec(
            "tpcc-1", scale="smoke", seed=7, config=SimConfig(variant="base")
        )
        (result,) = Runner().run([spec])
        assert result.variant == "base"
        assert result.threads_completed > 0

    def test_results_align_with_input_order(self, smoke_tpcc):
        specs = [
            spec_for(smoke_tpcc, variant=v, label=v)
            for v in ("slicc", "base", "steps")
        ]
        results = Runner().run(specs, trace=smoke_tpcc)
        assert [r.variant for r in results] == ["slicc", "base", "steps"]

    def test_duplicate_specs_simulated_once(self, smoke_tpcc):
        spec = spec_for(smoke_tpcc, variant="base")
        runner = Runner()
        results = runner.run([spec, spec, spec], trace=smoke_tpcc)
        assert runner.last_stats.simulated == 1
        assert runner.last_stats.cached == 2
        assert results[0] == results[1] == results[2]

    def test_missing_explicit_trace_rejected(self, smoke_tpcc):
        spec = spec_for(smoke_tpcc, variant="base")
        with pytest.raises(ConfigurationError):
            Runner().run([spec])  # trace not passed

    def test_store_serves_second_invocation(self, smoke_tpcc):
        store = ResultStore()
        first = Runner(store=store)
        second = Runner(store=store)
        spec = spec_for(smoke_tpcc, variant="base")
        a = first.run([spec], trace=smoke_tpcc)
        b = second.run([spec])  # cache hit: no trace needed at all
        assert second.last_stats.simulated == 0
        assert second.last_stats.cached == 1
        assert a == b

    def test_persistent_store_across_processes_shape(self, smoke_tpcc, tmp_path):
        spec = spec_for(smoke_tpcc, variant="base")
        Runner(store=ResultStore(tmp_path)).run([spec], trace=smoke_tpcc)
        rerun = Runner(store=ResultStore(tmp_path))
        (result,) = rerun.run([spec])
        assert rerun.last_stats.simulated == 0
        assert result.variant == "base"

    def test_batch_kernel_spec_prefork_materialisation(self, smoke_tpcc):
        """A kernel="batch" spec gets its trace's SoA arrays built in
        the parent (pre-fork sharing, the replay_tables treatment), and
        the run itself matches the default-kernel result — the kernel
        is canonicalised out of the store key precisely because it
        never changes the numbers."""
        import os

        from repro.sim.batch import numpy_available

        if not numpy_available() or os.environ.get("REPRO_NO_BATCH"):
            pytest.skip("batch kernel unavailable")
        spec = spec_for(smoke_tpcc, variant="slicc", kernel="batch")
        Runner._materialise_batch_tables(
            [spec], {spec.trace_key(): smoke_tpcc}
        )
        for thread in smoke_tpcc.threads:
            key, _tables = thread._batch_tables
            assert key[1:] == (64, 64, 8)  # 32KB/8-way L1s, stacked
        (result,) = Runner().run([spec], trace=smoke_tpcc)
        assert result_to_json(result) == result_to_json(
            simulate(smoke_tpcc, variant="slicc")
        )


class TestSweepEquivalence:
    """Acceptance: the 20-point Figure 7 grid through the Runner with
    jobs=4 must produce identical SweepPoint values to the seed's serial
    implementation, and a repeat must be served entirely from the store."""

    def test_grid_matches_serial_and_caches(self, smoke_tpcc):
        reference = serial_sweep_fillup_matched(smoke_tpcc)
        assert len(reference) == 20

        runner = Runner(store=ResultStore(), jobs=4)
        points = sweep_fillup_matched(
            smoke_tpcc,
            fill_up_values=FILL_VALUES,
            matched_values=MATCH_VALUES,
            runner=runner,
        )
        assert points == reference
        assert runner.last_stats.simulated == 21  # grid + baseline

        again = sweep_fillup_matched(
            smoke_tpcc,
            fill_up_values=FILL_VALUES,
            matched_values=MATCH_VALUES,
            runner=runner,
        )
        assert again == reference
        assert runner.last_stats.simulated == 0  # all 21 from the store
        assert runner.last_stats.cached == 21

    def test_back_to_back_sweeps_share_one_baseline(self, smoke_tpcc):
        """Satellite: sweep_fillup_matched + sweep_dilution on the same
        trace must run variant='base' exactly once."""
        store = ResultStore()
        runner = Runner(store=store)
        sweep_fillup_matched(
            smoke_tpcc,
            fill_up_values=(128, 256),
            matched_values=(4,),
            runner=runner,
        )
        sweep_dilution(smoke_tpcc, dilution_values=(5, 10), runner=runner)
        base_runs = [r for r in store.results() if r.variant == "base"]
        assert len(base_runs) == 1


class TestDeterminism:
    """Satellite: the same spec hash yields byte-identical result JSON
    whatever the degree of parallelism."""

    def test_jobs1_and_jobs4_byte_identical(self, smoke_tpcc):
        specs = grid(
            spec_for(smoke_tpcc, variant="slicc-sw"),
            {
                "variant": ["slicc", "slicc-sw"],
                "slicc.dilution_t": [5, 10],
            },
        )
        serial = Runner(jobs=1).run(specs, trace=smoke_tpcc)
        parallel = Runner(jobs=4).run(specs, trace=smoke_tpcc)
        for a, b in zip(serial, parallel):
            assert result_to_json(a) == result_to_json(b)

    def test_declarative_jobs_determinism(self):
        base = ExperimentSpec("tpcc-1", scale="smoke", seed=3)
        specs = grid(base, {"variant": ["base", "nextline", "slicc"]})
        serial = Runner(jobs=1).run(specs)
        parallel = Runner(jobs=4).run(specs)
        for a, b in zip(serial, parallel):
            assert result_to_json(a) == result_to_json(b)

    def test_poison_spec_fails_alone_and_rest_persist(
        self, tmp_path, monkeypatch, smoke_tpcc
    ):
        """A spec that keeps raising fails only its own row: the rest of
        the sweep completes, persists, and the loss is reported as a
        SweepFailure afterwards."""
        from repro.errors import SweepFailure
        from repro.exp import runner as runner_mod

        real = runner_mod._run_spec
        poison = {"on": True}

        def flaky(spec, attempt=0):
            if poison["on"] and spec.variant == "slicc":
                raise RuntimeError("poisoned")
            return real(spec, attempt)

        monkeypatch.setattr(runner_mod, "_run_spec", flaky)
        store = ResultStore(tmp_path)
        specs = [
            spec_for(smoke_tpcc, variant=v)
            for v in ("base", "slicc", "steps")
        ]
        runner = Runner(store=store, retries=1, backoff=0.01)
        with pytest.raises(SweepFailure) as excinfo:
            runner.run(specs, trace=smoke_tpcc)
        failure = excinfo.value
        assert len(failure.failures) == 1
        assert failure.failures[0].kind == "error"
        assert "poisoned" in failure.failures[0].error
        assert failure.failures[0].attempts == 2  # first try + 1 retry
        assert [r is not None for r in failure.results] == [True, False, True]
        assert runner.last_stats.failed == 1
        assert runner.last_stats.retried == 1
        assert runner.last_stats.simulated == 2
        # The two good rows persisted; the failure is recorded but never
        # served as a cache hit, so a rerun retries exactly the poisoned
        # spec.
        reloaded = ResultStore(tmp_path)
        assert len(reloaded) == 2
        failed_key = specs[1].key()
        assert reloaded.failure_info(failed_key)["kind"] == "error"
        poison["on"] = False
        rerun = Runner(store=reloaded, retries=0)
        results = rerun.run(specs, trace=smoke_tpcc)
        assert rerun.last_stats.simulated == 1
        assert rerun.last_stats.cached == 2
        assert results[1].variant == "slicc"
        assert reloaded.failure_info(failed_key) is None

    def test_parent_process_does_not_hoard_traces(self):
        """Declarative traces are resolved into a run-local dict and
        released with the run, not accumulated in the module cache."""
        from repro.exp import runner as runner_mod

        before = dict(runner_mod._TRACE_CACHE)
        spec = ExperimentSpec(
            "tpce", scale="smoke", seed=11, config=SimConfig(variant="base")
        )
        Runner(jobs=1).run([spec])
        assert runner_mod._TRACE_CACHE == before
