"""Cross-module integration tests for the paper's characterisation claims.

Fast, small-scale versions of the structural facts the evaluation rests
on (the benchmark suite re-validates them at CI scale).
"""

from repro.params import ScalePreset
from repro.sim import SimConfig, simulate
from repro.workloads import get_workload, standard_trace


class TestOltpCharacterisation:
    """Section 2's claims about OLTP memory behaviour."""

    def test_instruction_stalls_dominate(self):
        """Tözün et al.: instruction stalls are 70-85% of stall cycles."""
        trace = standard_trace("tpcc-1", ScalePreset.CI, n_threads=16)
        base = simulate(trace, variant="base")
        assert 0.6 < base.instruction_stall_share < 0.95

    def test_oltp_instruction_mpki_an_order_above_mapreduce(self):
        oltp = simulate(
            standard_trace("tpcc-1", ScalePreset.CI, n_threads=16),
            variant="base",
        )
        cloud = simulate(
            standard_trace("mapreduce", ScalePreset.CI, n_threads=16),
            variant="base",
        )
        assert oltp.i_mpki > 10 * cloud.i_mpki

    def test_footprint_relationships(self):
        """Per-type footprints exceed one L1-I but fit the aggregate
        capacity; MapReduce fits one L1-I (Section 2.1 conclusions)."""
        l1_blocks = 512
        aggregate = 16 * l1_blocks
        for name in ("tpcc-1", "tpce"):
            spec = get_workload(name, ScalePreset.CI)
            for txn in spec.txn_types:
                per_type = spec.type_footprint_blocks(txn.type_id)
                assert per_type > l1_blocks
                assert per_type < aggregate
        assert get_workload("mapreduce", ScalePreset.CI).footprint_blocks() <= l1_blocks

    def test_data_misses_mostly_compulsory(self):
        trace = standard_trace("tpcc-1", ScalePreset.CI, n_threads=16)
        r = simulate(
            trace, config=SimConfig(variant="base", collect_miss_classes=True)
        )
        data = r.miss_class_mpki["data"]
        assert data["compulsory"] > data["capacity"]
        assert data["compulsory"] > data["conflict"]

    def test_instruction_misses_mostly_capacity(self):
        # Needs several threads per core: with one thread per core every
        # block is a per-core first touch and classifies compulsory.
        trace = standard_trace("tpcc-1", ScalePreset.CI, n_threads=48)
        r = simulate(
            trace, config=SimConfig(variant="base", collect_miss_classes=True)
        )
        instr = r.miss_class_mpki["instruction"]
        assert instr["capacity"] > instr["compulsory"]
        assert instr["capacity"] > instr["conflict"]


class TestMigrationMechanics:
    def test_migration_spacing_reasonable(self):
        """The paper reports ~3.2K instructions per migration; ours is
        denser (EXPERIMENTS.md) but must stay within an order."""
        trace = standard_trace("tpcc-1", ScalePreset.CI, n_threads=16)
        r = simulate(trace, variant="slicc")
        assert r.migrations > 0
        assert r.instructions_per_migration() > 320

    def test_segment_matches_dominate_migrations(self):
        """Q.3's first rung should fire far more than the idle rung in
        steady state — migrations chase code, not free cores."""
        trace = standard_trace("tpcc-1", ScalePreset.CI, n_threads=16)
        r = simulate(trace, variant="slicc")
        assert r.segment_match_migrations > r.idle_core_migrations

    def test_invalidations_rise_with_migration(self):
        trace = standard_trace("tpcc-1", ScalePreset.CI, n_threads=16)
        base = simulate(trace, variant="base")
        slicc = simulate(trace, variant="slicc")
        assert slicc.invalidations >= base.invalidations * 0.9

    def test_pp_matches_sw_when_detection_perfect(self):
        """SLICC-Pp's only structural handicaps vs SW are the scout core
        and its latency; with 100%-accurate detection the I-MPKI gap must
        stay moderate (the paper reports 'slightly lower' reductions)."""
        trace = standard_trace("tpcc-1", ScalePreset.CI, n_threads=16)
        sw = simulate(trace, variant="slicc-sw")
        pp = simulate(trace, variant="slicc-pp")
        assert pp.i_mpki < sw.i_mpki * 1.35
