"""Tests for the timing model and the TLB."""

import pytest

from repro.params import SystemParams
from repro.sim import TimingModel, Tlb


class TestTimingModel:
    def test_instruction_miss_dearer_than_data_miss(self):
        t = TimingModel(SystemParams())
        assert t.i_miss(in_l2=True) > t.d_miss(in_l2=True, is_store=False)
        assert t.i_miss(in_l2=False) > t.d_miss(in_l2=False, is_store=False)

    def test_memory_dearer_than_l2(self):
        t = TimingModel(SystemParams())
        assert t.i_miss(in_l2=False) > t.i_miss(in_l2=True)
        assert t.d_miss(False, False) > t.d_miss(True, False)

    def test_stores_overlap_more_than_loads(self):
        t = TimingModel(SystemParams())
        assert t.d_miss(True, is_store=True) <= t.d_miss(True, is_store=False)

    def test_slower_l1i_charges_extra_base(self):
        sys_params = SystemParams()
        fast = TimingModel(sys_params, l1i_hit_latency=3)
        slow = TimingModel(sys_params, l1i_hit_latency=6)
        assert slow.ibase == fast.ibase + 3

    def test_migration_cost_grows_with_hops(self):
        t = TimingModel(SystemParams())
        assert t.migration(4) > t.migration(0)
        assert t.migration(0) >= SystemParams().migration_context_cycles

    def test_prefetch_late_is_partial(self):
        t = TimingModel(SystemParams())
        assert 0 < t.prefetch_late(True) < t.i_miss(True)


class TestTlb:
    def test_first_access_misses(self):
        tlb = Tlb(4)
        assert not tlb.access(0)

    def test_same_page_hits(self):
        tlb = Tlb(4)
        tlb.access(0)
        assert tlb.access(1)  # block 1 is in the same 64-block page

    def test_different_page_misses(self):
        tlb = Tlb(4)
        tlb.access(0)
        assert not tlb.access(64)

    def test_lru_eviction(self):
        tlb = Tlb(2)
        tlb.access(0)       # page 0
        tlb.access(64)      # page 1
        tlb.access(128)     # page 2 evicts page 0
        assert not tlb.access(0)

    def test_mpki(self):
        tlb = Tlb(4)
        tlb.access(0)
        tlb.access(64)
        assert tlb.mpki(instructions=1000) == pytest.approx(2.0)

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            Tlb(0)
