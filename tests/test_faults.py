"""Unit tests for the deterministic fault-injection harness."""

import pytest

from repro.errors import ConfigurationError
from repro.exp import faults
from repro.exp.faults import (
    CRASH_EXIT_CODE,
    FaultPlan,
    FaultRule,
    active_plan,
    inject_process_faults,
    parse_fault_spec,
)


class TestParsing:
    def test_single_clause(self):
        plan = parse_fault_spec("crash:0.3")
        assert plan.rules == (FaultRule("crash", 0.3),)
        assert plan.seed == 0

    def test_multiple_clauses_with_attempt_bound(self):
        plan = parse_fault_spec("crash:1@1, hang:0.1, torn_write:0.25", seed=9)
        assert plan.rule("crash") == FaultRule("crash", 1.0, 1)
        assert plan.rule("hang") == FaultRule("hang", 0.1, None)
        assert plan.rule("torn_write") == FaultRule("torn_write", 0.25, None)
        assert plan.seed == 9

    def test_empty_clauses_ignored(self):
        assert parse_fault_spec("crash:1,,").rules == (FaultRule("crash", 1.0),)

    @pytest.mark.parametrize(
        "text",
        [
            "oom:0.5",  # unknown kind
            "crash",  # no probability
            "crash:lots",  # non-numeric probability
            "crash:1.5",  # out of range
            "crash:-0.1",  # out of range
            "crash:0.5@first",  # non-integer attempt bound
        ],
    )
    def test_bad_specs_fail_loudly(self, text):
        with pytest.raises(ConfigurationError):
            parse_fault_spec(text)


class TestDeterminism:
    def test_rolls_are_pure_functions(self):
        plan = parse_fault_spec("crash:0.5", seed=1)
        rolls = [plan.should("crash", f"key{i}", 0) for i in range(64)]
        again = [plan.should("crash", f"key{i}", 0) for i in range(64)]
        assert rolls == again
        # A fair-ish probability actually fires both ways over 64 keys.
        assert any(rolls) and not all(rolls)

    def test_seed_changes_the_schedule(self):
        a = parse_fault_spec("crash:0.5", seed=1)
        b = parse_fault_spec("crash:0.5", seed=2)
        keys = [f"key{i}" for i in range(64)]
        assert [a.should("crash", k) for k in keys] != [
            b.should("crash", k) for k in keys
        ]

    def test_probability_bounds(self):
        always = parse_fault_spec("crash:1")
        never = parse_fault_spec("crash:0")
        for i in range(16):
            assert always.should("crash", f"k{i}")
            assert not never.should("crash", f"k{i}")

    def test_unlisted_kind_never_fires(self):
        plan = parse_fault_spec("crash:1")
        assert not plan.should("hang", "k")

    def test_attempt_bound_gates_injection(self):
        """crash:1@1 crashes attempt 0 and spares every retry — the
        shape the crash-then-recover matrix test relies on."""
        plan = parse_fault_spec("crash:1@1")
        assert plan.should("crash", "k", attempt=0)
        assert not plan.should("crash", "k", attempt=1)
        assert not plan.should("crash", "k", attempt=2)

    def test_torn_rolls_advance_per_append(self):
        """Each append of a key rolls independently: with @1 the first
        append tears and the rewrite goes through clean."""
        plan = FaultPlan((FaultRule("torn_write", 1.0, 1),))
        key = "torn-roll-test-key"
        assert plan.should_tear(key)
        assert not plan.should_tear(key)
        assert not plan.should_tear(key)

    def test_torn_kinds_roll_independently(self):
        """torn_write (store rows) and torn_queue (queue events) keep
        separate per-key counters, so tearing one never consumes the
        other's attempt-bounded budget."""
        plan = FaultPlan(
            (
                FaultRule("torn_write", 1.0, 1),
                FaultRule("torn_queue", 1.0, 1),
            )
        )
        key = "torn-kind-namespace-key"
        assert plan.should_tear(key)
        assert plan.should_tear(key, kind="torn_queue")
        assert not plan.should_tear(key)
        assert not plan.should_tear(key, kind="torn_queue")


class TestProcessFaults:
    def test_die_parses(self):
        plan = parse_fault_spec("die:0.4@1,torn_queue:0.5")
        assert plan.rule("die") == FaultRule("die", 0.4, 1)
        assert plan.rule("torn_queue") == FaultRule("torn_queue", 0.5, None)

    def test_die_kills_the_whole_process(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT", "die:1@1")
        exits = []
        monkeypatch.setattr(faults.os, "_exit", exits.append)
        inject_process_faults("w0", 0)
        assert exits == [CRASH_EXIT_CODE]

    def test_die_respects_cycle_bound_and_worker_roll(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT", "die:1@1")
        exits = []
        monkeypatch.setattr(faults.os, "_exit", exits.append)
        inject_process_faults("w0", 1)  # cycle >= bound: spared
        assert exits == []

    def test_no_plan_is_a_no_op(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT", raising=False)
        inject_process_faults("w0", 0)  # must not touch os._exit


class TestActivePlan:
    def test_no_env_means_no_plan(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT", raising=False)
        assert active_plan() is None

    def test_env_round_trip(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT", "crash:0.25@2,hang:0.5")
        monkeypatch.setenv("REPRO_FAULT_SEED", "7")
        monkeypatch.setenv("REPRO_FAULT_HANG_S", "0.25")
        plan = active_plan()
        assert plan.rule("crash") == FaultRule("crash", 0.25, 2)
        assert plan.seed == 7
        assert plan.hang_seconds == 0.25

    def test_cache_tracks_env_changes(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT", "crash:1")
        first = active_plan()
        monkeypatch.setenv("REPRO_FAULT", "hang:1")
        second = active_plan()
        assert first.rule("crash") and not first.rule("hang")
        assert second.rule("hang") and not second.rule("crash")
        monkeypatch.delenv("REPRO_FAULT")
        assert active_plan() is None

    def test_typod_env_fails_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT", "crsh:1")
        with pytest.raises(ConfigurationError):
            active_plan()
