"""Tests for the torus interconnect and the MESI-lite directory."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache import SetAssociativeCache
from repro.coherence import Directory
from repro.errors import ConfigurationError
from repro.interconnect import Torus2D
from repro.params import CacheParams


class TestTorus:
    def test_self_distance_zero(self):
        t = Torus2D(4)
        assert all(t.hops(i, i) == 0 for i in range(16))

    def test_neighbour_distance_one(self):
        t = Torus2D(4)
        assert t.hops(0, 1) == 1
        assert t.hops(0, 4) == 1

    def test_wraparound(self):
        t = Torus2D(4)
        assert t.hops(0, 3) == 1  # wraps horizontally
        assert t.hops(0, 12) == 1  # wraps vertically

    def test_max_distance_on_4x4(self):
        t = Torus2D(4)
        assert max(t.hops(0, b) for b in range(16)) == 4

    def test_symmetry(self):
        t = Torus2D(4)
        for a in range(16):
            for b in range(16):
                assert t.hops(a, b) == t.hops(b, a)

    @given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 15))
    def test_triangle_inequality(self, a, b, c):
        t = Torus2D(4)
        assert t.hops(a, c) <= t.hops(a, b) + t.hops(b, c)

    def test_latency_scales_with_hop_cycles(self):
        t = Torus2D(4, hop_cycles=3)
        assert t.latency(0, 2) == 6

    def test_nearest_prefers_closest(self):
        t = Torus2D(4)
        assert t.nearest(0, [2, 1, 8]) == 1

    def test_nearest_tie_break_lowest_id(self):
        t = Torus2D(4)
        assert t.nearest(0, [4, 1]) == 1

    def test_nearest_empty_raises(self):
        with pytest.raises(ValueError):
            Torus2D(4).nearest(0, [])

    def test_invalid_width_rejected(self):
        with pytest.raises(ConfigurationError):
            Torus2D(0)

    def test_broadcast_hops_positive(self):
        t = Torus2D(4)
        assert t.broadcast_hops(0) > 0


class TestDirectory:
    def _machine(self, n=4):
        caches = [
            SetAssociativeCache(CacheParams(size_bytes=1024, assoc=2))
            for _ in range(n)
        ]
        directory = Directory(caches)
        for core, cache in enumerate(caches):
            cache.on_evict = lambda block, c=core: directory.on_evict(c, block)
        return caches, directory

    def test_read_registers_sharer(self):
        caches, d = self._machine()
        caches[0].access(7)
        d.on_read(0, 7)
        assert d.sharers_of(7) == {0}

    def test_write_invalidates_remote_copies(self):
        caches, d = self._machine()
        for core in (0, 1, 2):
            caches[core].access(7)
            d.on_read(core, 7)
        invalidated = d.on_write(0, 7)
        assert invalidated == 2
        assert not caches[1].probe(7)
        assert not caches[2].probe(7)
        assert caches[0].probe(7)
        assert d.sharers_of(7) == {0}

    def test_write_by_sole_owner_invalidates_nothing(self):
        caches, d = self._machine()
        caches[0].access(7)
        d.on_write(0, 7)
        assert d.on_write(0, 7) == 0

    def test_eviction_removes_sharer(self):
        caches, d = self._machine()
        caches[0].access(7)
        d.on_read(0, 7)
        caches[0].invalidate(7)  # fires on_evict via callback
        assert d.sharers_of(7) == frozenset()

    def test_invalidations_counted(self):
        caches, d = self._machine()
        for core in (0, 1):
            caches[core].access(9)
            d.on_read(core, 9)
        d.on_write(0, 9)
        assert d.invalidations_sent == 1
