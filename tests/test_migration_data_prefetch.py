"""Tests for the migration data prefetcher (Section 5.5 mitigation)."""

import pytest

from repro.errors import ConfigurationError
from repro.params import ScalePreset
from repro.prefetch.migration_data import MigrationDataPrefetcher
from repro.sim import SimConfig, simulate
from repro.workloads import standard_trace


class TestUnit:
    def test_history_keeps_last_n(self):
        pf = MigrationDataPrefetcher(n_blocks=3)
        for b in (1, 2, 3, 4):
            pf.record_access(0, b)
        assert pf.blocks_for_migration(0) == [4, 3, 2]

    def test_most_recent_first_and_deduped(self):
        pf = MigrationDataPrefetcher(n_blocks=4)
        for b in (7, 8, 7, 9):
            pf.record_access(0, b)
        assert pf.blocks_for_migration(0) == [9, 7, 8]

    def test_per_thread_isolation(self):
        pf = MigrationDataPrefetcher(n_blocks=2)
        pf.record_access(0, 1)
        pf.record_access(1, 2)
        assert pf.blocks_for_migration(0) == [1]
        assert pf.blocks_for_migration(1) == [2]

    def test_empty_history(self):
        pf = MigrationDataPrefetcher()
        assert pf.blocks_for_migration(5) == []

    def test_usefulness_tracking(self):
        pf = MigrationDataPrefetcher(n_blocks=2)
        pf.record_access(0, 1)
        pf.record_access(0, 2)
        pf.blocks_for_migration(0)
        assert pf.note_demand(0, 1)
        assert not pf.note_demand(0, 1)  # consumed once
        assert pf.accuracy == pytest.approx(0.5)

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ConfigurationError):
            MigrationDataPrefetcher(0)


class TestEngineIntegration:
    def test_prefetch_does_not_change_completion(self):
        trace = standard_trace("tpcc-1", ScalePreset.SMOKE)
        r = simulate(
            trace, config=SimConfig(variant="slicc", data_prefetch_n=8)
        )
        assert r.threads_completed == len(trace.threads)

    def test_paper_negative_result_direction(self):
        """The paper found the mitigation unhelpful: prefetching the last
        n data blocks to the migration target must not speed things up
        meaningfully (and usually slows them down via bandwidth)."""
        trace = standard_trace("tpcc-1", ScalePreset.CI, n_threads=16)
        plain = simulate(trace, config=SimConfig(variant="slicc"))
        with_pf = simulate(
            trace, config=SimConfig(variant="slicc", data_prefetch_n=16)
        )
        assert with_pf.cycles >= plain.cycles * 0.97
