"""Tests for the JSONL-backed result store."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.exp import (
    ResultStore,
    result_from_dict,
    result_to_dict,
    result_to_json,
)
from repro.sim.results import SimulationResult


def make_result(variant="base", cycles=1000):
    return SimulationResult(
        variant=variant,
        workload="tpcc-1",
        cycles=cycles,
        instructions=5000,
        i_accesses=400,
        i_misses=40,
        d_accesses=200,
        d_misses=10,
        migrations=3,
        utilization=0.625,
        miss_class_mpki={"instruction": {"cold": 1.5}},
    )


class TestSerialisation:
    def test_dict_roundtrip_is_lossless(self):
        result = make_result()
        assert result_from_dict(result_to_dict(result)) == result

    def test_json_is_canonical(self):
        a = make_result()
        b = make_result()
        assert result_to_json(a) == result_to_json(b)
        assert json.loads(result_to_json(a))["cycles"] == 1000


class TestMemoryStore:
    def test_put_get(self):
        store = ResultStore()
        result = make_result()
        assert store.get("k1") is None
        store.put("k1", result)
        assert store.get("k1") == result
        assert "k1" in store and len(store) == 1

    def test_overwrite_wins(self):
        store = ResultStore()
        store.put("k", make_result(cycles=1))
        store.put("k", make_result(cycles=2))
        assert store.get("k").cycles == 2


class TestPersistentStore:
    def test_roundtrip_through_disk(self, tmp_path):
        store = ResultStore(tmp_path)
        result = make_result(variant="slicc-sw")
        store.put("deadbeef", result, spec={"workload": "tpcc-1"})

        reloaded = ResultStore(tmp_path)
        assert reloaded.get("deadbeef") == result
        assert reloaded.spec_info("deadbeef") == {"workload": "tpcc-1"}
        assert (tmp_path / "results.jsonl").exists()

    def test_near_miss_file_path_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ResultStore(tmp_path / "results.json")

    def test_existing_dotted_directory_accepted(self, tmp_path):
        dotted = tmp_path / "campaign.2026-07"
        dotted.mkdir()
        store = ResultStore(dotted)
        store.put("k", make_result())
        assert (dotted / "results.jsonl").exists()

    def test_explicit_jsonl_path(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        store = ResultStore(path)
        store.put("k", make_result())
        assert path.exists()
        assert ResultStore(path).get("k") == make_result()

    def test_append_only_last_wins(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", make_result(cycles=1))
        store.put("k", make_result(cycles=2))
        lines = (tmp_path / "results.jsonl").read_text().splitlines()
        assert len(lines) == 2
        assert ResultStore(tmp_path).get("k").cycles == 2

    def test_truncated_trailing_line_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("good", make_result())
        with (tmp_path / "results.jsonl").open("a") as fh:
            fh.write('{"key": "bad", "result": {"var')  # simulated crash
        reloaded = ResultStore(tmp_path)
        assert reloaded.get("good") is not None
        assert len(reloaded) == 1

    def test_incompatible_rows_skipped_not_fatal(self, tmp_path):
        """Rows from an older result schema (or hand-edited junk) must
        not brick the store — they are re-derivable by rerunning."""
        store = ResultStore(tmp_path)
        store.put("good", make_result())
        with (tmp_path / "results.jsonl").open("a") as fh:
            fh.write("null\n")  # not an object
            fh.write('{"result": {"variant": "base"}}\n')  # no key
            fh.write('{"key": "old", "result": {"no_such_field": 1}}\n')
        reloaded = ResultStore(tmp_path)
        assert reloaded.get("good") == make_result()
        assert len(reloaded) == 1
